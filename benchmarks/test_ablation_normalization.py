"""Ablation — normalising counters by instructions retired.

The paper normalises every metric by the number of instructions retired
so load-intensity changes do not masquerade as behaviour changes.  This
ablation collects the Figure 4 point clouds with and without the
normalisation: with raw counters, load variation stretches the normal
cloud along the same directions interference moves it, collapsing the
separation.
"""

from conftest import run_once

from repro.experiments import fig04_clusters


def test_ablation_normalization(benchmark):
    def run_both():
        normalized = fig04_clusters.run(
            workloads=("data_serving",),
            load_levels=(0.2, 0.5, 0.9),
            variations_per_workload=2,
            interference_levels=(0.6, 1.0),
            epochs=6,
            normalized=True,
        )
        raw = fig04_clusters.run(
            workloads=("data_serving",),
            load_levels=(0.2, 0.5, 0.9),
            variations_per_workload=2,
            interference_levels=(0.6, 1.0),
            epochs=6,
            normalized=False,
        )
        return normalized, raw

    normalized, raw = run_once(benchmark, run_both)
    norm_sep = normalized.per_workload["data_serving"].separation
    raw_sep = raw.per_workload["data_serving"].separation

    print()
    print(
        "[Ablation/normalisation] separation with per-instruction normalisation: "
        f"{norm_sep:.2f}"
    )
    print(
        "[Ablation/normalisation] separation with raw counters               : "
        f"{raw_sep:.2f}"
    )

    # Normalisation is what makes the clusters separable across loads.
    assert norm_sep > 2.0
    assert norm_sep > 1.5 * raw_sep
