"""Figure 6 — the augmented CPI stack pinpoints the culprit resource.

Paper: for each workload, interference is tuned to hit the last-level
cache (Scenario A), the front-side bus (Scenario B) and the I/O
subsystem (Scenario C); the production-vs-isolation stall breakdown
identifies the culprit in every case.  Reproduced shape: the blamed
resource matches the injected scenario for every (workload, scenario)
cell, and the culprit's degradation factor dominates the others.
"""

from conftest import run_once

from repro.experiments import fig06_breakdown
from repro.metrics.cpi import Resource


def test_fig06_culprit_identification(benchmark):
    result = run_once(benchmark, fig06_breakdown.run, epochs=15)

    print()
    for cell in result.cells:
        factors = ", ".join(
            f"{resource.value}={factor:+.3f}"
            for resource, factor in cell.factors.items()
        )
        print(
            f"[Fig 6] {cell.workload:15s} scenario {cell.scenario}: "
            f"culprit={cell.culprit.value:10s} "
            f"correct={cell.culprit_correct} ({factors})"
        )
    print(f"[Fig 6] attribution accuracy: {result.accuracy():.0%}")

    assert len(result.cells) == 9
    assert result.accuracy() == 1.0
    # Scenario B is always blamed on the interconnect, scenario C on I/O.
    for workload in ("data_serving", "web_search", "data_analytics"):
        assert result.cell(workload, "B").culprit is Resource.MEMORY_BUS
        assert result.cell(workload, "C").culprit in (Resource.DISK, Resource.NETWORK)
    # The culprit's factor clearly dominates in every cell.
    for cell in result.cells:
        others = [
            factor
            for resource, factor in cell.factors.items()
            if resource not in (cell.culprit, Resource.CORE)
        ]
        assert cell.factors[cell.culprit] > max(others)
