"""Figure 11 — the placement manager picks a good destination without migrating.

Paper: the synthetic representation of the aggressive VM is run on every
candidate destination PM; the chosen destination matches the best
placement found by (impractically) trying every real migration, beating
the average and worst placements.  Reproduced shape: the chosen
destination's actual degradation equals the oracle best (or is within a
small regret), and is no worse than the average placement.
"""

from conftest import run_once

from repro.experiments import fig11_placement


def test_fig11_placement_robustness(benchmark):
    result = run_once(
        benchmark, fig11_placement.run, eval_epochs=12, training_samples=150
    )

    print()
    for outcome in result.outcomes:
        print(
            f"[Fig 11] {outcome.host_name} ({outcome.resident_workload:14s}): "
            f"actual degradation={outcome.actual_degradation:.2f} "
            f"predicted score={outcome.predicted_score:.2f}"
        )
    print(
        f"[Fig 11] chosen={result.chosen_host} ({result.chosen_degradation:.2f}) "
        f"best={result.best_host} ({result.best_degradation:.2f}) "
        f"average={result.average_degradation:.2f} worst={result.worst_degradation:.2f}"
    )

    assert len(result.outcomes) == 3
    # The chosen destination is the oracle best (or within a small regret)...
    assert result.chose_best or result.regret <= 0.05
    # ...and never worse than the average or the worst placements.
    assert result.chosen_degradation <= result.average_degradation + 1e-6
    assert result.chosen_degradation <= result.worst_degradation + 1e-6


def test_fig11_clone_based_upper_bound(benchmark):
    """Ablation: evaluating candidates with a real clone (instead of the
    synthetic benchmark) is the accuracy upper bound and must pick the best."""
    result = run_once(
        benchmark, fig11_placement.run, eval_epochs=10, use_synthetic=False
    )
    print(
        f"\n[Fig 11/clone] chosen={result.chosen_host} best={result.best_host} "
        f"regret={result.regret:.3f}"
    )
    assert result.chose_best or result.regret <= 0.02
