"""Figure 8 — detection and false-positive rates over three trace days.

Paper: replaying the HotMail trace with injected interference, DeepDive
detects every interference episode (no false negatives); the
false-positive rate is noticeable on day one while normal behaviours are
still being learned and drops to near zero afterwards.  Reproduced
shape: detection rate stays at 100% every day, day-one false positives
exceed the later days', and the final day's false-positive rate is near
zero.
"""

from conftest import run_once

from repro.experiments import fig08_detection
from repro.experiments.common import CLOUD_WORKLOADS


def test_fig08_detection_and_false_positives(benchmark):
    results = run_once(
        benchmark,
        fig08_detection.run,
        workloads=CLOUD_WORKLOADS,
        days=3,
        epochs_per_day=48,
    )

    print()
    for workload, result in results.items():
        detection = ["%.0f%%" % (100 * r) for r in result.detection_rates()]
        false_positive = ["%.1f%%" % (100 * r) for r in result.false_positive_rates()]
        print(
            f"[Fig 8] {workload:15s} detection/day={detection} "
            f"false-positive/day={false_positive} "
            f"missed episodes={result.missed_episodes} "
            f"profiling={result.total_profiling_seconds / 60.0:.1f} min"
        )

    for workload, result in results.items():
        detection = result.detection_rates()
        false_positive = result.false_positive_rates()
        # No false negatives, on any day.
        assert all(rate >= 0.99 for rate in detection), workload
        assert result.missed_episodes == 0, workload
        # Day-one learning: FPs start noticeable and decay to (near) zero.
        assert false_positive[0] >= false_positive[-1]
        assert false_positive[-1] <= 0.05
        # The warning system keeps the total profiling cost modest
        # (the paper reports ~20 minutes over three days).
        assert result.total_profiling_seconds < 45 * 60
