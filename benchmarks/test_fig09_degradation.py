"""Figure 9 — the analyzer estimates degradation accurately and transparently.

Paper: across interference intensities spanning roughly 5%-50%
client-reported degradation, the instruction-retirement-based estimate
tracks the client-reported value within 10% in the worst case and under
5% on average.  Reproduced shape: same bound on the mean absolute error,
strong correlation, and a degradation sweep that actually spans a wide
range.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig09_degradation
from repro.experiments.common import CLOUD_WORKLOADS, PAIRED_STRESS


def test_fig09_degradation_estimation(benchmark):
    results = run_once(benchmark, fig09_degradation.run, epochs=15)

    print()
    for workload, result in results.items():
        reported = [round(p.client_reported, 2) for p in result.points]
        estimated = [round(p.estimated, 2) for p in result.points]
        print(f"[Fig 9] {workload:15s} (paired stressor: {result.stress_kind})")
        print(f"        client-reported: {reported}")
        print(f"        estimated      : {estimated}")
        print(
            f"        mean abs error={result.mean_absolute_error():.3f} "
            f"max abs error={result.max_absolute_error():.3f} "
            f"correlation={result.correlation():.3f}"
        )

    assert set(results) == set(CLOUD_WORKLOADS)
    for workload, result in results.items():
        assert result.stress_kind == PAIRED_STRESS[workload]
        # Paper's headline numbers: <5% average error, <10% worst case.
        assert result.mean_absolute_error() < 0.05, workload
        assert result.max_absolute_error() < 0.10, workload
        assert result.correlation() > 0.95
        # The sweep spans from mild to severe degradation.
        reported = [p.client_reported for p in result.points]
        assert max(reported) > 0.3
        assert min(reported) < 0.2
        # Higher stressor intensity never reduces the reported degradation much.
        assert np.all(np.diff(reported) > -0.05)
