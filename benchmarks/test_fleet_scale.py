"""Fleet-scale benchmarks: epoch engine, hardware substrate, parallelism.

Three axes of the fleet hot loop are measured and recorded in
``BENCH_fleet.json`` at the repository root:

* **engine** — the vectorized monitoring pass (:class:`MetricMatrix`)
  against the scalar per-VM reference loop (PR 1's benchmark);
* **substrate** — the vectorized hardware-contention substrate
  (:mod:`repro.hardware.batch`) against the scalar per-VM contention
  model, end-to-end through ``Fleet.run_epoch`` at 2k and 10k VMs.  The
  scalar-substrate fleet (with ground-truth tracking, as in PR 1) is the
  PR 1 baseline the acceptance floor is measured against;
* **parallel** — serial versus thread-pool shard dispatch (results are
  worker-count independent; on multi-core hosts the pool overlaps the
  shards' numpy work);
* **process** — the state-owning process-pool executor
  (:mod:`repro.fleet.executor`): single-worker versus multi-worker
  process execution, columnar epochs published through double-buffered
  shared-memory segments (:mod:`repro.fleet.shm`) with only a tiny
  descriptor on the pool pipe.  The recorded
  ``process_1w_overhead_pct`` is the single-worker tax over the serial
  loop and ``dispatch_roundtrip_seconds`` the measured no-payload pool
  round trip — the transport's actual share of that tax (~1 ms/epoch;
  the decision arrays never touch the pipe).  On a 1-core runner the
  parent and worker share the core, so every per-epoch dispatch also
  pays a cache-eviction penalty that has nothing to do with the
  transport (worker epochs timed back to back match the serial loop);
  both the <=5% single-worker-overhead floor and the multi-worker
  scaling floor are therefore asserted only on >=4-core hosts, with
  ``cpu_count`` recorded alongside.  Timing samples are interleaved
  across the compared fleets so machine drift hits all of them
  equally.  Every process benchmark also asserts that shutdown left no
  transport segment behind in ``/dev/shm``;
* **epoch edge** — the cost of recording one epoch's counters into the
  hosts' telemetry: eager per-VM ``CounterSample`` materialisation +
  history appends (``history_mode="eager"``; both modes also pay the
  shared ring write, see ``_time_edge_mode``) versus one ring ingest
  per host (:class:`repro.metrics.store.HostCounterStore`, the default
  lazy mode).

All compared configurations produce equivalent decisions (pinned by the
property suites); the benchmarks only measure cost.  Run the tiny-scale
smoke variants with ``pytest -m bench_smoke``; ``FLEET_SMOKE_EXECUTOR``
selects the executor and ``FLEET_SMOKE_HISTORY_MODE`` the counter-store
mode the smoke fleet runs under (the CI matrix covers ``thread`` /
``process`` executors and an eager-history leg).
``FLEET_SMOKE_SNAPSHOT=1`` turns the snapshot smoke into a
process-executor kill/resume roundtrip whose checkpoint file (written
to ``FLEET_SMOKE_CKPT`` when set) the CI workflow schema-validates
afterwards.  ``FLEET_SMOKE_CHAOS=1`` escalates the chaos smoke to the
full fault menu (kill + hang + corrupted descriptor) injected from a
deterministic :class:`repro.fleet.FaultPlan` under worker supervision.
``FLEET_SMOKE_TELEMETRY=1`` escalates the telemetry smoke to a
fully-profiled process run whose Chrome trace (written to
``FLEET_SMOKE_TRACE`` when set) and Prometheus exposition the CI
workflow schema-validates; the **telemetry** benchmark compares the
telemetry-off columnar hot loop against coarse-span and fully-profiled
instrumentation and asserts the observability tax stays within the
acceptance ceiling.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np
import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    InterferenceEpisode,
    RunOptions,
    TelemetryConfig,
    build_fleet,
    churn_timeline,
    synthesize_datacenter,
)
from repro.fleet.benchutil import run_metadata
from repro.fleet.shm import leaked_segments
from repro.metrics.counters import N_COUNTERS
from repro.metrics.store import HostCounterStore

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_fleet.json"

#: The columnar hot-loop options every executor comparison times.
_COLUMNAR = RunOptions(analyze=False, report="columnar")

#: Two shards of ~500 VMs keep per-application sibling pools large — the
#: regime where the scalar loop's per-VM sibling handling dominates.
FULL_SCALE_VMS = 1000
FULL_SCALE_SHARDS = 2
#: Acceptance floor for the batched epoch engine at full scale.
MIN_ENGINE_SPEEDUP = 5.0
#: Acceptance floor for the batch substrate (+ parallel shards) over the
#: PR 1 baseline, end-to-end through ``Fleet.run_epoch`` at 2k VMs.
MIN_SUBSTRATE_SPEEDUP = 5.0


def _merge_bench_record(key: str, record: Dict) -> None:
    """Merge one benchmark section into ``BENCH_fleet.json``.

    Every record is stamped with
    :func:`repro.fleet.benchutil.run_metadata` on the way in — the same
    provenance envelope the telemetry exporters use — so trajectories
    across commits/machines stay orderable.
    """
    data: Dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    if "benchmark" in data:  # legacy flat engine-only record
        data = {"fleet_epoch_engine": data}
    data[key] = {**record, "run_metadata": run_metadata(REPO_ROOT)}
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _fast_config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _churn_timeline_for(
    num_vms: int, num_shards: int, epochs: int, seed: int
):
    """A ~1%-per-epoch churn timeline sized to the fleet.

    Half the churn budget goes to arrivals (``0.5% * num_vms`` per
    epoch); short exponential lifetimes make departures match that rate
    once the first tenants expire, so the steady event mix is roughly
    1% of the VM population per epoch.
    """
    return churn_timeline(
        [f"shard{s}" for s in range(num_shards)],
        epochs=epochs,
        seed=seed,
        arrivals_per_epoch=max(0.25, 0.005 * num_vms),
        mean_lifetime_epochs=max(4.0, epochs / 3.0),
    )


def _prepare_fleet(
    num_vms: int,
    num_shards: int,
    seed: int = 7,
    warmup_epochs: int = 3,
    substrate: str = "batch",
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    track_performance: bool = False,
    history_mode: str = "lazy",
    churn_epochs: Optional[int] = None,
    fault_policy=None,
    fault_plan=None,
    telemetry=None,
):
    """Build, bootstrap and warm a fleet into a quiet steady state.

    The warmup epochs run with the analyzer enabled so the repositories
    certify the production behaviours; afterwards the monitoring path is
    the steady-state hot loop the benchmarks time.  ``churn_epochs``
    attaches a ~1%-per-epoch churn timeline covering that many epochs
    (arrivals, departures and admission running alongside the hot loop).
    """
    scenario = synthesize_datacenter(
        num_vms,
        num_shards=num_shards,
        seed=seed,
        timeline=(
            _churn_timeline_for(num_vms, num_shards, churn_epochs, seed)
            if churn_epochs is not None
            else None
        ),
    )
    fleet = build_fleet(
        scenario,
        config=_fast_config(),
        engine="batch",
        mitigate=False,
        substrate=substrate,
        max_workers=max_workers,
        executor=executor,
        track_performance=track_performance,
        history_mode=history_mode,
        fault_policy=fault_policy,
        fault_plan=fault_plan,
        telemetry=telemetry,
    )
    fleet.bootstrap()
    for _ in range(warmup_epochs):
        fleet.run_epoch(analyze=True)
    return fleet


# ----------------------------------------------------------------------
# Epoch-engine comparison (monitoring pass only) — PR 1's benchmark.
# ----------------------------------------------------------------------
def _time_engine(fleet, engine: str, reps: int) -> Tuple[float, Dict]:
    """Best-of-``reps`` wall time of one full monitoring pass (no analyzer).

    With ``analyze=False, learn=False`` and unchanged counters the pass
    is free of side effects, so repetitions time the identical
    computation and the collected decisions compare exactly across
    engines.
    """
    best = float("inf")
    decisions: Dict = {}
    for _ in range(reps):
        start = time.perf_counter()
        for shard in fleet.shards.values():
            report = shard.deepdive.run_epoch(
                analyze=False, engine=engine, learn=False
            )
            for vm_name, obs in report.observations.items():
                decisions[(shard.shard_id, vm_name)] = (
                    obs.warning.action.value,
                    obs.warning.distance,
                    obs.warning.violated_dimensions,
                    obs.warning.siblings_consulted,
                    obs.warning.siblings_agreeing,
                )
        best = min(best, time.perf_counter() - start)
    return best, decisions


def _run_engine_comparison(num_vms: int, num_shards: int, reps: int) -> Dict:
    fleet = _prepare_fleet(num_vms, num_shards)
    scalar_s, scalar_decisions = _time_engine(fleet, "scalar", reps)
    batch_s, batch_decisions = _time_engine(fleet, "batch", reps)
    assert batch_decisions == scalar_decisions, (
        "batched and scalar engines must produce identical warning decisions"
    )
    vms = fleet.total_vms()
    return {
        "benchmark": "fleet_epoch_engine",
        "vms": vms,
        "hosts": fleet.total_hosts(),
        "shards": len(fleet.shards),
        "timing_reps": reps,
        "scalar_epoch_seconds": scalar_s,
        "batch_epoch_seconds": batch_s,
        "speedup": scalar_s / batch_s,
        "batch_vms_per_second": vms / batch_s,
        "unix_time": time.time(),
    }


# ----------------------------------------------------------------------
# Substrate + parallelism comparison (end-to-end Fleet.run_epoch).
# ----------------------------------------------------------------------
def _time_fleet_epoch(fleet, reps: int) -> float:
    """Best-of-``reps`` wall time of one end-to-end fleet epoch
    (hardware simulation + monitoring, analyzer off)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fleet.run_epoch(analyze=False)
        best = min(best, time.perf_counter() - start)
    return best


def _decision_fingerprint(report) -> Dict:
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


def _run_substrate_comparison(
    num_vms: int,
    num_shards: int,
    scalar_reps: int,
    batch_reps: int,
    parallel_workers: int = 4,
) -> Dict:
    """Time the PR 1 baseline (scalar substrate, serial, ground truth on)
    against the batch substrate, serial and parallel."""
    baseline = _prepare_fleet(
        num_vms, num_shards, substrate="scalar", track_performance=True
    )
    batch = _prepare_fleet(num_vms, num_shards, substrate="batch")
    # Same epoch count so far -> the substrates must agree on decisions.
    assert _decision_fingerprint(
        baseline.run_epoch(analyze=False)
    ) == _decision_fingerprint(batch.run_epoch(analyze=False)), (
        "scalar and batch substrates must produce identical warning decisions"
    )
    scalar_s = _time_fleet_epoch(baseline, scalar_reps)
    batch_s = _time_fleet_epoch(batch, batch_reps)
    parallel = _prepare_fleet(
        num_vms, num_shards, substrate="batch", max_workers=parallel_workers
    )
    parallel_s = _time_fleet_epoch(parallel, batch_reps)
    parallel.shutdown()
    best_s = min(batch_s, parallel_s)
    vms = batch.total_vms()
    return {
        "benchmark": "fleet_substrate",
        "vms": vms,
        "hosts": batch.total_hosts(),
        "shards": len(batch.shards),
        "scalar_reps": scalar_reps,
        "batch_reps": batch_reps,
        "parallel_workers": parallel_workers,
        "pr1_baseline_epoch_seconds": scalar_s,
        "batch_epoch_seconds": batch_s,
        "batch_parallel_epoch_seconds": parallel_s,
        "substrate_speedup": scalar_s / batch_s,
        "parallel_speedup_over_serial_batch": batch_s / parallel_s,
        "end_to_end_speedup": scalar_s / best_s,
        "batch_vm_epochs_per_second": vms / batch_s,
        "unix_time": time.time(),
    }


# ----------------------------------------------------------------------
# Process-executor comparison (end-to-end Fleet.run_epoch, columnar).
# ----------------------------------------------------------------------
def _time_fleet_epoch_columnar(fleet, reps: int) -> float:
    """Best-of-``reps`` wall time of one columnar fleet epoch — the
    process executor's native exchange format (serial and thread fleets
    derive the same arrays in-process, so the comparison is like for
    like)."""
    return _time_fleet_epochs_columnar([fleet], reps)[0]


def _time_fleet_epochs_columnar(fleets, reps: int) -> list:
    """Best-of-``reps`` columnar epoch time for each fleet, interleaved.

    One rep times one epoch of *every* fleet back to back before the
    next rep starts.  On throttled or shared runners the achievable
    epoch rate drifts over a benchmark's lifetime (CPU burst credits,
    noisy neighbours); timing the configurations in interleaved rounds
    exposes each to the same drift, where back-to-back best-of-N loops
    hand the first configuration the freshest machine and overstate the
    others' overhead."""
    best = [float("inf")] * len(fleets)
    for _ in range(reps):
        for j, fleet in enumerate(fleets):
            start = time.perf_counter()
            fleet.run_epoch(_COLUMNAR)
            best[j] = min(best[j], time.perf_counter() - start)
    return best


def _columnar_fingerprint(report) -> Dict:
    return {
        (shard_id, vm_name): (
            int(shard_report.action_codes[i]),
            float(shard_report.distances[i]),
            int(shard_report.siblings_consulted[i]),
            int(shard_report.siblings_agreeing[i]),
        )
        for shard_id, shard_report in report.shard_reports.items()
        for i, vm_name in enumerate(shard_report.vm_names)
    }


def _run_process_comparison(
    num_vms: int,
    num_shards: int,
    reps: int,
    multi_workers: int = 4,
) -> Dict:
    """Serial in-process execution versus single- and multi-worker
    process execution (state-owning workers, shared-memory columnar
    exchange)."""
    serial = _prepare_fleet(num_vms, num_shards, executor="serial")
    single = _prepare_fleet(
        num_vms, num_shards, executor="process", max_workers=1
    )
    multi = _prepare_fleet(
        num_vms, num_shards, executor="process", max_workers=multi_workers
    )
    try:
        # All fleets are at the same epoch; executors must agree exactly.
        reference = _columnar_fingerprint(
            serial.run_epoch(_COLUMNAR)
        )
        assert reference == _columnar_fingerprint(
            single.run_epoch(_COLUMNAR)
        ), "single-worker process execution diverges from serial"
        assert reference == _columnar_fingerprint(
            multi.run_epoch(_COLUMNAR)
        ), f"{multi_workers}-worker process execution diverges from serial"
        serial_s, single_s, multi_s = _time_fleet_epochs_columnar(
            [serial, single, multi], reps
        )
        # The pure dispatch latency (submit -> worker wake -> tiny
        # result): the transport's share of the single-worker overhead.
        # The remainder of ``single_s - serial_s`` on a 1-core runner is
        # the two processes evicting each other's caches on the shared
        # core every epoch — see the module docstring.
        dispatch_s = float("inf")
        strategy = single._shard_strategy()
        for _ in range(10):
            start = time.perf_counter()
            strategy.worker_pids()
            dispatch_s = min(dispatch_s, time.perf_counter() - start)
    finally:
        multi.shutdown()
        single.shutdown()
        serial.shutdown()
    assert leaked_segments() == [], (
        "process fleets left shared-memory transport segments in /dev/shm"
    )
    vms = serial.total_vms()
    return {
        "benchmark": "fleet_process_executor",
        "vms": vms,
        "hosts": serial.total_hosts(),
        "shards": num_shards,
        "timing_reps": reps,
        "multi_workers": multi_workers,
        "cpu_count": os.cpu_count(),
        "serial_epoch_seconds": serial_s,
        "process_1w_epoch_seconds": single_s,
        "process_multiworker_epoch_seconds": multi_s,
        # The single-worker tax over serial: the per-epoch cost of
        # crossing the process boundary.  Negative means the worker beat
        # the serial loop outright.  ``dispatch_roundtrip_seconds`` is
        # the measured no-payload pool round trip — the shared-memory
        # transport's actual share of that tax (the columnar arrays
        # never touch the pipe); the rest is core sharing on 1-core
        # runners, which is why the <=5% floor (like the multi-worker
        # floor) is asserted only on >=4-core hosts.
        "process_1w_overhead_pct": 100.0 * (single_s / serial_s - 1.0),
        "dispatch_roundtrip_seconds": dispatch_s,
        "multiworker_speedup_over_single_worker": single_s / multi_s,
        "process_speedup_over_serial": serial_s / multi_s,
        "multiworker_vm_epochs_per_second": vms / multi_s,
        "unix_time": time.time(),
    }


# ----------------------------------------------------------------------
# Epoch-edge comparison (counter recording only): eager sample
# materialisation + history appends vs one ring ingest per host.
# ----------------------------------------------------------------------
def _synth_host_blocks(
    num_vms: int, vms_per_host: int = 2, seed: int = 3
) -> list:
    """Per-host ``(names, block)`` pairs shaped like a fleet epoch.

    The ingest cost depends only on the shapes (one small block per
    host, fleet-scale host counts), not on the counter values, so the
    blocks are synthesized instead of paying a full fleet build.
    """
    rng = np.random.default_rng(seed)
    blocks = []
    for h in range(num_vms // vms_per_host):
        names = tuple(f"h{h:05d}v{v}" for v in range(vms_per_host))
        blocks.append(
            (names, rng.uniform(1.0, 1e9, size=(vms_per_host, N_COUNTERS)))
        )
    return blocks


def _time_edge_mode(blocks, lazy: bool, epochs: int, reps: int, limit: int):
    """Best-of-``reps`` wall time of ``epochs`` telemetry commits.

    ``lazy=False`` is the eager mode: materialise one ``CounterSample``
    per VM, append to its history, amortised trim — the pre-store
    per-VM work, **plus** the ring write both modes share (the old path
    paid a cheap per-host list append there instead, so the recorded
    eager time very slightly overstates the pre-store edge and the
    speedup is an upper bound on the before/after ratio; the per-VM
    term dominates it by far).  ``lazy=True`` is the ring ingest the
    fleet hot loop now performs.
    """
    best = float("inf")
    for _ in range(reps):
        stores = []
        for names, _block in blocks:
            store = HostCounterStore(history_limit=limit, lazy=lazy)
            for name in names:
                store.ensure(name)
            stores.append(store)
        start = time.perf_counter()
        for _ in range(epochs):
            for store, (names, block) in zip(stores, blocks):
                store.ingest(names, block, 1.0)
        best = min(best, time.perf_counter() - start)
    return best


def _run_epoch_edge_comparison(
    num_vms: int, epochs: int, reps: int, history_limit: int = 64
) -> Dict:
    blocks = _synth_host_blocks(num_vms)
    eager_s = _time_edge_mode(
        blocks, lazy=False, epochs=epochs, reps=reps, limit=history_limit
    )
    lazy_s = _time_edge_mode(
        blocks, lazy=True, epochs=epochs, reps=reps, limit=history_limit
    )
    return {
        "benchmark": "fleet_epoch_edge",
        "vms": num_vms,
        "hosts": len(blocks),
        "epochs": epochs,
        "timing_reps": reps,
        "history_limit": history_limit,
        "eager_seconds": eager_s,
        "lazy_seconds": lazy_s,
        "speedup": eager_s / lazy_s,
        "lazy_vm_epochs_per_second": num_vms * epochs / lazy_s,
        "unix_time": time.time(),
    }


# ----------------------------------------------------------------------
# Churn comparison: steady-state hot loop vs 1%-per-epoch lifecycle
# churn (arrivals through interference-aware admission, departures,
# ring grow/shrink, demand-matrix and placement-cache rebuilds).
# ----------------------------------------------------------------------
def _time_epochs(fleet, epochs: int) -> float:
    """Wall time of ``epochs`` consecutive epochs (analyzer off).

    Churn makes consecutive epochs deliberately non-identical, so the
    whole stretch is timed once instead of best-of-reps on one epoch.
    """
    start = time.perf_counter()
    for _ in range(epochs):
        fleet.run_epoch(analyze=False)
    return time.perf_counter() - start


def _run_churn_comparison(
    num_vms: int, num_shards: int, epochs: int, seed: int = 7, reps: int = 2
) -> Dict:
    """Best-of-``reps`` stretches for both fleets (fresh fleets per rep;
    a churn stretch is never the same epoch twice, so whole stretches —
    not single epochs — are the comparable unit)."""
    steady_s = float("inf")
    churn_s = float("inf")
    vms_before = vms_after = num_vms
    lifecycle: Dict[str, Dict[str, int]] = {}
    for _ in range(reps):
        steady = _prepare_fleet(num_vms, num_shards, seed=seed)
        steady_s = min(steady_s, _time_epochs(steady, epochs))
        churn = _prepare_fleet(
            num_vms, num_shards, seed=seed, churn_epochs=epochs + 10
        )
        vms_before = churn.total_vms()
        warmup_stats = churn.lifecycle_stats()
        elapsed = _time_epochs(churn, epochs)
        if elapsed < churn_s:
            churn_s = elapsed
            vms_after = churn.total_vms()
            # Only the timed stretch's events count toward the rate:
            # the warmup epochs churned too.
            lifecycle = {
                shard_id: {
                    key: value - warmup_stats.get(shard_id, {}).get(key, 0)
                    for key, value in stats.items()
                }
                for shard_id, stats in churn.lifecycle_stats().items()
            }
    totals: Dict[str, int] = {}
    for stats in lifecycle.values():
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    events = (
        totals.get("arrivals_admitted", 0)
        + totals.get("arrivals_rejected", 0)
        + totals.get("departures", 0)
    )
    steady_rate = num_vms * epochs / steady_s
    churn_vms = 0.5 * (vms_before + vms_after)
    churn_rate = churn_vms * epochs / churn_s
    return {
        "benchmark": "fleet_churn",
        "vms": num_vms,
        "shards": num_shards,
        "epochs": epochs,
        "timing_reps": reps,
        "lifecycle_events": events,
        "churn_pct_per_epoch": 100.0 * events / (churn_vms * epochs),
        "lifecycle_totals": totals,
        "steady_epoch_seconds": steady_s / epochs,
        "churn_epoch_seconds": churn_s / epochs,
        "steady_vm_epochs_per_second": steady_rate,
        "churn_vm_epochs_per_second": churn_rate,
        "churn_throughput_fraction": churn_rate / steady_rate,
        "unix_time": time.time(),
    }


# ----------------------------------------------------------------------
# Tiny-scale smoke runs (tier-1 time budget): pytest -m bench_smoke
# ----------------------------------------------------------------------
@pytest.mark.bench_smoke
def test_fleet_engine_smoke():
    """Engines agree and the batch pass completes at tiny scale."""
    record = _run_engine_comparison(num_vms=60, num_shards=2, reps=2)
    assert record["vms"] == 60
    assert record["batch_epoch_seconds"] > 0
    print("\nfleet engine smoke:", json.dumps(record, indent=2))


@pytest.mark.bench_smoke
def test_fleet_substrate_smoke():
    """Substrates agree and both complete an epoch at tiny scale."""
    record = _run_substrate_comparison(
        num_vms=60, num_shards=2, scalar_reps=2, batch_reps=2, parallel_workers=2
    )
    assert record["vms"] == 60
    assert record["batch_epoch_seconds"] > 0
    print("\nfleet substrate smoke:", json.dumps(record, indent=2))


@pytest.mark.bench_smoke
def test_fleet_epoch_edge_smoke():
    """Both telemetry modes complete and agree on recorded history at
    tiny scale (the CI matrix also runs the whole smoke suite with
    ``FLEET_SMOKE_HISTORY_MODE=eager``)."""
    record = _run_epoch_edge_comparison(num_vms=200, epochs=12, reps=2)
    assert record["eager_seconds"] > 0 and record["lazy_seconds"] > 0
    # The timed paths must also record identical histories.
    for names, block in _synth_host_blocks(20):
        lazy = HostCounterStore(history_limit=4, lazy=True)
        eager = HostCounterStore(history_limit=4, lazy=False)
        for name in names:
            lazy.ensure(name)
            eager.ensure(name)
        for epoch in range(12):
            lazy.ingest(names, block + epoch, 1.0)
            eager.ingest(names, block + epoch, 1.0)
        for name in names:
            assert list(lazy.histories[name]) == list(eager.histories[name])
    _merge_bench_record("fleet_epoch_edge_smoke", record)
    print("\nfleet epoch edge smoke:", json.dumps(record, indent=2))


@pytest.mark.bench_smoke
def test_fleet_churn_smoke():
    """Steady vs churn throughput at tiny scale: the lifecycle engine
    must actually churn the fleet and both loops must complete (the
    >= 50% throughput floor is asserted at 2k scale)."""
    record = _run_churn_comparison(num_vms=60, num_shards=2, epochs=8)
    assert record["lifecycle_events"] > 0, "the smoke timeline must churn"
    assert record["churn_vm_epochs_per_second"] > 0
    _merge_bench_record("fleet_churn_smoke", record)
    print("\nfleet churn smoke:", json.dumps(record, indent=2))


@pytest.mark.bench_smoke
def test_fleet_executor_smoke():
    """The env-selected executor and history mode complete an epoch and
    agree with the serial loop (the CI matrix runs this under thread and
    process executors plus eager-history and churn legs).  With
    ``FLEET_SMOKE_CHURN=1`` both fleets carry the same churn timeline,
    so the fingerprint comparison covers worker-side lifecycle
    application too."""
    executor = os.environ.get("FLEET_SMOKE_EXECUTOR", "thread")
    history_mode = os.environ.get("FLEET_SMOKE_HISTORY_MODE", "lazy")
    churn_epochs = 16 if os.environ.get("FLEET_SMOKE_CHURN") == "1" else None
    serial = _prepare_fleet(
        60, num_shards=2, executor="serial", churn_epochs=churn_epochs
    )
    fleet = _prepare_fleet(
        60,
        num_shards=2,
        executor=executor,
        max_workers=2,
        history_mode=history_mode,
        churn_epochs=churn_epochs,
    )
    try:
        reference = _columnar_fingerprint(
            serial.run_epoch(_COLUMNAR)
        )
        assert reference == _columnar_fingerprint(
            fleet.run_epoch(_COLUMNAR)
        ), f"executor {executor!r} diverges from serial"
        elapsed = _time_fleet_epoch_columnar(fleet, reps=2)
        assert elapsed > 0
        record = {
            "benchmark": "fleet_executor_smoke",
            "executor": executor,
            "history_mode": history_mode,
            "churn": churn_epochs is not None,
            # Live topology: under the process executor churn happens in
            # the workers, so the parent's total_vms() is a stale
            # template — stats() collects from the workers.
            "vms": int(fleet.stats()["vms"]),
            "epoch_seconds": elapsed,
            "cpu_count": os.cpu_count(),
            "unix_time": time.time(),
        }
        _merge_bench_record(f"fleet_executor_smoke_{executor}", record)
        print(f"\nfleet executor smoke [{executor}]:", json.dumps(record, indent=2))
    finally:
        fleet.shutdown()
        serial.shutdown()
    if executor == "process":
        # The CI process leg re-checks /dev/shm from the workflow too;
        # failing here names the leaked segments.
        assert leaked_segments() == [], (
            "process smoke run left shared-memory segments in /dev/shm"
        )


@pytest.mark.bench_smoke
def test_fleet_simulation_smoke():
    """A tiny fleet runs end-to-end (simulate + monitor + detect)."""
    scenario = synthesize_datacenter(
        40,
        num_shards=2,
        seed=13,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=4, end_epoch=8, kind="memory"
            )
        ],
    )
    fleet = build_fleet(scenario, config=_fast_config(), engine="batch", mitigate=False)
    fleet.bootstrap()
    start = time.perf_counter()
    epochs = 8
    for _ in range(epochs):
        fleet.run_epoch(analyze=True)
    elapsed = time.perf_counter() - start
    assert fleet.detections(), "the injected episode must be detected"
    rate = fleet.total_vms() * epochs / elapsed
    print(f"\nfleet simulation smoke: {rate:.0f} VM-epochs/s over {epochs} epochs")


# ----------------------------------------------------------------------
# Full scale, records BENCH_fleet.json
# ----------------------------------------------------------------------
def test_fleet_scale_1000_vms():
    """The batched epoch engine is >= 5x the scalar loop at 1000 VMs."""
    record = _run_engine_comparison(
        num_vms=FULL_SCALE_VMS, num_shards=FULL_SCALE_SHARDS, reps=3
    )
    _merge_bench_record("fleet_epoch_engine", record)
    print("\nfleet scale:", json.dumps(record, indent=2))
    assert record["speedup"] >= MIN_ENGINE_SPEEDUP, (
        f"batched engine speedup {record['speedup']:.1f}x below the "
        f"{MIN_ENGINE_SPEEDUP:.0f}x acceptance floor (scalar "
        f"{record['scalar_epoch_seconds']:.3f}s vs batch "
        f"{record['batch_epoch_seconds']:.3f}s at {record['vms']} VMs)"
    )


def test_fleet_substrate_scale_2000_vms():
    """Batch substrate (+ parallel shards) is >= 5x the PR 1 baseline
    end-to-end at 2k VMs."""
    record = _run_substrate_comparison(
        num_vms=2000, num_shards=4, scalar_reps=2, batch_reps=4
    )
    _merge_bench_record("fleet_substrate_2k", record)
    print("\nfleet substrate 2k:", json.dumps(record, indent=2))
    assert record["end_to_end_speedup"] >= MIN_SUBSTRATE_SPEEDUP, (
        f"end-to-end speedup {record['end_to_end_speedup']:.1f}x below the "
        f"{MIN_SUBSTRATE_SPEEDUP:.0f}x acceptance floor (PR 1 baseline "
        f"{record['pr1_baseline_epoch_seconds']:.3f}s vs best batch "
        f"{min(record['batch_epoch_seconds'], record['batch_parallel_epoch_seconds']):.3f}s "
        f"at {record['vms']} VMs)"
    )


def test_fleet_substrate_scale_10000_vms():
    """The batch substrate keeps scaling at 10k VMs (the north star's
    fleet size); records the scalar/batch/parallel comparison."""
    record = _run_substrate_comparison(
        num_vms=10_000, num_shards=8, scalar_reps=1, batch_reps=2
    )
    _merge_bench_record("fleet_substrate_10k", record)
    print("\nfleet substrate 10k:", json.dumps(record, indent=2))
    assert record["substrate_speedup"] >= 3.0, (
        f"substrate speedup collapsed at 10k VMs: "
        f"{record['substrate_speedup']:.1f}x"
    )


def test_fleet_process_scale_2000_vms():
    """Serial vs process execution at 2k VMs: executors agree exactly;
    the epoch timings, the single-worker IPC tax of the shared-memory
    transport and the worker scaling are recorded."""
    record = _run_process_comparison(num_vms=2000, num_shards=4, reps=7)
    _merge_bench_record("fleet_process_2k", record)
    print("\nfleet process 2k:", json.dumps(record, indent=2))
    assert record["process_multiworker_epoch_seconds"] > 0
    # The transport itself must stay cheap everywhere: the no-payload
    # dispatch round trip bounds what shared memory leaves on the pipe.
    assert record["dispatch_roundtrip_seconds"] < 0.05
    if (os.cpu_count() or 1) >= 4:
        # On real multi-core hardware the worker keeps its own core (no
        # per-epoch cache eviction), so the single-worker process
        # executor must track the serial loop.
        assert record["process_1w_overhead_pct"] <= 5.0, (
            "single-worker process overhead "
            f"{record['process_1w_overhead_pct']:.1f}% exceeds the 5% "
            f"acceptance ceiling on a {os.cpu_count()}-core host"
        )


def test_fleet_epoch_edge_2000_vms():
    """Epoch-edge cost at 2k VMs: ring ingest vs eager materialisation
    (recorded; the acceptance floor is asserted at 10k)."""
    record = _run_epoch_edge_comparison(num_vms=2000, epochs=30, reps=3)
    _merge_bench_record("fleet_epoch_edge_2k", record)
    print("\nfleet epoch edge 2k:", json.dumps(record, indent=2))
    assert record["lazy_seconds"] > 0


def test_fleet_epoch_edge_10000_vms():
    """The ring ingest is >= 1.3x the eager epoch edge at the north
    star's 10k-VM fleet (sample materialisation + history appends were
    the last per-VM Python work in a batch epoch)."""
    record = _run_epoch_edge_comparison(num_vms=10_000, epochs=20, reps=3)
    _merge_bench_record("fleet_epoch_edge_10k", record)
    print("\nfleet epoch edge 10k:", json.dumps(record, indent=2))
    assert record["speedup"] >= 1.3, (
        f"ring ingest speedup {record['speedup']:.2f}x below the 1.3x "
        f"acceptance floor (eager {record['eager_seconds']:.3f}s vs lazy "
        f"{record['lazy_seconds']:.3f}s for {record['epochs']} epochs at "
        f"{record['vms']} VMs)"
    )


def test_fleet_churn_scale_2000_vms():
    """1%-per-epoch churn (arrivals via interference-aware admission,
    departures, ring grow/shrink, cache rebuilds) must sustain >= 50%
    of the steady-state ``Fleet.run_epoch`` VM-epochs/s at 2k VMs."""
    record = _run_churn_comparison(num_vms=2000, num_shards=4, epochs=15)
    _merge_bench_record("fleet_churn_2k", record)
    print("\nfleet churn 2k:", json.dumps(record, indent=2))
    assert record["lifecycle_events"] >= 100, (
        f"expected a churn-heavy run, got {record['lifecycle_events']} events"
    )
    assert record["churn_throughput_fraction"] >= 0.5, (
        f"churn throughput fell to "
        f"{100 * record['churn_throughput_fraction']:.0f}% of steady state "
        f"({record['churn_vm_epochs_per_second']:.0f} vs "
        f"{record['steady_vm_epochs_per_second']:.0f} VM-epochs/s) — "
        "below the 50% acceptance floor"
    )


def test_fleet_process_scale_10000_vms():
    """Serial vs process execution at the north star's 10k-VM fleet:
    records the end-to-end multi-worker speedup over single-worker
    process execution (the number that scales with cores — ~1x on a
    single-core runner, recorded together with ``cpu_count``)."""
    record = _run_process_comparison(num_vms=10_000, num_shards=8, reps=5)
    _merge_bench_record("fleet_process_10k", record)
    print("\nfleet process 10k:", json.dumps(record, indent=2))
    assert record["multiworker_speedup_over_single_worker"] > 0
    assert record["dispatch_roundtrip_seconds"] < 0.05
    if (os.cpu_count() or 1) >= 4:
        # On real multi-core hardware the shard groups must overlap and
        # the single worker must track the serial loop (no per-epoch
        # cache eviction from core sharing).
        assert record["multiworker_speedup_over_single_worker"] >= 1.5, (
            "multi-worker process execution failed to scale with cores: "
            f"{record['multiworker_speedup_over_single_worker']:.2f}x "
            f"on {os.cpu_count()} cores"
        )
        assert record["process_1w_overhead_pct"] <= 5.0, (
            "single-worker process overhead "
            f"{record['process_1w_overhead_pct']:.1f}% exceeds the 5% "
            f"acceptance ceiling on a {os.cpu_count()}-core host"
        )


# ----------------------------------------------------------------------
# Telemetry overhead (the observability bus, PR 10)
# ----------------------------------------------------------------------
#: Acceptance ceiling for fully-profiled telemetry on the columnar hot
#: loop (asserted on >=4-core hosts, like the executor floors).
MAX_TELEMETRY_OVERHEAD_PCT = 3.0


def _validate_chrome_trace(trace_path: Path, expect_worker_tracks: bool):
    """Parse an exported trace and return the complete-event name set.

    Checks the trace_event schema Perfetto loads: ``X`` events carry
    name/ts/dur/pid/tid, coarse parent phases are present, and (on
    process legs) worker pids appear as their own named tracks.
    """
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    assert complete, "trace must contain complete ('X') span events"
    for event in complete:
        for field in ("name", "ts", "dur", "pid", "tid"):
            assert field in event, f"span event missing {field!r}"
    names = {e["name"] for e in complete}
    assert {"epoch", "simulate", "monitor"} <= names, (
        f"phase spans missing from trace: {sorted(names)}"
    )
    tracks = {
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert "fleet parent" in tracks
    if expect_worker_tracks:
        # Dispatch/merge bracket the pool exchange (process executor
        # only); the workers' deep spans land under their own pids.
        assert {"dispatch", "merge"} <= names, (
            f"pool-exchange spans missing from trace: {sorted(names)}"
        )
        assert any(t.startswith("fleet worker") for t in tracks), (
            "worker pids must appear as their own trace tracks"
        )
    assert "git_rev" in trace.get("otherData", {}), (
        "trace must carry the run_metadata provenance envelope"
    )
    return names


def _validate_prometheus(text: str, min_metrics: int = 10) -> int:
    """Every non-comment line parses as ``metric value``; returns the
    sample count."""
    samples = 0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)
        assert name_part.startswith("fleet_") or name_part.startswith(
            "dashboard_"
        ), f"unexpected metric family: {line}"
        samples += 1
    assert samples >= min_metrics, (
        f"expected >= {min_metrics} Prometheus samples, got {samples}"
    )
    return samples


def _run_telemetry_comparison(
    num_vms: int,
    num_shards: int,
    reps: int,
    workers: int = 4,
    trace_path: Optional[Path] = None,
) -> Dict:
    """Telemetry off vs fully profiled vs sampled on the process
    executor's columnar hot loop (the most instrumented path: coarse
    parent spans + per-epoch worker span batches on the shm
    descriptors).  All three fleets must agree bit-exactly; the timing
    rounds are interleaved so machine drift hits every mode equally."""
    off = _prepare_fleet(
        num_vms, num_shards, executor="process", max_workers=workers
    )
    on = _prepare_fleet(
        num_vms,
        num_shards,
        executor="process",
        max_workers=workers,
        telemetry=TelemetryConfig(enabled=True, profile_every=1),
    )
    sampled = _prepare_fleet(
        num_vms,
        num_shards,
        executor="process",
        max_workers=workers,
        telemetry=TelemetryConfig(enabled=True, profile_every=8),
    )
    try:
        reference = _columnar_fingerprint(off.run_epoch(_COLUMNAR))
        assert reference == _columnar_fingerprint(
            on.run_epoch(_COLUMNAR)
        ), "fully-profiled telemetry changed the decision columns"
        assert reference == _columnar_fingerprint(
            sampled.run_epoch(_COLUMNAR)
        ), "sampled telemetry changed the decision columns"
        off_s, on_s, sampled_s = _time_fleet_epochs_columnar(
            [off, on, sampled], reps
        )
        registry = on.telemetry
        totals = registry.span_totals()
        # The profiled fleet really recorded the run it was timed on.
        assert totals["epoch"]["count"] > 0
        assert totals["simulate"]["count"] > 0
        prometheus_samples = _validate_prometheus(
            registry.render_prometheus()
        )
        if trace_path is not None:
            registry.export_chrome_trace(trace_path)
            _validate_chrome_trace(trace_path, expect_worker_tracks=True)
    finally:
        sampled.shutdown()
        on.shutdown()
        off.shutdown()
    assert leaked_segments() == [], (
        "telemetry benchmark left shared-memory segments in /dev/shm"
    )
    vms = off.total_vms()
    return {
        "benchmark": "fleet_telemetry",
        "vms": vms,
        "shards": num_shards,
        "executor": "process",
        "workers": workers,
        "timing_reps": reps,
        "cpu_count": os.cpu_count(),
        "off_epoch_seconds": off_s,
        "profiled_epoch_seconds": on_s,
        "sampled_epoch_seconds": sampled_s,
        # The observability tax: fully-profiled (every epoch ships
        # worker span batches on the descriptors) and sampled
        # (deep spans every 8th epoch) over the untimed loop.
        # Negative values mean the noise floor, i.e. ~0%.
        "profiled_overhead_pct": 100.0 * (on_s / off_s - 1.0),
        "sampled_overhead_pct": 100.0 * (sampled_s / off_s - 1.0),
        "prometheus_samples": prometheus_samples,
        "spans_recorded": sum(t["count"] for t in totals.values()),
        "unix_time": time.time(),
    }


@pytest.mark.bench_smoke
def test_fleet_telemetry_smoke(tmp_path):
    """A profiled fleet agrees bit-exactly with an uninstrumented one
    and exports a valid Chrome trace + Prometheus text.  The CI
    ``FLEET_SMOKE_TELEMETRY=1`` leg runs the profiled fleet on the
    process executor (worker span batches riding the shm descriptors,
    worker pids as trace tracks) and writes the trace to
    ``FLEET_SMOKE_TRACE`` for artifact upload; otherwise a cheap serial
    leg validates the same schemas."""
    telemetry_leg = os.environ.get("FLEET_SMOKE_TELEMETRY") == "1"
    executor = "process" if telemetry_leg else "serial"
    workers = 2 if telemetry_leg else None

    plain = _prepare_fleet(60, num_shards=2, executor="serial")
    profiled = _prepare_fleet(
        60,
        num_shards=2,
        executor=executor,
        max_workers=workers,
        telemetry=TelemetryConfig(enabled=True, profile_every=1),
    )
    trace_path = Path(
        os.environ.get("FLEET_SMOKE_TRACE") or tmp_path / "smoke.trace.json"
    )
    try:
        epochs = 4
        for _ in range(epochs):
            assert _columnar_fingerprint(
                plain.run_epoch(_COLUMNAR)
            ) == _columnar_fingerprint(profiled.run_epoch(_COLUMNAR)), (
                f"profiled {executor} fleet diverges from the plain serial loop"
            )
        registry = profiled.telemetry
        # _prepare_fleet's 3 warmup epochs are instrumented too.
        assert registry.counter("epochs_total") == epochs + 3
        registry.export_chrome_trace(trace_path)
        names = _validate_chrome_trace(
            trace_path, expect_worker_tracks=telemetry_leg
        )
        prometheus_samples = _validate_prometheus(registry.render_prometheus())
    finally:
        profiled.shutdown()
        plain.shutdown()
    if telemetry_leg:
        assert leaked_segments() == [], (
            "telemetry smoke run left shared-memory segments in /dev/shm"
        )
    record = {
        "benchmark": "fleet_telemetry_smoke",
        "executor": executor,
        "vms": 60,
        "span_kinds_traced": sorted(names),
        "prometheus_samples": prometheus_samples,
        "trace_bytes": trace_path.stat().st_size,
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_telemetry_smoke", record)
    print("\nfleet telemetry smoke:", json.dumps(record, indent=2))


def test_fleet_telemetry_2000_vms(tmp_path):
    """Full per-epoch profiling must cost <= 3% of the columnar hot
    loop at 2k VMs on the process executor (asserted on >=4-core hosts;
    recorded everywhere with ``cpu_count``).  The profiled fleet's
    trace and Prometheus exposition are schema-validated on the way —
    a benchmark number never lands without its observability evidence
    having parsed."""
    record = _run_telemetry_comparison(
        num_vms=2000,
        num_shards=4,
        reps=5,
        trace_path=tmp_path / "fleet2k.trace.json",
    )
    _merge_bench_record("fleet_telemetry_2k", record)
    print("\nfleet telemetry 2k:", json.dumps(record, indent=2))
    assert record["prometheus_samples"] >= 10
    if (os.cpu_count() or 1) >= 4:
        assert record["profiled_overhead_pct"] <= MAX_TELEMETRY_OVERHEAD_PCT, (
            "fully-profiled telemetry overhead "
            f"{record['profiled_overhead_pct']:.1f}% exceeds the "
            f"{MAX_TELEMETRY_OVERHEAD_PCT:.0f}% acceptance ceiling on a "
            f"{os.cpu_count()}-core host (off "
            f"{record['off_epoch_seconds']:.3f}s vs profiled "
            f"{record['profiled_epoch_seconds']:.3f}s)"
        )
        assert record["sampled_overhead_pct"] <= MAX_TELEMETRY_OVERHEAD_PCT


# ----------------------------------------------------------------------
# Hierarchical fleets + campaign runner (the 100k-VM scale tier)
# ----------------------------------------------------------------------
def _run_campaign_cell_bench(
    spec, tag: str
) -> Dict:
    """Run one campaign cell into a temp directory and summarise it.

    The cell's npz is schema-validated before the record is returned,
    so a benchmark number never lands in ``BENCH_fleet.json`` without
    its columnar evidence having parsed.
    """
    import tempfile

    from repro.fleet import run_cell, validate_cell_npz

    cell = spec.cells()[0]
    campaign_dir = Path(tempfile.mkdtemp(prefix=f"repro-{tag}-"))
    summary = run_cell(spec, cell, campaign_dir, config=_fast_config())
    validate_cell_npz(campaign_dir / f"{cell.cell_id}.npz")
    return summary


@pytest.mark.bench_smoke
def test_fleet_campaign_smoke(tmp_path):
    """A tiny 2x2 campaign grid runs end to end: manifest and per-cell
    npz written, schema-validated, resume a no-op.  The CI
    ``FLEET_SMOKE_CAMPAIGN=1`` leg runs the cells on hierarchical
    process-executor fleets (regions riding the shared-memory
    transport, checked for /dev/shm leaks); otherwise the regions run
    serial."""
    from repro.fleet import CampaignRunner, CampaignSpec, validate_cell_npz

    process_leg = os.environ.get("FLEET_SMOKE_CAMPAIGN") == "1"
    spec = CampaignSpec(
        name="smoke",
        num_vms=24,
        num_shards=2,
        num_regions=2,
        epochs=6,
        seed=3,
        executor="process" if process_leg else None,
        region_workers=1 if process_leg else None,
        churn_rates=(0.0, 0.05),
        interference_mixes=("none", "memory"),
    )
    campaign_dir = tmp_path / "campaign"
    runner = CampaignRunner(spec, campaign_dir, config=_fast_config())
    start = time.perf_counter()
    summaries = runner.run()
    elapsed = time.perf_counter() - start
    assert (campaign_dir / "manifest.json").exists()
    assert len(summaries) == 4
    for cell in spec.cells():
        validate_cell_npz(campaign_dir / f"{cell.cell_id}.npz")
    confirmed_by_mix: Dict = {}
    for summary in summaries:
        mix = summary["params"]["interference_mix"]
        confirmed_by_mix[mix] = confirmed_by_mix.get(mix, 0) + summary["confirmed"]
    assert confirmed_by_mix["memory"] > 0, (
        "the memory-interference cells must detect something"
    )
    mtimes = {p.name: p.stat().st_mtime_ns for p in campaign_dir.glob("*.npz")}
    runner.run(resume=True)
    assert mtimes == {
        p.name: p.stat().st_mtime_ns for p in campaign_dir.glob("*.npz")
    }, "resume over a complete campaign must not rewrite cells"
    if process_leg:
        assert leaked_segments() == [], (
            "campaign smoke run left shared-memory segments in /dev/shm"
        )
    record = {
        "benchmark": "fleet_campaign_smoke",
        "executor": "process" if process_leg else "serial",
        "cells": len(summaries),
        "total_seconds": elapsed,
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_campaign_smoke", record)
    print("\nfleet campaign smoke:", json.dumps(record, indent=2))


def test_fleet_campaign_scale():
    """A 2x2 campaign (churn x interference) over 400-VM hierarchical
    fleets: every cell completes, every npz validates, and the grid
    throughput is recorded as ``fleet_campaign``."""
    import tempfile

    from repro.fleet import CampaignRunner, CampaignSpec, validate_cell_npz

    spec = CampaignSpec(
        name="bench",
        num_vms=400,
        num_shards=4,
        num_regions=2,
        epochs=10,
        seed=7,
        churn_rates=(0.0, 0.01),
        interference_mixes=("none", "mixed"),
    )
    campaign_dir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    runner = CampaignRunner(spec, campaign_dir, config=_fast_config())
    start = time.perf_counter()
    summaries = runner.run()
    elapsed = time.perf_counter() - start
    for cell in spec.cells():
        validate_cell_npz(campaign_dir / f"{cell.cell_id}.npz")
    total_vm_epochs = sum(s["observations"] for s in summaries)
    confirmed = {
        s["params"]["interference_mix"]: s["confirmed"] for s in summaries
    }
    assert confirmed["mixed"] > 0, "interference cells must confirm detections"
    record = {
        "benchmark": "fleet_campaign",
        "grid": {
            "churn_rate": list(spec.churn_rates),
            "interference_mix": list(spec.interference_mixes),
        },
        "cells": len(summaries),
        "vms_per_cell": spec.num_vms,
        "regions_per_cell": spec.num_regions,
        "epochs_per_cell": spec.epochs,
        "total_seconds": elapsed,
        "total_vm_epochs": total_vm_epochs,
        "vm_epochs_per_second": total_vm_epochs
        / max(sum(s["run_seconds"] for s in summaries), 1e-9),
        "cell_run_seconds": [s["run_seconds"] for s in summaries],
        "cell_epoch_p50_seconds": [
            s["epoch_seconds"]["p50"] for s in summaries
        ],
        "cell_slo_violation_fractions": [
            s["slo_violation_fraction"] for s in summaries
        ],
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_campaign", record)
    print("\nfleet campaign:", json.dumps(record, indent=2))


# ----------------------------------------------------------------------
# Snapshot/resume (the long-lived service path, PR 8)
# ----------------------------------------------------------------------
@pytest.mark.bench_smoke
def test_fleet_snapshot_smoke(tmp_path):
    """Kill a run mid-way, resume from the checkpoint file, and land on
    bit-identical decisions.  The CI ``FLEET_SMOKE_SNAPSHOT=1`` leg runs
    this under the process executor (the checkpoint snapshots the
    *workers'* live state, and the interrupted fleet must leave
    ``/dev/shm`` clean); otherwise a cheap serial roundtrip.
    ``FLEET_SMOKE_CKPT`` redirects the checkpoint file so the workflow
    can schema-validate it after the run."""
    from repro.fleet import resume_fleet, validate_checkpoint_file

    snapshot_leg = os.environ.get("FLEET_SMOKE_SNAPSHOT") == "1"
    executor = "process" if snapshot_leg else "serial"
    workers = 2 if snapshot_leg else None
    epochs, split = 6, 3

    reference = _prepare_fleet(60, num_shards=2, executor="serial")
    try:
        expected = [
            _columnar_fingerprint(
                reference.run_epoch(_COLUMNAR)
            )
            for _ in range(epochs)
        ]
    finally:
        reference.shutdown()

    fleet = _prepare_fleet(60, num_shards=2, executor=executor, max_workers=workers)
    ckpt_path = Path(os.environ.get("FLEET_SMOKE_CKPT") or tmp_path / "smoke.ckpt")
    try:
        got = [
            _columnar_fingerprint(
                fleet.run_epoch(_COLUMNAR)
            )
            for _ in range(split)
        ]
        t0 = time.perf_counter()
        fleet.snapshot(ckpt_path)
        snapshot_s = time.perf_counter() - t0
    finally:
        fleet.shutdown()  # the "kill": the original fleet is gone.
    if executor == "process":
        assert leaked_segments() == [], (
            "interrupted process fleet left shared-memory segments in /dev/shm"
        )

    meta = validate_checkpoint_file(ckpt_path, deep=True)
    t0 = time.perf_counter()
    resumed = resume_fleet(ckpt_path, executor=executor, max_workers=workers)
    resume_s = time.perf_counter() - t0
    try:
        got += [
            _columnar_fingerprint(
                resumed.run_epoch(_COLUMNAR)
            )
            for _ in range(epochs - split)
        ]
    finally:
        resumed.shutdown()
    assert got == expected, (
        f"resumed {executor} run diverged from the uninterrupted serial run"
    )
    if executor == "process":
        assert leaked_segments() == [], (
            "resumed process fleet left shared-memory segments in /dev/shm"
        )
    record = {
        "benchmark": "fleet_snapshot_smoke",
        "executor": executor,
        "vms": 60,
        "epochs": epochs,
        "split_epoch": int(meta["epoch"]),
        "checkpoint_bytes": ckpt_path.stat().st_size,
        "snapshot_seconds": snapshot_s,
        "resume_seconds": resume_s,
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_snapshot_smoke", record)
    print("\nfleet snapshot smoke:", json.dumps(record, indent=2))


def test_fleet_snapshot_2000_vms(tmp_path):
    """Snapshot/resume cost at 2k VMs under the process executor: the
    checkpoint gathers live worker state, so the recorded overhead is
    the real price of periodically checkpointing a long-lived service
    (``snapshot_overhead_pct`` = one snapshot as a fraction of one epoch;
    a service checkpointing every N epochs pays 1/N of that)."""
    from repro.fleet import resume_fleet, validate_checkpoint_file

    fleet = _prepare_fleet(2000, num_shards=4, executor="process", max_workers=4)
    ckpt_path = tmp_path / "fleet2k.ckpt"
    try:
        epoch_s = _time_fleet_epoch_columnar(fleet, reps=3)
        snapshot_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fleet.snapshot(ckpt_path)
            snapshot_s = min(snapshot_s, time.perf_counter() - start)
        # The epoch the original fleet runs next is the epoch the
        # resumed fleet must reproduce exactly.
        expected = _columnar_fingerprint(
            fleet.run_epoch(_COLUMNAR)
        )
    finally:
        fleet.shutdown()
    meta = validate_checkpoint_file(ckpt_path, deep=True)
    start = time.perf_counter()
    resumed = resume_fleet(ckpt_path)
    resume_s = time.perf_counter() - start
    try:
        assert resumed.executor == "process"
        assert _columnar_fingerprint(
            resumed.run_epoch(_COLUMNAR)
        ) == expected, "resumed 2k fleet diverged from the snapshotted one"
    finally:
        resumed.shutdown()
    assert leaked_segments() == [], (
        "2k snapshot benchmark left shared-memory segments in /dev/shm"
    )
    record = {
        "benchmark": "fleet_snapshot_2k",
        "vms": int(meta["total_vms"]),
        "shards": len(meta["shard_ids"]),
        "executor": "process",
        "workers": 4,
        "epoch_seconds": epoch_s,
        "snapshot_seconds": snapshot_s,
        "resume_seconds": resume_s,
        "checkpoint_bytes": ckpt_path.stat().st_size,
        "checkpoint_mib": round(ckpt_path.stat().st_size / 2**20, 3),
        "snapshot_overhead_pct": 100.0 * snapshot_s / epoch_s,
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_snapshot_2k", record)
    print("\nfleet snapshot 2k:", json.dumps(record, indent=2))
    assert record["checkpoint_bytes"] > 0
    assert record["snapshot_seconds"] > 0


# ----------------------------------------------------------------------
# Fault injection and supervised recovery (the self-healing path, PR 9)
# ----------------------------------------------------------------------
@pytest.mark.bench_smoke
def test_fleet_chaos_smoke():
    """Kill a process worker mid-run under a :class:`FaultPolicy` and
    finish bit-identical to an undisturbed serial run.  The CI
    ``FLEET_SMOKE_CHAOS=1`` leg escalates to the full fault menu — kill,
    hang (caught by the heartbeat deadline) and a corrupted
    shared-memory descriptor — all injected from a deterministic
    :class:`FaultPlan`; otherwise a single kill keeps the leg cheap."""
    from repro.fleet import FaultPlan, FaultPolicy, WorkerFault

    chaos_leg = os.environ.get("FLEET_SMOKE_CHAOS") == "1"
    epochs = 6
    # _prepare_fleet's warmup consumes epochs 0-2; faults target the
    # steady-state epochs the smoke times.
    faults = [WorkerFault(kind="kill", worker=0, epoch=4, point="mid")]
    if chaos_leg:
        faults += [
            WorkerFault(kind="hang", worker=1, epoch=6, point="mid"),
            WorkerFault(kind="corrupt_descriptor", worker=0, epoch=7),
        ]
    policy = FaultPolicy(
        restarts=2,
        resnapshot_every=2,
        heartbeat_timeout=15.0 if chaos_leg else None,
    )

    serial = _prepare_fleet(60, num_shards=2, executor="serial")
    try:
        expected = [
            _columnar_fingerprint(serial.run_epoch(_COLUMNAR))
            for _ in range(epochs)
        ]
    finally:
        serial.shutdown()

    fleet = _prepare_fleet(
        60,
        num_shards=2,
        executor="process",
        max_workers=2,
        fault_policy=policy,
        fault_plan=FaultPlan(faults=tuple(faults)),
    )
    try:
        start = time.perf_counter()
        got = [
            _columnar_fingerprint(fleet.run_epoch(_COLUMNAR))
            for _ in range(epochs)
        ]
        run_s = time.perf_counter() - start
        restarts = [row["restarts"] for row in fleet.worker_health()]
    finally:
        fleet.shutdown()
    assert got == expected, "recovered run diverged from the serial reference"
    assert sum(restarts) == len(faults), (
        f"expected one restart per injected fault, got {restarts}"
    )
    assert leaked_segments() == [], (
        "chaos smoke left shared-memory segments in /dev/shm"
    )
    record = {
        "benchmark": "fleet_chaos_smoke",
        "chaos_leg": chaos_leg,
        "vms": 60,
        "epochs": epochs,
        "faults_injected": len(faults),
        "fault_kinds": sorted({f.kind for f in faults}),
        "worker_restarts": restarts,
        "run_seconds": run_s,
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_chaos_smoke", record)
    print("\nfleet chaos smoke:", json.dumps(record, indent=2))


def test_fleet_recovery_2000_vms():
    """Time-to-recover at 2k VMs: the wall-clock price of losing a
    worker mid-epoch under each terminal policy.  The restart path pays
    respawn + bounded replay (``resnapshot_every`` epochs at most) +
    the re-run epoch; the quarantine path pays one release and then
    runs *faster* degraded (fewer shards), which is the graceful-
    degradation trade the record makes explicit."""
    from repro.fleet import FaultPlan, FaultPolicy, WorkerFault

    resnapshot_every = 4
    kill_epoch = 6  # warmup is epochs 0-2, timing reps 3-5

    fleet = _prepare_fleet(
        2000,
        num_shards=4,
        executor="process",
        max_workers=4,
        fault_policy=FaultPolicy(restarts=2, resnapshot_every=resnapshot_every),
        fault_plan=FaultPlan(
            faults=(
                WorkerFault(kind="kill", worker=0, epoch=kill_epoch, point="mid"),
            )
        ),
    )
    try:
        epoch_s = _time_fleet_epoch_columnar(fleet, reps=3)
        start = time.perf_counter()
        fleet.run_epoch(_COLUMNAR)  # the kill epoch: detect, respawn, replay
        recovery_s = time.perf_counter() - start
        restarts = [row["restarts"] for row in fleet.worker_health()]
    finally:
        fleet.shutdown()
    assert restarts == [1, 0, 0, 0]
    assert leaked_segments() == [], (
        "2k recovery benchmark left shared-memory segments in /dev/shm"
    )

    quarantined = _prepare_fleet(
        2000,
        num_shards=4,
        executor="process",
        max_workers=4,
        fault_policy=FaultPolicy(restarts=0, on_exhaustion="quarantine"),
        fault_plan=FaultPlan(
            faults=(
                WorkerFault(kind="kill", worker=3, epoch=kill_epoch, point="mid"),
            )
        ),
    )
    try:
        _time_fleet_epoch_columnar(quarantined, reps=3)
        start = time.perf_counter()
        report = quarantined.run_epoch(_COLUMNAR)  # the kill epoch
        quarantine_s = time.perf_counter() - start
        assert report.missing_shards == ("shard3",)
        degraded_s = _time_fleet_epoch_columnar(quarantined, reps=3)
    finally:
        quarantined.shutdown()
    assert leaked_segments() == [], (
        "2k quarantine benchmark left shared-memory segments in /dev/shm"
    )

    record = {
        "benchmark": "fleet_recovery_2k",
        "vms": 2000,
        "shards": 4,
        "executor": "process",
        "workers": 4,
        "epoch_seconds": epoch_s,
        "resnapshot_every": resnapshot_every,
        "recovery_seconds": recovery_s,
        "recovery_overhead_x": recovery_s / epoch_s,
        "quarantine_seconds": quarantine_s,
        "degraded_epoch_seconds": degraded_s,
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_recovery_2k", record)
    print("\nfleet recovery 2k:", json.dumps(record, indent=2))
    assert record["recovery_seconds"] > 0
    assert record["quarantine_seconds"] > 0


@pytest.mark.skipif(
    os.environ.get("FLEET_SCALE_100K") != "1",
    reason="100k-VM tier benchmark; ~10+ min — run with FLEET_SCALE_100K=1",
)
def test_fleet_region_scale_100k():
    """One 100k-VM campaign cell — 10 regions x 10k VMs, each region on
    its own shared-memory process worker — completes on one machine;
    throughput recorded as ``fleet_region_100k``.  The 1M tier is the
    documented stretch: same construction with ``num_regions=100`` (or
    ``RegionalFleet.run_summaries(shutdown_regions=True)`` to keep only
    one region's workers resident), not asserted here because a
    single-core CI runner would spend hours on it."""
    from repro.fleet import CampaignSpec

    spec = CampaignSpec(
        name="region100k",
        num_vms=100_000,
        num_shards=80,
        num_regions=10,
        epochs=5,
        seed=7,
        executor="process",
        region_workers=1,
        history_limit=16,
        slo_epoch_seconds=30.0,
        interference_mixes=("mixed",),
    )
    summary = _run_campaign_cell_bench(spec, "region100k")
    assert leaked_segments() == [], (
        "100k-VM region run left shared-memory segments in /dev/shm"
    )
    assert summary["observations"] >= spec.num_vms * spec.epochs
    record = {
        "benchmark": "fleet_region_100k",
        "vms": spec.num_vms,
        "regions": spec.num_regions,
        "shards": spec.num_shards,
        "workers_per_region": 1,
        "executor": "process",
        "epochs": spec.epochs,
        "build_seconds": summary["build_seconds"],
        "bootstrap_seconds": summary["bootstrap_seconds"],
        "run_seconds": summary["run_seconds"],
        "vm_epochs_per_second": summary["vm_epochs_per_second"],
        "epoch_seconds": summary["epoch_seconds"],
        "confirmed": summary["confirmed"],
        "detections": summary["detections"],
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }
    _merge_bench_record("fleet_region_100k", record)
    print("\nfleet region 100k:", json.dumps(record, indent=2))
