"""Fleet-scale benchmark: batched epoch engine vs scalar per-VM loop.

The vectorized :class:`~repro.metrics.matrix.MetricMatrix` engine and
the scalar reference loop produce identical warning decisions (the
property tests pin this); what separates them is cost.  This benchmark
drives a synthetic datacenter (``repro.fleet``) to a quiet steady state,
then times one full monitoring pass over every shard with each engine
and records the result in ``BENCH_fleet.json`` at the repository root.

Run only the tiny-scale smoke variants with ``pytest -m bench_smoke``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import InterferenceEpisode, build_fleet, synthesize_datacenter

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_fleet.json"

#: Two shards of ~500 VMs keep per-application sibling pools large — the
#: regime where the scalar loop's per-VM sibling handling dominates.
FULL_SCALE_VMS = 1000
FULL_SCALE_SHARDS = 2
#: Acceptance floor for the batched engine at full scale.
MIN_SPEEDUP = 5.0


def _fast_config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _prepare_fleet(num_vms: int, num_shards: int, seed: int = 7, warmup_epochs: int = 3):
    """Build, bootstrap and warm a fleet into a quiet steady state.

    The warmup epochs run with the analyzer enabled so the repositories
    certify the production behaviours; afterwards the monitoring path is
    the steady-state hot loop the engines are timed on.
    """
    scenario = synthesize_datacenter(num_vms, num_shards=num_shards, seed=seed)
    fleet = build_fleet(scenario, config=_fast_config(), engine="batch", mitigate=False)
    fleet.bootstrap()
    for _ in range(warmup_epochs):
        fleet.run_epoch(analyze=True)
    return fleet


def _time_engine(fleet, engine: str, reps: int) -> Tuple[float, Dict]:
    """Best-of-``reps`` wall time of one full monitoring pass (no analyzer).

    With ``analyze=False, learn=False`` and unchanged counters the pass
    is free of side effects, so repetitions time the identical
    computation and the collected decisions compare exactly across
    engines.
    """
    best = float("inf")
    decisions: Dict = {}
    for _ in range(reps):
        start = time.perf_counter()
        for shard in fleet.shards.values():
            report = shard.deepdive.run_epoch(
                analyze=False, engine=engine, learn=False
            )
            for vm_name, obs in report.observations.items():
                decisions[(shard.shard_id, vm_name)] = (
                    obs.warning.action.value,
                    obs.warning.distance,
                    obs.warning.violated_dimensions,
                    obs.warning.siblings_consulted,
                    obs.warning.siblings_agreeing,
                )
        best = min(best, time.perf_counter() - start)
    return best, decisions


def _run_comparison(num_vms: int, num_shards: int, reps: int) -> Dict:
    fleet = _prepare_fleet(num_vms, num_shards)
    scalar_s, scalar_decisions = _time_engine(fleet, "scalar", reps)
    batch_s, batch_decisions = _time_engine(fleet, "batch", reps)
    assert batch_decisions == scalar_decisions, (
        "batched and scalar engines must produce identical warning decisions"
    )
    vms = fleet.total_vms()
    return {
        "benchmark": "fleet_epoch_engine",
        "vms": vms,
        "hosts": fleet.total_hosts(),
        "shards": len(fleet.shards),
        "timing_reps": reps,
        "scalar_epoch_seconds": scalar_s,
        "batch_epoch_seconds": batch_s,
        "speedup": scalar_s / batch_s,
        "batch_vms_per_second": vms / batch_s,
        "unix_time": time.time(),
    }


# ----------------------------------------------------------------------
# Tiny-scale smoke runs (tier-1 time budget): pytest -m bench_smoke
# ----------------------------------------------------------------------
@pytest.mark.bench_smoke
def test_fleet_engine_smoke():
    """Engines agree and the batch pass completes at tiny scale."""
    record = _run_comparison(num_vms=60, num_shards=2, reps=2)
    assert record["vms"] == 60
    assert record["batch_epoch_seconds"] > 0
    print("\nfleet engine smoke:", json.dumps(record, indent=2))


@pytest.mark.bench_smoke
def test_fleet_simulation_smoke():
    """A tiny fleet runs end-to-end (simulate + monitor + detect)."""
    scenario = synthesize_datacenter(
        40,
        num_shards=2,
        seed=13,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=4, end_epoch=8, kind="memory"
            )
        ],
    )
    fleet = build_fleet(scenario, config=_fast_config(), engine="batch", mitigate=False)
    fleet.bootstrap()
    start = time.perf_counter()
    epochs = 8
    for _ in range(epochs):
        fleet.run_epoch(analyze=True)
    elapsed = time.perf_counter() - start
    assert fleet.detections(), "the injected episode must be detected"
    rate = fleet.total_vms() * epochs / elapsed
    print(f"\nfleet simulation smoke: {rate:.0f} VM-epochs/s over {epochs} epochs")


# ----------------------------------------------------------------------
# Full scale: 1000 VMs, records BENCH_fleet.json
# ----------------------------------------------------------------------
def test_fleet_scale_1000_vms():
    """The batched epoch engine is >= 5x the scalar loop at 1000 VMs."""
    record = _run_comparison(
        num_vms=FULL_SCALE_VMS, num_shards=FULL_SCALE_SHARDS, reps=3
    )
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print("\nfleet scale:", json.dumps(record, indent=2))
    assert record["speedup"] >= MIN_SPEEDUP, (
        f"batched engine speedup {record['speedup']:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x acceptance floor (scalar "
        f"{record['scalar_epoch_seconds']:.3f}s vs batch "
        f"{record['batch_epoch_seconds']:.3f}s at {record['vms']} VMs)"
    )
