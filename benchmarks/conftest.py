"""Benchmark-harness configuration.

Every benchmark regenerates one table/figure of the paper's evaluation
via the corresponding :mod:`repro.experiments` driver, asserts the
qualitative shape the paper reports, and prints the reproduced
rows/series so ``pytest benchmarks/ --benchmark-only`` doubles as the
experiment log for EXPERIMENTS.md.

Experiments are deterministic simulations, so each benchmark runs one
round / one iteration (``benchmark.pedantic``); the timing numbers
reported by pytest-benchmark then measure the cost of regenerating the
figure, not statistical run-to-run variation.
"""



def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
