"""Figure 4 — normalised metrics separate interference from normal behaviour.

Paper: across load intensities and workload parameters, the
no-interference points cluster on one side of the (L1, L2, memory)
space; interference shifts them clearly.  Reproduced shape: the
Fisher-style separation score between the two point clouds is well above
the visual-separability threshold (~2) for all three cloud workloads.
"""

from conftest import run_once

from repro.experiments import fig04_clusters
from repro.experiments.common import CLOUD_WORKLOADS


def test_fig04_cluster_separation(benchmark):
    result = run_once(
        benchmark,
        fig04_clusters.run,
        load_levels=(0.3, 0.5, 0.7, 0.9),
        variations_per_workload=3,
        interference_levels=(0.5, 0.75, 1.0),
        epochs=8,
    )

    print()
    for workload in CLOUD_WORKLOADS:
        entry = result.per_workload[workload]
        print(
            f"[Fig 4] {workload:15s} normal={len(entry.normal_points):4d} points, "
            f"interference={len(entry.interference_points):4d} points, "
            f"separation={entry.separation:6.2f}"
        )

    assert set(result.per_workload) == set(CLOUD_WORKLOADS)
    for workload, entry in result.per_workload.items():
        assert entry.separation > 2.0, f"{workload} clusters are not separable"
    assert result.min_separation() > 2.0
