"""Figure 10 — the synthetic benchmark mimics the real VM's sensitivity.

Paper: the degradation a VM's synthetic representation suffers when
co-located with the stress workloads closely tracks the real VM's
degradation — median estimation error 8%, mean 10%.  Reproduced shape:
the same error bounds hold across the workload x stressor grid, and the
synthetic ranking (which stressor hurts more) matches the real ranking.
"""

from conftest import run_once

from repro.experiments import fig10_synthetic


def test_fig10_synthetic_benchmark_accuracy(benchmark):
    result = run_once(benchmark, fig10_synthetic.run, epochs=12, training_samples=200)

    print()
    for point in result.points:
        print(
            f"[Fig 10] {point.workload:15s} vs {point.stress_kind:7s} "
            f"{point.stress_setting}: real={point.real_degradation:.2f} "
            f"synthetic={point.synthetic_degradation:.2f} "
            f"error={point.absolute_error:.2f}"
        )
    print(
        f"[Fig 10] median error={result.median_absolute_error():.3f} "
        f"mean error={result.mean_absolute_error():.3f} "
        f"(paper: median 8%, mean 10%)"
    )

    assert len(result.points) == 9
    # Paper's headline numbers (median 8%, mean 10%).
    assert result.median_absolute_error() <= 0.10
    assert result.mean_absolute_error() <= 0.15
    # Within each workload, stronger stress hurts both real and synthetic.
    for workload in ("data_serving", "web_search", "data_analytics"):
        points = [p for p in result.points if p.workload == workload]
        real = [p.real_degradation for p in points]
        synth = [p.synthetic_degradation for p in points]
        assert real == sorted(real) or max(real) - min(real) < 0.1
        assert synth == sorted(synth) or max(synth) - min(synth) < 0.1
