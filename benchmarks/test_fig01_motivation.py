"""Figure 1 — interference periodically degrades a cloud service.

Paper: a Cassandra VM on EC2 under a fixed workload shows periodic
throughput drops / latency spikes attributed to co-located VMs.
Reproduced shape: throughput during injected interference episodes drops
by tens of percent and latency rises sharply, while quiet periods stay
flat.
"""

from conftest import run_once

from repro.experiments import fig01_motivation


def test_fig01_motivation(benchmark):
    result = run_once(benchmark, fig01_motivation.run, epochs=288)

    print(
        "\n[Fig 1] mean throughput (quiet)      :",
        round(result.mean_throughput_quiet, 1),
    )
    print(
        "[Fig 1] mean throughput (interfered) :",
        round(result.mean_throughput_interfered, 1),
    )
    print(
        "[Fig 1] throughput drop              :",
        f"{result.throughput_drop_fraction():.1%}",
    )
    print(
        "[Fig 1] latency increase             :",
        f"{result.latency_increase_fraction():.1%}",
    )

    # Interference episodes must be clearly visible in both metrics.
    assert result.throughput_drop_fraction() > 0.2
    assert result.latency_increase_fraction() > 0.5
    # Quiet periods keep serving the offered load.
    assert result.mean_throughput_quiet > 0
