"""Figure 7 — interference stays separable on the Core-i7 / QPI platform.

Paper: porting DeepDive to a NUMA Core-i7 server only required a new
performance model; the Data Serving workload's metrics with and without
interference remain clearly separable.  Reproduced shape: separation on
the i7 spec is comparable to the Xeon testbed (both well above the
visual threshold).
"""

from conftest import run_once

from repro.experiments import fig07_i7_port


def test_fig07_i7_port(benchmark):
    result = run_once(benchmark, fig07_i7_port.run, epochs=8)

    print()
    print("[Fig 7] separation on core_i7   :", round(result.separation, 2))
    print("[Fig 7] separation on xeon_x5472:", round(result.xeon_separation, 2))

    assert result.separation > 2.0
    assert result.xeon_separation > 2.0
    # The port preserves the qualitative behaviour: same order of magnitude.
    ratio = result.separation / result.xeon_separation
    assert 0.2 < ratio < 5.0
