"""Ablation — cannot-link constraints in the warning-system clustering.

The paper prevents the EM clustering from absorbing behaviours the
analyzer diagnosed as interference ("this has a positive effect on the
detection rate").  This ablation fits the repository with and without
the constraint machinery on a borderline interference signature and
checks that only the constrained fit keeps refusing to call it normal.
"""

import numpy as np
from conftest import run_once

from repro.core.repository import BehaviorRepository
from repro.metrics.counters import CounterSample
from repro.metrics.sample import MetricVector


def _vector(scale=1.0, cpi=2.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    inst = 1e9
    sample = CounterSample(
        cpu_unhalted=cpi * inst * (1 + noise * rng.normal()),
        inst_retired=inst,
        l1d_repl=0.02 * inst * scale * (1 + noise * rng.normal()),
        l2_lines_in=0.005 * inst * scale,
        mem_load=0.3 * inst,
        resource_stalls=1.0 * inst * scale,
        bus_tran_any=0.008 * inst * scale,
        br_miss_pred=0.004 * inst,
        disk_stall_cycles=0.1 * inst,
        net_stall_cycles=0.02 * inst,
    )
    return MetricVector.from_sample(sample)


def test_ablation_cannot_link_constraints(benchmark):
    def run_ablation():
        # Normal behaviours with a wide natural spread, plus a borderline
        # interference signature just outside the cloud.
        rng = np.random.default_rng(1)
        normals = [
            _vector(scale=1.0 + 0.25 * rng.random(), cpi=2.0 + 0.5 * rng.random(),
                    noise=0.02, seed=int(rng.integers(1e6)))
            for _ in range(40)
        ]
        borderline = _vector(scale=1.7, cpi=3.1)

        constrained = BehaviorRepository(seed=3)
        constrained.add_normal_batch("app", normals, refit=True)
        constrained.add_interference("app", borderline)
        constrained.fit("app")

        unconstrained = BehaviorRepository(seed=3)
        # Same data, but the interference label is (wrongly) treated as
        # just another normal behaviour.
        unconstrained.add_normal_batch("app", normals + [borderline], refit=True)

        return {
            "constrained_matches": constrained.matches("app", borderline),
            "constrained_flags": constrained.matches_interference("app", borderline),
            "unconstrained_matches": unconstrained.matches("app", borderline),
        }

    result = run_once(benchmark, run_ablation)
    print()
    print("[Ablation/constraints] constrained fit calls the signature normal  :",
          result["constrained_matches"])
    print("[Ablation/constraints] constrained fit recognises it as interference:",
          result["constrained_flags"])
    print("[Ablation/constraints] unconstrained fit absorbs it as normal       :",
          result["unconstrained_matches"])

    # With constraints the signature can never be mistaken for normal...
    assert not result["constrained_matches"]
    assert result["constrained_flags"]
    # ...without them the cluster absorbs it (a future false negative).
    assert result["unconstrained_matches"]
