"""Figure 14 — reaction time under bursty (lognormal) VM arrivals.

Paper: even with burstier arrivals, fewer than ten dedicated profiling
machines suffice; global information again roughly halves the reaction
time.  Reproduced shape: the same orderings as Figure 13 hold under the
lognormal arrival process, burstiness makes reaction times no better
than under Poisson, and the minimum acceptable pool stays below ten
servers.
"""

import math

from conftest import run_once

from repro.experiments import fig14_reaction_lognormal


def test_fig14_reaction_time_lognormal(benchmark):
    result = run_once(benchmark, fig14_reaction_lognormal.run, days=3.0)

    print()
    for servers in result.servers:
        row = [
            f"{p.mean_reaction_minutes:6.2f}{'*' if p.unstable else ' '}"
            for p in result.local_only[servers]
        ]
        print(f"[Fig 14a] {servers:2d} servers, local only : {row}")
    for servers in result.servers:
        row = [f"{p.mean_reaction_minutes:6.2f}" for p in result.with_global[servers]]
        print(f"[Fig 14b] {servers:2d} servers, with global: {row}")

    fractions = result.interference_fractions
    for fraction in fractions:
        assert result.mean_reaction("local", 16, fraction) <= result.mean_reaction(
            "local", 2, fraction
        ) + 1e-6
    assert result.speedup_from_global(4, 0.4) > 1.2
    assert result.speedup_from_global(4, fractions[-1]) > 1.5
    heavy = result.mean_reaction("alpha", 1.0, 0.4)
    none = result.mean_reaction("alpha", math.inf, 0.4)
    assert heavy <= none


def test_fig14_minimum_servers_under_burst(benchmark):
    minimum = run_once(
        benchmark,
        fig14_reaction_lognormal.minimum_servers_under_burst,
        interference_fraction=0.2,
    )
    print(
        "\n[Fig 14] minimum acceptable profiling servers at 20% interference: "
        f"{minimum}"
    )
    # The paper's claim: fewer than 10 dedicated profiling machines suffice.
    assert minimum < 10
