"""Figure 5 — global information separates interfered PMs from the rest.

Paper: Data Analytics runs on nine PMs; iperf interference on a subset
makes those PMs' normalised network/CPU/CPI metrics deviate clearly from
the other PMs running the same code.  Reproduced shape: the interfered
hosts' point cloud is well separated from the quiet hosts'.
"""

from conftest import run_once

from repro.experiments import fig05_global


def test_fig05_global_information(benchmark):
    result = run_once(
        benchmark, fig05_global.run, num_hosts=9, num_interfered=3, epochs=10
    )

    print()
    print("[Fig 5] hosts                :", result.num_hosts)
    print("[Fig 5] interfered hosts     :", result.interfered_hosts)
    print("[Fig 5] separation (quiet vs interfered):", round(result.separation, 2))

    assert len(result.interfered_hosts) == 3
    assert len(result.quiet_vectors()) > 0
    assert len(result.interfered_vectors()) > 0
    assert result.separation > 3.0
