"""Figure 12 — DeepDive's profiling overhead is low and flattens.

Paper: over three trace days, DeepDive accumulates about twenty minutes
of profiling and needs (almost) none after the first day, while
baselines that re-profile on every >5/10/20% performance variation keep
accumulating time and do so faster the tighter their threshold.
Reproduced shape: DeepDive's final accumulated time is below every
baseline, most of it is spent on day one, and the baselines order by
threshold (5% > 10% > 20%).
"""

from conftest import run_once

from repro.experiments import fig12_overhead


def test_fig12_profiling_overhead(benchmark):
    result = run_once(benchmark, fig12_overhead.run, days=3, epochs_per_day=48)

    print()
    day1 = result.deepdive.minutes_at_fraction(1.0 / 3.0)
    print(
        f"[Fig 12] DeepDive      : total={result.deepdive.final_minutes:6.1f} min "
        f"(after day 1: {day1:.1f} min)"
    )
    for threshold, curve in sorted(result.baselines.items()):
        print(f"[Fig 12] {curve.label:14s}: total={curve.final_minutes:6.1f} min")

    # DeepDive beats every baseline.
    for threshold, curve in result.baselines.items():
        assert result.deepdive.final_minutes < curve.final_minutes, threshold
    # Tighter baselines re-profile more.
    assert (
        result.baseline(0.05).final_minutes
        >= result.baseline(0.10).final_minutes
        >= result.baseline(0.20).final_minutes
    )
    # DeepDive's overhead flattens: the bulk of the profiling happens on day 1
    # and the total stays in the tens of minutes (paper: ~20 min).
    assert day1 >= 0.6 * result.deepdive.final_minutes
    assert result.deepdive.final_minutes < 45.0
    # Baselines keep growing after day 1.
    baseline = result.baseline(0.05)
    assert baseline.final_minutes > baseline.minutes_at_fraction(1.0 / 3.0) * 1.5
