"""Ablation — the warning system's global-information check.

Section 4.1: when every replica of an application deviates the same way
at the same time, the deviation is a workload change, not interference.
This ablation evaluates the same cluster-wide shift with and without the
sibling vectors and counts the analyzer invocations each mode would pay.
"""

import numpy as np
from conftest import run_once

from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository
from repro.core.warning import WarningAction, WarningSystem
from repro.metrics.counters import CounterSample
from repro.metrics.sample import MetricVector


def _vector(scale=1.0, cpi=2.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    inst = 1e9
    sample = CounterSample(
        cpu_unhalted=cpi * inst * (1 + noise * rng.normal()),
        inst_retired=inst,
        l1d_repl=0.02 * inst * scale * (1 + noise * rng.normal()),
        l2_lines_in=0.005 * inst * scale,
        mem_load=0.3 * inst,
        resource_stalls=1.0 * inst * scale,
        bus_tran_any=0.008 * inst * scale,
        br_miss_pred=0.004 * inst,
        disk_stall_cycles=0.1 * inst,
        net_stall_cycles=0.02 * inst,
    )
    return MetricVector.from_sample(sample)


def test_ablation_global_information(benchmark):
    def run_ablation():
        rng = np.random.default_rng(2)
        repo = BehaviorRepository(seed=2)
        repo.add_normal_batch(
            "app",
            [_vector(noise=0.02, seed=int(rng.integers(1e6))) for _ in range(24)],
            refit=True,
        )
        system = WarningSystem(repo, DeepDiveConfig())

        # A qualitative workload change hitting ten replicas at once.
        shifted = [
            _vector(scale=2.2, cpi=3.2, noise=0.015, seed=100 + i) for i in range(10)
        ]
        with_global = 0
        without_global = 0
        for i, vector in enumerate(shifted):
            siblings = {f"vm{j}": shifted[j] for j in range(len(shifted)) if j != i}
            decision = system.evaluate(f"vm{i}", "app", vector, siblings)
            if decision.action is WarningAction.ANALYZE:
                with_global += 1
            decision_local = system.evaluate(
                f"vm{i}", "app", vector, sibling_vectors={}
            )
            if decision_local.action is WarningAction.ANALYZE:
                without_global += 1
        return with_global, without_global

    with_global, without_global = run_once(benchmark, run_ablation)
    print()
    print(
        "[Ablation/global] analyzer invocations with global information   : "
        f"{with_global}/10"
    )
    print(
        "[Ablation/global] analyzer invocations without global information: "
        f"{without_global}/10"
    )

    # Global information suppresses the cluster-wide false alarms entirely;
    # without it every replica would have been profiled.
    assert with_global == 0
    assert without_global == 10
