"""Figure 13 — profiling-pool reaction time under Poisson arrivals.

Paper (1000 new VMs/day): (a) with only local information, four
profiling servers keep the mean reaction time around four minutes even
with 20% of VMs undergoing interference, while two servers become
unstable at high interference fractions; (b) global information roughly
halves the reaction time; (c) the benefit grows as the application
popularity tail gets heavier (alpha -> 1), with alpha = infinity being
the no-reuse limit.  Reproduced shape: all three orderings hold.
"""

import math

from conftest import run_once

from repro.experiments import fig13_reaction_poisson


def test_fig13_reaction_time_poisson(benchmark):
    result = run_once(benchmark, fig13_reaction_poisson.run, days=3.0)

    print()
    for servers in result.servers:
        row = [
            f"{p.mean_reaction_minutes:6.2f}{'*' if p.unstable else ' '}"
            for p in result.local_only[servers]
        ]
        print(f"[Fig 13a] {servers:2d} servers, local only : {row}")
    for servers in result.servers:
        row = [f"{p.mean_reaction_minutes:6.2f}" for p in result.with_global[servers]]
        print(f"[Fig 13b] {servers:2d} servers, with global: {row}")
    for alpha in result.alpha_values:
        row = [f"{p.mean_reaction_minutes:6.2f}" for p in result.alpha_sweep[alpha]]
        label = "inf" if math.isinf(alpha) else f"{alpha:.1f}"
        print(f"[Fig 13c] alpha={label:4s} (4 servers)  : {row}")

    fractions = result.interference_fractions
    # (a) More servers never hurt; 4 servers react within ~5 minutes at 20%.
    for fraction in fractions:
        assert result.mean_reaction("local", 16, fraction) <= result.mean_reaction(
            "local", 2, fraction
        ) + 1e-6
    assert result.mean_reaction("local", 4, 0.2) < 5.0
    # Two servers eventually saturate / become much slower than sixteen.
    assert (
        result.mean_reaction("local", 2, fractions[-1])
        > 1.5 * result.mean_reaction("local", 16, fractions[-1])
        or any(p.unstable for p in result.local_only[2])
    )
    # (b) Global information substantially improves the reaction time, and
    # the benefit grows with the interference fraction (more reuse); at the
    # top of the sweep the improvement approaches the paper's factor of two.
    assert result.speedup_from_global(4, 0.4) > 1.2
    assert result.speedup_from_global(4, fractions[-1]) > 1.6
    # (c) Heavier tails benefit more; alpha=inf is the worst case.
    heavy = result.mean_reaction("alpha", 1.0, 0.4)
    light = result.mean_reaction("alpha", 2.5, 0.4)
    none = result.mean_reaction("alpha", math.inf, 0.4)
    assert heavy <= light <= none
