#!/usr/bin/env python
"""Run a fleet as a long-lived service: stream, dashboard, checkpoints.

The service loop is the whole PR-8 surface in one place:

* the fleet advances through the **epoch-streaming iterator**
  (``FleetDashboard.watch`` wraps ``fleet.stream`` and times every
  epoch), so memory stays constant however long the service runs;
* the **live ops dashboard** refreshes in the terminal between epochs —
  per-shard/per-region throughput, churn and admission counters,
  detections, drain status, health alerts — or emits JSON for scraping
  (``--json``);
* with ``--checkpoint-path`` the service **snapshots** the fleet every
  ``--checkpoint-every`` epochs (run summary included), and
  ``--resume`` restarts from such a checkpoint — the continuation is
  bit-identical to a run that was never interrupted, whatever executor
  either side used.

Try it::

    python examples/run_service.py --epochs 20
    python examples/run_service.py --executor process --workers 2 \\
        --checkpoint-path /tmp/fleet.ckpt --checkpoint-every 5
    # ctrl-C it mid-run, then:
    python examples/run_service.py --resume --checkpoint-path /tmp/fleet.ckpt
"""

import argparse
import sys
import time

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    Checkpoint,
    FleetDashboard,
    FleetRunSummary,
    InterferenceEpisode,
    RunOptions,
    build_fleet,
    churn_timeline,
    resume_fleet,
    synthesize_datacenter,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vms", type=int, default=96)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--churn", action="store_true", help="attach a tenant-churn timeline"
    )
    parser.add_argument(
        "--refresh",
        type=int,
        default=1,
        help="render the dashboard every N epochs (0 disables)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON dashboard document per refresh instead of text",
    )
    parser.add_argument("--checkpoint-path", default=None)
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=5,
        help="snapshot every N epochs when --checkpoint-path is set",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-path instead of building a fleet",
    )
    return parser.parse_args()


def build(args: argparse.Namespace):
    timeline = (
        churn_timeline(
            [f"shard{s}" for s in range(args.shards)],
            epochs=args.epochs,
            seed=17,
            arrivals="poisson",
            arrivals_per_epoch=1.0,
            mean_lifetime_epochs=10.0,
        )
        if args.churn
        else None
    )
    scenario = synthesize_datacenter(
        args.vms,
        num_shards=args.shards,
        seed=29,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=4, end_epoch=9, kind="memory"
            )
        ],
        timeline=timeline,
    )
    config = DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )
    fleet = build_fleet(
        scenario,
        config=config,
        max_workers=args.workers,
        executor=args.executor,
    )
    fleet.bootstrap()
    return fleet


def main() -> None:
    args = parse_args()
    if args.resume:
        if not args.checkpoint_path:
            sys.exit("--resume needs --checkpoint-path")
        checkpoint = Checkpoint.load(args.checkpoint_path)
        fleet = resume_fleet(checkpoint)
        carried = checkpoint.state().get("summary")
        summary = carried if carried is not None else FleetRunSummary()
        print(
            f"resumed at epoch {fleet.current_epoch} "
            f"({fleet.executor} executor, {summary.epochs} epochs carried)"
        )
    else:
        fleet = build(args)
        summary = FleetRunSummary()

    dashboard = FleetDashboard(fleet, slo_epoch_seconds=None)
    remaining = args.epochs - fleet.current_epoch
    if remaining <= 0:
        sys.exit(f"nothing to do: checkpoint already at epoch {fleet.current_epoch}")

    started = time.perf_counter()
    try:
        for report in dashboard.watch(remaining, RunOptions()):
            summary.accumulate(report)
            done = fleet.current_epoch
            if (
                args.checkpoint_path
                and args.checkpoint_every
                and done % args.checkpoint_every == 0
                and done < args.epochs
            ):
                fleet.snapshot(args.checkpoint_path, summary=summary)
            if args.refresh and done % args.refresh == 0:
                if args.json:
                    print(dashboard.to_json())
                else:
                    # Home the cursor and redraw (auto-refresh view).
                    print("\x1b[H\x1b[2J" + dashboard.render(), flush=True)
    finally:
        fleet.shutdown()

    elapsed = time.perf_counter() - started
    print(
        f"\nservice ran {remaining} epoch(s) in {elapsed:.2f}s — "
        f"{summary.observations:,} observations, "
        f"{summary.confirmed_interference} confirmed, "
        f"{summary.analyzer_invocations} analyzer runs over "
        f"{summary.epochs} total epochs"
    )


if __name__ == "__main__":
    main()
