#!/usr/bin/env python
"""Run a fleet as a long-lived service: stream, dashboard, checkpoints.

The service loop is the whole PR-8 surface in one place:

* the fleet advances through the **epoch-streaming iterator**
  (``FleetDashboard.watch`` wraps ``fleet.stream`` and times every
  epoch), so memory stays constant however long the service runs;
* the **live ops dashboard** refreshes in the terminal between epochs —
  per-shard/per-region throughput, churn and admission counters,
  detections, drain status, health alerts — or emits JSON for scraping
  (``--json``);
* with ``--checkpoint-path`` the service **snapshots** the fleet every
  ``--checkpoint-every`` epochs (run summary included), and
  ``--resume`` restarts from such a checkpoint — the continuation is
  bit-identical to a run that was never interrupted, whatever executor
  either side used;
* with ``--telemetry`` the run is **profiled** through the fleet
  telemetry bus (:mod:`repro.fleet.telemetry`): phase spans, the fixed
  counter catalog and a shared registry across every layer.
  ``--metrics-path`` rewrites a Prometheus text file on every dashboard
  refresh (point a node-exporter textfile collector or any scraper at
  it), and ``--trace-path`` exports the whole run as a Chrome trace on
  shutdown — open it at https://ui.perfetto.dev.  A snapshot of a
  profiled fleet carries its counters, so a resumed service's
  ``fleet_*_total`` series stay monotone across the restart.

Try it::

    python examples/run_service.py --epochs 20
    python examples/run_service.py --executor process --workers 2 \\
        --checkpoint-path /tmp/fleet.ckpt --checkpoint-every 5
    # ctrl-C it mid-run, then:
    python examples/run_service.py --resume --checkpoint-path /tmp/fleet.ckpt
    # profiled, scrapable, traced:
    python examples/run_service.py --executor process --workers 2 \\
        --telemetry --metrics-path /tmp/fleet.prom --trace-path /tmp/fleet.trace.json
"""

import argparse
import sys
import time
from pathlib import Path

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    Checkpoint,
    FleetDashboard,
    FleetRunSummary,
    InterferenceEpisode,
    RunOptions,
    TelemetryConfig,
    build_fleet,
    churn_timeline,
    resume_fleet,
    synthesize_datacenter,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vms", type=int, default=96)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--churn", action="store_true", help="attach a tenant-churn timeline"
    )
    parser.add_argument(
        "--refresh",
        type=int,
        default=1,
        help="render the dashboard every N epochs (0 disables)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON dashboard document per refresh instead of text",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="profile the run through the fleet telemetry bus",
    )
    parser.add_argument(
        "--metrics-path",
        default=None,
        help="rewrite a Prometheus text file here on every refresh "
        "(implies --telemetry)",
    )
    parser.add_argument(
        "--trace-path",
        default=None,
        help="export the run as a Chrome trace here on shutdown "
        "(implies --telemetry; open in Perfetto)",
    )
    parser.add_argument("--checkpoint-path", default=None)
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=5,
        help="snapshot every N epochs when --checkpoint-path is set",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-path instead of building a fleet",
    )
    return parser.parse_args()


def build(args: argparse.Namespace):
    timeline = (
        churn_timeline(
            [f"shard{s}" for s in range(args.shards)],
            epochs=args.epochs,
            seed=17,
            arrivals="poisson",
            arrivals_per_epoch=1.0,
            mean_lifetime_epochs=10.0,
        )
        if args.churn
        else None
    )
    scenario = synthesize_datacenter(
        args.vms,
        num_shards=args.shards,
        seed=29,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=4, end_epoch=9, kind="memory"
            )
        ],
        timeline=timeline,
    )
    config = DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )
    fleet = build_fleet(
        scenario,
        config=config,
        max_workers=args.workers,
        executor=args.executor,
        telemetry=_telemetry_config(args),
    )
    fleet.bootstrap()
    return fleet


def _telemetry_config(args: argparse.Namespace):
    """``--metrics-path`` / ``--trace-path`` need the bus, so they imply
    ``--telemetry``; ``None`` leaves the untimed run path untouched
    (``REPRO_FLEET_PROFILE=1`` can still switch it on from outside)."""
    if args.telemetry or args.metrics_path or args.trace_path:
        return TelemetryConfig(enabled=True)
    return None


def main() -> None:
    args = parse_args()
    if args.resume:
        if not args.checkpoint_path:
            sys.exit("--resume needs --checkpoint-path")
        checkpoint = Checkpoint.load(args.checkpoint_path)
        # Without an explicit override the checkpoint's own telemetry
        # config (and carried counter totals) revive with the fleet.
        fleet = resume_fleet(checkpoint, telemetry=_telemetry_config(args))
        carried = checkpoint.state().get("summary")
        summary = carried if carried is not None else FleetRunSummary()
        print(
            f"resumed at epoch {fleet.current_epoch} "
            f"({fleet.executor} executor, {summary.epochs} epochs carried)"
        )
    else:
        fleet = build(args)
        summary = FleetRunSummary()

    dashboard = FleetDashboard(fleet, slo_epoch_seconds=None)
    remaining = args.epochs - fleet.current_epoch
    if remaining <= 0:
        sys.exit(f"nothing to do: checkpoint already at epoch {fleet.current_epoch}")

    started = time.perf_counter()
    try:
        for report in dashboard.watch(remaining, RunOptions()):
            summary.accumulate(report)
            done = fleet.current_epoch
            if (
                args.checkpoint_path
                and args.checkpoint_every
                and done % args.checkpoint_every == 0
                and done < args.epochs
            ):
                fleet.snapshot(args.checkpoint_path, summary=summary)
            if args.metrics_path and done % max(args.refresh, 1) == 0:
                # Atomic rewrite: scrapers never see a torn file.
                tmp = Path(args.metrics_path).with_suffix(".tmp")
                tmp.write_text(dashboard.render_prometheus())
                tmp.replace(args.metrics_path)
            if args.refresh and done % args.refresh == 0:
                if args.json:
                    print(dashboard.to_json())
                else:
                    # Home the cursor and redraw (auto-refresh view).
                    print("\x1b[H\x1b[2J" + dashboard.render(), flush=True)
    finally:
        if args.trace_path and fleet.telemetry is not None:
            fleet.telemetry.export_chrome_trace(args.trace_path)
            print(f"chrome trace written to {args.trace_path}")
        fleet.shutdown()

    elapsed = time.perf_counter() - started
    print(
        f"\nservice ran {remaining} epoch(s) in {elapsed:.2f}s — "
        f"{summary.observations:,} observations, "
        f"{summary.confirmed_interference} confirmed, "
        f"{summary.analyzer_invocations} analyzer runs over "
        f"{summary.epochs} total epochs"
    )


if __name__ == "__main__":
    main()
