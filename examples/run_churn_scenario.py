#!/usr/bin/env python
"""A dynamic fleet: tenant churn, maintenance and flash crowds.

Builds a small multi-shard datacenter and attaches a lifecycle timeline
that exercises everything the fleet lifecycle engine supports:

* tenant **arrivals** drawn from a Poisson process, each placed by the
  interference-aware admission policy (headroom and anti-affinity
  respected, candidates ranked by predicted contention);
* scheduled **departures** (exponential tenant lifetimes);
* a **host drain** for maintenance — residents evacuated through the
  live-migration path to vetted destinations — and the later
  return-to-service;
* a **flash crowd** load surge stacked on **diurnal load phases**
  replayed from a HotMail-like trace;
* a scheduled interference episode, so DeepDive keeps detecting while
  the fleet changes underneath it.

Identical timelines evolve bit-identically across hardware substrates,
history modes and executors — this script runs the serial/batch default.

Run with::

    python examples/run_churn_scenario.py
"""

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetTimeline,
    FlashCrowd,
    HostDrain,
    HostReturn,
    InterferenceEpisode,
    build_fleet,
    churn_timeline,
    synthesize_datacenter,
)
from repro.workloads.traces import hotmail_like_trace

EPOCHS = 24


def build_timeline(num_shards: int) -> FleetTimeline:
    shard_ids = [f"shard{s}" for s in range(num_shards)]
    # Open-ended tenant churn: Poisson arrivals, exponential lifetimes.
    timeline = churn_timeline(
        shard_ids,
        epochs=EPOCHS,
        seed=17,
        arrivals="poisson",
        arrivals_per_epoch=1.5,
        mean_lifetime_epochs=10.0,
    )
    # Diurnal phases replayed from a (synthetic) HotMail-like trace.
    trace = hotmail_like_trace(days=1, epochs_per_hour=1, seed=3).slice(0, EPOCHS)
    timeline.extend(
        FleetTimeline.from_trace(trace, shard_ids, quantum=0.1).events
    )
    # Maintenance: drain one host, return it to service later.
    timeline.add(HostDrain(epoch=6, shard="shard0", host="s0pm2"))
    timeline.add(HostReturn(epoch=14, shard="shard0", host="s0pm2"))
    # A flash crowd on top of whatever phase is active.
    timeline.add(
        FlashCrowd(epoch=10, shard="shard1", end_epoch=16, scale=1.5)
    )
    return timeline


def main() -> None:
    num_shards = 2
    scenario = synthesize_datacenter(
        120,
        num_shards=num_shards,
        seed=29,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=1, start_epoch=8, end_epoch=13, kind="memory"
            )
        ],
        timeline=build_timeline(num_shards),
    )
    config = DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
        smoothing_epochs=3,
    )
    fleet = build_fleet(scenario, config=config, mitigate=True)
    fleet.lifecycle.record_decisions = True
    print(f"start: {fleet.total_vms()} VMs on {fleet.total_hosts()} hosts")
    fleet.bootstrap()

    for epoch in range(EPOCHS):
        report = fleet.run_epoch(analyze=True)
        confirmed = report.confirmed_interference()
        if confirmed:
            names = ", ".join(f"{s}/{v}" for s, v in confirmed)
            print(f"epoch {epoch:2d}: interference confirmed on {names}")

    print(f"\nend:   {fleet.total_vms()} VMs on {fleet.total_hosts()} hosts")
    print("\nlifecycle per shard:")
    for shard_id, stats in sorted(fleet.lifecycle_stats().items()):
        line = ", ".join(f"{key}={value}" for key, value in stats.items() if value)
        print(f"  {shard_id}: {line}")

    admissions = [
        decision
        for decision in fleet.lifecycle.decisions
        if decision.source_host == "(arrival)"
    ]
    if admissions:
        sample = admissions[-1]
        best = sample.best()
        if best is None:
            print(f"\nlast admission: {sample.vm_name} rejected (no candidates)")
        else:
            print(
                f"\nlast admission: {sample.vm_name} -> {sample.destination} "
                f"(best predicted degradation "
                f"{best.score:.3f} over {len(sample.evaluations)} candidates)"
            )

    stats = fleet.stats()
    print(
        f"\nfleet totals: {stats['detections']:.0f} detections, "
        f"{stats['migrations']:.0f} mitigation migrations, "
        f"{stats['analyzer_invocations']:.0f} analyzer runs, "
        f"{stats['profiling_seconds']:.0f}s profiling"
    )


if __name__ == "__main__":
    main()
