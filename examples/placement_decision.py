#!/usr/bin/env python
"""Placement-manager scenario (the Figure 11 setting).

An aggressive memory-stress VM must be moved off an interfered host.
Three candidate destination PMs each run one of the cloud workloads at a
different load.  The placement manager trains the synthetic benchmark
(once per server type), builds the aggressor's synthetic representation,
measures the interference it would cause on every candidate, and picks
the least-interfering destination — all without performing a single real
migration.  The script then compares the choice against the oracle
(actually migrating to every candidate).

Run with::

    python examples/placement_decision.py
"""

from repro.experiments import fig11_placement


def main() -> None:
    print("Training the synthetic benchmark and evaluating candidate PMs ...\n")
    result = fig11_placement.run(eval_epochs=12, training_samples=150)

    print(f"{'candidate':>12s} {'resident workload':>18s} "
          f"{'predicted score':>16s} {'actual degradation':>19s}")
    for outcome in sorted(result.outcomes, key=lambda o: o.predicted_score):
        print(f"{outcome.host_name:>12s} {outcome.resident_workload:>18s} "
              f"{outcome.predicted_score:16.2f} {outcome.actual_degradation:19.2f}")

    print(f"\nChosen destination : {result.chosen_host} "
          f"(actual degradation {result.chosen_degradation:.2f})")
    print(f"Oracle best        : {result.best_host} "
          f"(actual degradation {result.best_degradation:.2f})")
    print(f"Average placement  : {result.average_degradation:.2f}")
    print(f"Worst placement    : {result.worst_degradation:.2f}")
    if result.chose_best:
        print(
            "\nThe synthetic-benchmark evaluation picked the oracle-best destination."
        )
    else:
        print(f"\nRegret versus the oracle best: {result.regret:.2f}")


if __name__ == "__main__":
    main()
