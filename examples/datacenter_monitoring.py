#!/usr/bin/env python
"""Datacenter-scale monitoring scenario (the Figure 8 setting).

Replays a diurnal HotMail-like load trace against a Data Serving VM for
two simulated days while a co-located memory-stress VM injects EC2-like
interference episodes, and reports the day-by-day detection and
false-positive rates plus the accumulated profiling cost — the shape of
the paper's Figure 8 and Figure 12.  A second part scales the same
monitoring loop to a synthetic multi-shard fleet through the batch
hardware substrate and parallel shard dispatch.

Run with::

    python examples/datacenter_monitoring.py
"""

import time

from repro.experiments import fig08_detection, fig12_overhead
from repro.fleet import (
    InterferenceEpisode,
    RunOptions,
    build_fleet,
    synthesize_datacenter,
)


def run_fleet_demo(num_vms: int = 2000, epochs: int = 12) -> None:
    """Drive a multi-shard fleet through the vectorized substrate.

    ``substrate="batch"`` resolves each epoch's hardware contention for
    all VMs on all hosts of a shard as array operations,
    ``max_workers=4`` dispatches the independent shards to a thread pool
    (results are identical for any worker count), and
    ``RunOptions(keep_reports=False)`` keeps memory constant however
    long the run.
    """
    scenario = synthesize_datacenter(
        num_vms,
        num_shards=4,
        seed=11,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=4, end_epoch=9, kind="memory"
            )
        ],
    )
    fleet = build_fleet(
        scenario, mitigate=False, substrate="batch", max_workers=4
    )
    fleet.bootstrap()
    start = time.perf_counter()
    summary = fleet.run(epochs, RunOptions(keep_reports=False))
    elapsed = time.perf_counter() - start
    stats = fleet.stats()
    rate = fleet.total_vms() * epochs / elapsed
    print(f"{fleet.total_vms()} VMs on {fleet.total_hosts()} hosts "
          f"across {len(fleet.shards)} shards")
    print(f"{epochs} epochs in {elapsed:.2f}s ({rate:,.0f} VM-epochs/s)")
    print(f"observations={summary.observations} "
          f"confirmed_interference={summary.confirmed_interference} "
          f"detections={stats['detections']:.0f}")
    fleet.shutdown()


def main() -> None:
    print("Replaying two trace days for the Data Serving workload ...\n")
    result = fig08_detection.run_workload(
        "data_serving", days=2, epochs_per_day=48, seed=11
    )

    print(f"{'day':>4s} {'interference epochs':>20s} {'detected':>9s} "
          f"{'detection rate':>15s} {'false-positive rate':>20s}")
    for day in result.days:
        print(f"{day.day:4d} {day.interference_epochs:20d} {day.detected_epochs:9d} "
              f"{day.detection_rate:15.0%} {day.false_positive_rate:20.1%}")
    print(f"\nMissed interference episodes : {result.missed_episodes}")
    print(
        "Total profiling time         : "
        f"{result.total_profiling_seconds / 60:.1f} minutes"
    )

    print("\nComparing against always-reprofile baselines (Figure 12 setting) ...\n")
    overhead = fig12_overhead.run(days=2, epochs_per_day=48, seed=11)
    print(f"{'approach':>15s} {'profiling time (min)':>22s}")
    print(f"{'DeepDive':>15s} {overhead.deepdive.final_minutes:22.1f}")
    for threshold, curve in sorted(overhead.baselines.items()):
        print(f"{curve.label:>15s} {curve.final_minutes:22.1f}")

    print("\nScaling the same monitoring loop to a 2000-VM fleet "
          "(batch substrate, 4 shard workers) ...\n")
    run_fleet_demo()


if __name__ == "__main__":
    main()
