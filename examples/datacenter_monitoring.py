#!/usr/bin/env python
"""Datacenter-scale monitoring scenario (the Figure 8 setting).

Replays a diurnal HotMail-like load trace against a Data Serving VM for
two simulated days while a co-located memory-stress VM injects EC2-like
interference episodes, and reports the day-by-day detection and
false-positive rates plus the accumulated profiling cost — the shape of
the paper's Figure 8 and Figure 12.

Run with::

    python examples/datacenter_monitoring.py
"""

from repro.experiments import fig08_detection, fig12_overhead


def main() -> None:
    print("Replaying two trace days for the Data Serving workload ...\n")
    result = fig08_detection.run_workload(
        "data_serving", days=2, epochs_per_day=48, seed=11
    )

    print(f"{'day':>4s} {'interference epochs':>20s} {'detected':>9s} "
          f"{'detection rate':>15s} {'false-positive rate':>20s}")
    for day in result.days:
        print(f"{day.day:4d} {day.interference_epochs:20d} {day.detected_epochs:9d} "
              f"{day.detection_rate:15.0%} {day.false_positive_rate:20.1%}")
    print(f"\nMissed interference episodes : {result.missed_episodes}")
    print(f"Total profiling time         : {result.total_profiling_seconds / 60:.1f} minutes")

    print("\nComparing against always-reprofile baselines (Figure 12 setting) ...\n")
    overhead = fig12_overhead.run(days=2, epochs_per_day=48, seed=11)
    print(f"{'approach':>15s} {'profiling time (min)':>22s}")
    print(f"{'DeepDive':>15s} {overhead.deepdive.final_minutes:22.1f}")
    for threshold, curve in sorted(overhead.baselines.items()):
        print(f"{curve.label:>15s} {curve.final_minutes:22.1f}")


if __name__ == "__main__":
    main()
