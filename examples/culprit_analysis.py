#!/usr/bin/env python
"""Culprit attribution scenario (the Figure 6 setting).

Runs each cloud workload against the three interference scenarios the
paper uses — shared-cache pollution (A), memory-interconnect saturation
(B) and I/O contention (C) — and prints the production-vs-isolation
stall breakdown plus the resource the analyzer blames in each case.

Run with::

    python examples/culprit_analysis.py
"""

from repro.experiments import fig06_breakdown
from repro.metrics.cpi import Resource


def main() -> None:
    print("Running the nine (workload x scenario) interference experiments ...\n")
    result = fig06_breakdown.run(epochs=12)

    for cell in result.cells:
        print(f"{cell.workload} — scenario {cell.scenario}")
        print(
            f"  {'resource':>12s} {'isolation':>10s} {'production':>11s} {'factor':>8s}"
        )
        for resource in Resource:
            iso = cell.isolation[resource]
            prod = cell.production[resource]
            factor = cell.factors[resource]
            marker = "  <-- culprit" if resource is cell.culprit else ""
            print(
                f"  {resource.value:>12s} {iso:10.2f} {prod:11.2f} "
                f"{factor:8.2f}{marker}"
            )
        status = "correct" if cell.culprit_correct else "UNEXPECTED"
        print(f"  blamed resource: {cell.culprit.value} ({status})\n")

    print(f"Overall attribution accuracy: {result.accuracy():.0%}")


if __name__ == "__main__":
    main()
