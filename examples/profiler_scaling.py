#!/usr/bin/env python
"""Profiling-pool sizing scenario (the Figure 13/14 setting).

Simulates a datacenter receiving 1000 new VMs per day (Poisson and
bursty lognormal arrivals), with a configurable fraction of them
eventually needing an analyzer run, and reports the mean reaction time
for different profiling-pool sizes — with and without the
global-information shortcut that lets popular applications reuse each
other's profiling results.

Run with::

    python examples/profiler_scaling.py
"""

import math

from repro.experiments import fig13_reaction_poisson, fig14_reaction_lognormal


def _print_panel(title, curves, fractions):
    print(title)
    header = "  servers " + "".join(f"{f:>8.0%}" for f in fractions)
    print(header)
    for servers, points in sorted(curves.items()):
        row = "".join(
            f"{p.mean_reaction_minutes:7.1f}{'*' if p.unstable else ' '}"
            for p in points
        )
        print(f"  {servers:7d} {row}")
    print("  (* = unstable: the profiling queue keeps growing)\n")


def main() -> None:
    fractions = (0.05, 0.2, 0.4, 0.8)
    servers = (2, 4, 8, 16)

    print("Poisson arrivals, 1000 new VMs/day (Figure 13)\n")
    poisson = fig13_reaction_poisson.run(
        interference_fractions=fractions,
        servers=servers,
        alphas=(1.0, 2.0, math.inf),
        days=5.0,
    )
    _print_panel("Mean reaction time [min], local information only:",
                 poisson.local_only, fractions)
    _print_panel("Mean reaction time [min], with global information:",
                 poisson.with_global, fractions)

    print("Bursty lognormal arrivals (Figure 14)\n")
    lognormal = fig14_reaction_lognormal.run(
        interference_fractions=fractions,
        servers=servers,
        alphas=(1.0, math.inf),
        days=5.0,
    )
    _print_panel("Mean reaction time [min], local information only:",
                 lognormal.local_only, fractions)

    minimum = fig14_reaction_lognormal.minimum_servers_under_burst()
    print(f"Minimum acceptable pool under bursty arrivals at 20% interference: "
          f"{minimum} profiling servers")


if __name__ == "__main__":
    main()
