#!/usr/bin/env python
"""Quickstart: detect and diagnose interference on one host.

Builds the smallest interesting deployment — one Data Serving (Cassandra
/ YCSB-like) VM on a simulated Xeon host watched by DeepDive, plus a
memory-stress neighbour that switches on halfway through — and walks
through the full pipeline:

1. bootstrap the VM's interference-free behaviours in the sandbox,
2. monitor it epoch by epoch through the warning system,
3. confirm the injected interference with the analyzer,
4. print the estimated degradation and the blamed resource.

Run with::

    python examples/quickstart.py
"""

from repro import DeepDive, DeepDiveConfig
from repro.virt.cluster import Cluster
from repro.virt.vm import VirtualMachine
from repro.workloads.cloud import DataServingWorkload
from repro.workloads.stress import MemoryStressWorkload


def main() -> None:
    # ------------------------------------------------------------------
    # The production deployment: one monitored VM, one (initially idle)
    # noisy neighbour on the same physical machine, a spare machine.
    # ------------------------------------------------------------------
    cluster = Cluster(num_hosts=2, seed=7, noise=0.01)
    victim = VirtualMachine(
        "cassandra-0", DataServingWorkload(key_skew=0.6), vcpus=2, memory_gb=2.0
    )
    neighbour = VirtualMachine(
        "noisy-neighbour",
        MemoryStressWorkload(working_set_mb=192.0),
        vcpus=2,
        memory_gb=1.0,
    )
    cluster.place_vm(victim, "pm0", load=0.7)
    cluster.place_vm(neighbour, "pm0", load=0.0)

    config = DeepDiveConfig(performance_threshold=0.20, profile_epochs=10)
    deepdive = DeepDive(cluster, config=config)

    # ------------------------------------------------------------------
    # First contact with the application: the analyzer profiles it in the
    # sandbox across load levels and seeds the behaviour repository.
    # ------------------------------------------------------------------
    print("Bootstrapping the interference-free behaviour set ...")
    deepdive.bootstrap_vm(victim.name)
    print(
        f"  learned {deepdive.repository.normal_count(victim.app_id)} "
        f"normal behaviours "
        f"({deepdive.repository_size_bytes()} bytes)\n"
    )

    # ------------------------------------------------------------------
    # Monitor: ten quiet epochs, then the neighbour wakes up.
    # ------------------------------------------------------------------
    print(
        f"{'epoch':>5s} {'neighbour':>10s} {'warning':>20s} {'analyzer verdict':>30s}"
    )
    for epoch in range(20):
        interfering = epoch >= 10
        cluster.get_host("pm0").set_load(neighbour.name, 1.0 if interfering else 0.0)
        cluster.step(loads={victim.name: 0.7})
        report = deepdive.observe_epoch(loads={victim.name: 0.7})
        observation = report.observations[victim.name]

        verdict = ""
        if observation.analysis is not None:
            verdict = (
                f"{observation.analysis.verdict.value} "
                f"(degradation {observation.analysis.degradation:.0%}, "
                f"culprit {observation.analysis.culprit})"
            )
        elif observation.known_interference:
            verdict = "known interference signature"
        print(f"{epoch:5d} {'ON' if interfering else 'off':>10s} "
              f"{observation.warning.action.value:>20s} {verdict:>30s}")

    # ------------------------------------------------------------------
    # Summary.
    # ------------------------------------------------------------------
    detections = deepdive.events.detections()
    print("\nSummary")
    print(f"  analyzer invocations : {deepdive.analyzer_invocations()}")
    print(f"  profiling time       : {deepdive.total_profiling_seconds():.0f} s")
    print(f"  interference reports : {len(detections)}")
    if detections:
        last = detections[-1]
        print(f"  last detection       : degradation {last.degradation:.0%}, "
              f"culprit resource '{last.culprit}'")


if __name__ == "__main__":
    main()
