#!/usr/bin/env python
"""A declarative campaign: a churn x interference grid over regions.

Builds a :class:`~repro.fleet.campaign.CampaignSpec` — the full factorial
grid of churn rate x interference mix over a small hierarchical fleet
(two regions of shards, merged bit-identically to the flat run) — and
drives it through :class:`~repro.fleet.campaign.CampaignRunner`:

* every cell is a deterministic function of (spec, cell parameters):
  same spec, same decisions, on any machine;
* each finished cell leaves a schema-validated columnar ``.npz`` (per
  epoch: action counts, observations, confirmed detections, counter
  totals, wall-times) plus a percentile / SLO summary json;
* completion tracking lives in the files — rerun this script and
  finished cells are skipped, delete or corrupt one and only that cell
  is recomputed.

Results land in ``campaign_out/`` next to the repo root (override with
the ``CAMPAIGN_DIR`` environment variable).

Run with::

    python examples/run_campaign.py
"""

import os
from pathlib import Path

from repro.core.config import DeepDiveConfig
from repro.fleet import CampaignRunner, CampaignSpec


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="churn-x-interference",
        num_vms=60,
        num_shards=4,
        num_regions=2,
        epochs=12,
        seed=29,
        slo_epoch_seconds=0.5,
        churn_rates=(0.0, 0.05),
        interference_mixes=("none", "memory", "mixed"),
    )


def main() -> None:
    spec = build_spec()
    campaign_dir = Path(os.environ.get("CAMPAIGN_DIR", "campaign_out"))
    config = DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )

    cells = spec.cells()
    print(
        f"campaign '{spec.name}': {len(cells)} cells "
        f"({spec.num_vms} VMs x {spec.num_shards} shards x "
        f"{spec.num_regions} regions, {spec.epochs} epochs each)"
    )
    print(f"results -> {campaign_dir}/ (finished cells are skipped on rerun)\n")

    runner = CampaignRunner(spec, campaign_dir, config=config)
    summaries = runner.run(resume=True)

    header = (
        f"{'cell':<42} {'confirmed':>9} {'migr':>5} "
        f"{'p50 s':>8} {'p99 s':>8} {'SLO viol':>8}"
    )
    print(header)
    print("-" * len(header))
    for summary in summaries:
        seconds = summary["epoch_seconds"]
        print(
            f"{summary['cell_id']:<42} {summary['confirmed']:>9} "
            f"{summary['migrations']:>5} {seconds['p50']:>8.3f} "
            f"{seconds['p99']:>8.3f} {summary['slo_violation_fraction']:>7.0%}"
        )

    total_vm_epochs = sum(s["observations"] for s in summaries)
    total_seconds = sum(s["run_seconds"] for s in summaries)
    print(
        f"\ncampaign totals: {total_vm_epochs} VM-epochs in "
        f"{total_seconds:.1f}s of fleet time "
        f"({total_vm_epochs / max(total_seconds, 1e-9):.0f} VM-epochs/s)"
    )
    print(f"manifest + per-cell npz/summary files in {campaign_dir}/")


if __name__ == "__main__":
    main()
