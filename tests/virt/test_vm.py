"""Tests for the VirtualMachine abstraction."""

import pytest

from repro.virt.vm import VirtualMachine, VMState
from repro.workloads.cloud import DataServingWorkload


class TestVirtualMachine:
    def test_app_id_defaults_to_workload(self, data_serving_vm):
        assert data_serving_vm.app_id == "data_serving"

    def test_explicit_app_id(self):
        vm = VirtualMachine("x", DataServingWorkload(), app_id="tenant-42")
        assert vm.app_id == "tenant-42"

    def test_invalid_vcpus(self):
        with pytest.raises(ValueError):
            VirtualMachine("x", DataServingWorkload(), vcpus=0)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            VirtualMachine("x", DataServingWorkload(), memory_gb=0.0)

    def test_demand_uses_vm_vcpus(self, data_serving_vm):
        demand = data_serving_vm.demand(load=100.0)
        assert demand.vcpus == data_serving_vm.vcpus
        assert demand.instructions > 0

    def test_clone_shares_app_but_not_identity(self, data_serving_vm):
        clone = data_serving_vm.clone()
        assert clone.name != data_serving_vm.name
        assert clone.app_id == data_serving_vm.app_id
        assert clone.is_clone
        assert clone.cloned_from == data_serving_vm.name
        assert not data_serving_vm.is_clone
        # workload is deep-copied: mutating the clone does not affect production
        clone.workload.key_skew = 0.1
        assert data_serving_vm.workload.key_skew != 0.1

    def test_clone_custom_name(self, data_serving_vm):
        clone = data_serving_vm.clone("sandbox-copy")
        assert clone.name == "sandbox-copy"

    def test_default_state_running(self, data_serving_vm):
        assert data_serving_vm.state is VMState.RUNNING

    def test_unique_uids(self):
        a = VirtualMachine("a", DataServingWorkload())
        b = VirtualMachine("b", DataServingWorkload())
        assert a.uid != b.uid
        assert hash(a) != hash(b)
