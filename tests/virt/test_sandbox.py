"""Tests for the sandboxed profiling environment."""

import pytest

from repro.virt.proxy import RequestProxy
from repro.virt.sandbox import SandboxEnvironment
from repro.workloads.stress import MemoryStressWorkload
from repro.virt.vm import VirtualMachine


@pytest.fixture
def sandbox():
    return SandboxEnvironment(num_hosts=2, profile_epochs=5, seed=11, noise=0.0)


class TestSandboxEnvironment:
    def test_requires_at_least_one_host(self):
        with pytest.raises(ValueError):
            SandboxEnvironment(num_hosts=0)

    def test_profile_with_explicit_loads(self, sandbox, data_serving_vm):
        run = sandbox.profile(data_serving_vm, loads=[0.5] * 5)
        assert run.vm_name == data_serving_vm.name
        assert len(run.epoch_counters) == 5
        assert run.counters.inst_retired > 0
        assert run.clone_seconds > 0
        assert run.run_seconds == pytest.approx(5 * sandbox.epoch_seconds)
        assert run.total_seconds == pytest.approx(run.clone_seconds + run.run_seconds)

    def test_profile_with_proxy(self, sandbox, data_serving_vm):
        proxy = RequestProxy(data_serving_vm.name)
        proxy.observe(0.6)
        run = sandbox.profile(data_serving_vm, proxy=proxy)
        assert run.replayed_loads[0] == pytest.approx(0.6)
        assert len(run.replayed_loads) == sandbox.profile_epochs

    def test_profile_default_load(self, sandbox, data_serving_vm):
        run = sandbox.profile(data_serving_vm)
        assert all(load == pytest.approx(1.0) for load in run.replayed_loads)

    def test_sandbox_hosts_left_clean(self, sandbox, data_serving_vm):
        sandbox.profile(data_serving_vm, loads=[0.5] * 3, profile_epochs=3)
        for host in sandbox.hosts:
            assert host.vms == {}

    def test_profiling_time_accounted(self, sandbox, data_serving_vm):
        before = sandbox.total_profiling_seconds
        run = sandbox.profile(data_serving_vm, loads=[0.5] * 3, profile_epochs=3)
        assert sandbox.total_profiling_seconds == pytest.approx(
            before + run.total_seconds
        )
        assert sandbox.runs_completed == 1

    def test_round_robin_across_hosts(self, sandbox, data_serving_vm):
        sandbox.profile(data_serving_vm, loads=[0.5], profile_epochs=1)
        sandbox.profile(data_serving_vm, loads=[0.5], profile_epochs=1)
        # Both hosts were used (their counter histories are non-empty).
        used = [h for h in sandbox.hosts if h.counter_history]
        assert len(used) == 2

    def test_profile_colocated_measures_interference(self, sandbox, data_serving_vm):
        solo = sandbox.profile(data_serving_vm, loads=[1.1] * 5)
        stress = VirtualMachine(
            "bg-stress",
            MemoryStressWorkload(working_set_mb=256.0),
            vcpus=2,
            memory_gb=1.0,
        )
        colocated = sandbox.profile_colocated(
            data_serving_vm, background={stress: 1.0}, loads=[1.1] * 5
        )
        solo_rate = solo.counters.inst_retired / solo.counters.epoch_seconds
        colo_rate = colocated.counters.inst_retired / colocated.counters.epoch_seconds
        assert colo_rate < solo_rate

    def test_profile_colocated_requires_loads(self, sandbox, data_serving_vm):
        with pytest.raises(ValueError):
            sandbox.profile_colocated(data_serving_vm, background={}, loads=[])

    def test_non_work_conserving_cap(self, sandbox, data_serving_vm):
        capped = sandbox.profile(data_serving_vm, loads=[1.1] * 5, cpu_cap=0.3)
        uncapped = sandbox.profile(data_serving_vm, loads=[1.1] * 5, cpu_cap=1.0)
        assert capped.counters.inst_retired < uncapped.counters.inst_retired
