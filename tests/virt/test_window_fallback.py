"""Coverage for ``counter_window_view`` fallback behaviour.

The columnar window fast path must refuse (and the cluster must warn,
once per host) when a ``history_limit`` shorter than the requested
window trims the smoothing windows — previously a silent fallback.
Mixed ``track_performance`` hosts exercise both epoch-commit paths
(full outcomes vs. lean block ingest) feeding one view.
"""

import warnings

import numpy as np
import pytest

from repro.metrics.normalization import windows_to_counter_matrix
from repro.virt.cluster import Cluster
from repro.virt.vm import VirtualMachine
from repro.workloads.cloud import DataServingWorkload, WebSearchWorkload


def _cluster(history_limit=None, track_performance=True, num_hosts=2):
    cluster = Cluster(
        num_hosts=num_hosts,
        seed=11,
        substrate="batch",
        track_performance=track_performance,
        history_limit=history_limit,
    )
    cluster.place_vm(
        VirtualMachine("vm-a", DataServingWorkload(seed=1), vcpus=2), "pm0",
        load=0.6,
    )
    cluster.place_vm(
        VirtualMachine("vm-b", WebSearchWorkload(seed=2), vcpus=2), "pm0",
        load=0.5,
    )
    cluster.place_vm(
        VirtualMachine("vm-c", DataServingWorkload(seed=3), vcpus=2), "pm1",
        load=0.4,
    )
    return cluster


def _assert_view_matches_samples(cluster, window):
    view = cluster.counter_window_view(window)
    windows = cluster.counter_windows(window)
    assert set(view.vm_names) == set(windows)
    for vm_name, samples in windows.items():
        i = view.index[vm_name]
        expected = windows_to_counter_matrix([samples])
        latest = windows_to_counter_matrix([samples[-1:]])
        np.testing.assert_array_equal(view.window_sum[i], expected[0])
        np.testing.assert_array_equal(view.latest[i], latest[0])


class TestShortHistoryFallback:
    def test_warns_once_per_host_and_stays_equivalent(self):
        cluster = _cluster(history_limit=2)
        for _ in range(6):
            cluster.step()
        with pytest.warns(RuntimeWarning, match="history_limit=2") as caught:
            _assert_view_matches_samples(cluster, window=4)
        messages = [str(w.message) for w in caught]
        assert any("'pm0'" in m for m in messages)
        assert any("'pm1'" in m for m in messages)
        # One warning per host, ever: a second read stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _assert_view_matches_samples(cluster, window=4)

    def test_covered_window_does_not_warn(self):
        cluster = _cluster(history_limit=8)
        for _ in range(5):
            cluster.step()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _assert_view_matches_samples(cluster, window=3)

    def test_unlimited_history_does_not_warn(self):
        cluster = _cluster(history_limit=None)
        for _ in range(3):
            cluster.step()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Larger than the recorded history: per-VM fallback without
            # any limit-induced trimming, so no warning.
            _assert_view_matches_samples(cluster, window=10)


class TestMixedTrackPerformanceHosts:
    def test_mixed_commit_paths_serve_one_view(self):
        """Hosts with and without ground-truth tracking (full
        ``commit_epoch`` vs lean ``commit_epoch_block``) feed the same
        columnar view, with and without the trimming fallback."""
        cluster = _cluster(history_limit=3, track_performance=True)
        cluster.hosts["pm1"].track_performance = False
        for _ in range(7):
            results = cluster.step()
        # Tracking host reports ground truth; lean host reports nothing.
        assert results["pm0"] and not results["pm1"]
        assert cluster.hosts["pm1"].performance_history["vm-c"] == []
        # Fast path (window <= limit) over both commit paths.
        _assert_view_matches_samples(cluster, window=2)
        # Trimmed fallback (window > limit) warns for both hosts.
        with pytest.warns(RuntimeWarning) as caught:
            _assert_view_matches_samples(cluster, window=5)
        messages = [str(w.message) for w in caught]
        assert any("'pm0'" in m for m in messages)
        assert any("'pm1'" in m for m in messages)
