"""Tests for VM cloning and its cost accounting."""

import pytest

from repro.virt.cloning import CloneManager


class TestCloneManager:
    def test_clone_creates_distinct_vm(self, data_serving_vm):
        manager = CloneManager()
        handle = manager.clone(data_serving_vm)
        assert handle.clone.name != data_serving_vm.name
        assert handle.clone.cloned_from == data_serving_vm.name
        assert handle.source_name == data_serving_vm.name
        assert handle.clone_seconds > 0

    def test_clone_seconds_scale_with_memory(self, data_serving_vm):
        manager = CloneManager()
        small = manager.clone_seconds_for(data_serving_vm)
        data_serving_vm.memory_gb = 16.0
        big = manager.clone_seconds_for(data_serving_vm)
        assert big > small

    def test_cow_disk_is_cheaper(self, data_serving_vm):
        cow = CloneManager(cow_disk=True).clone_seconds_for(data_serving_vm)
        full = CloneManager(cow_disk=False).clone_seconds_for(data_serving_vm)
        assert full > cow

    def test_accounting_accumulates(self, data_serving_vm):
        manager = CloneManager()
        manager.clone(data_serving_vm)
        manager.clone(data_serving_vm)
        assert manager.clones_created == 2
        assert manager.total_clone_seconds == pytest.approx(
            2 * manager.clone_seconds_for(data_serving_vm)
        )

    def test_clone_names_unique(self, data_serving_vm):
        manager = CloneManager()
        a = manager.clone(data_serving_vm)
        b = manager.clone(data_serving_vm)
        assert a.clone.name != b.clone.name

    def test_invalid_network(self):
        with pytest.raises(ValueError):
            CloneManager(network_gbps=0.0)
