"""Tests for the live-migration cost model."""

import pytest

from repro.virt.migration import MigrationEngine


class TestMigrationEngine:
    def test_estimate_scales_with_memory(self, data_serving_vm):
        engine = MigrationEngine()
        small = engine.estimate(data_serving_vm)
        data_serving_vm.memory_gb = 16.0
        big = engine.estimate(data_serving_vm)
        assert big.total_seconds > small.total_seconds
        assert big.transferred_gb > small.transferred_gb

    def test_downtime_small_fraction_of_total(self, data_serving_vm):
        record = MigrationEngine().estimate(data_serving_vm)
        assert 0 < record.downtime_seconds < record.total_seconds

    def test_faster_link_reduces_time(self, data_serving_vm):
        slow = MigrationEngine(link_gbps=1.0).estimate(data_serving_vm)
        fast = MigrationEngine(link_gbps=10.0).estimate(data_serving_vm)
        assert fast.total_seconds < slow.total_seconds

    def test_dirty_rate_increases_transfer(self, data_serving_vm):
        clean = MigrationEngine(dirty_rate_gbps=0.0).estimate(data_serving_vm)
        dirty = MigrationEngine(dirty_rate_gbps=0.8).estimate(data_serving_vm)
        assert dirty.transferred_gb >= clean.transferred_gb

    def test_migrate_records_history(self, data_serving_vm):
        engine = MigrationEngine()
        record = engine.migrate(data_serving_vm, source="pm0", destination="pm1")
        assert record.source == "pm0"
        assert record.destination == "pm1"
        assert engine.migrations_performed == 1
        assert engine.total_migration_seconds == pytest.approx(record.total_seconds)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MigrationEngine(link_gbps=0.0)
        with pytest.raises(ValueError):
            MigrationEngine(dirty_rate_gbps=-1.0)
        with pytest.raises(ValueError):
            MigrationEngine(precopy_rounds=0)
