"""Tests for the host / hypervisor model."""

import pytest

from repro.virt.vm import VirtualMachine
from repro.workloads.cloud import DataServingWorkload
from repro.workloads.stress import MemoryStressWorkload


class TestHostPlacement:
    def test_add_and_remove_vm(self, host, data_serving_vm):
        host.add_vm(data_serving_vm, load=0.5)
        assert host.has_vm(data_serving_vm.name)
        assert host.vm_names() == [data_serving_vm.name]
        removed = host.remove_vm(data_serving_vm.name)
        assert removed is data_serving_vm
        assert not host.has_vm(data_serving_vm.name)

    def test_duplicate_placement_rejected(self, host, data_serving_vm):
        host.add_vm(data_serving_vm)
        with pytest.raises(ValueError):
            host.add_vm(data_serving_vm)

    def test_remove_unknown_vm(self, host):
        with pytest.raises(KeyError):
            host.remove_vm("ghost")

    def test_invalid_cpu_cap(self, host, data_serving_vm):
        with pytest.raises(ValueError):
            host.add_vm(data_serving_vm, cpu_cap=0.0)

    def test_set_load_unknown_vm(self, host):
        with pytest.raises(KeyError):
            host.set_load("ghost", 0.5)

    def test_can_fit_respects_memory_and_cores(self, host):
        big = VirtualMachine("big", DataServingWorkload(), vcpus=4, memory_gb=6.0)
        host.add_vm(big)
        another = VirtualMachine("big2", DataServingWorkload(), vcpus=4, memory_gb=6.0)
        assert not host.can_fit(another)
        small = VirtualMachine("small", DataServingWorkload(), vcpus=2, memory_gb=1.0)
        assert host.can_fit(small)

    def test_colocated_with(self, host, data_serving_vm, stress_vm):
        host.add_vm(data_serving_vm)
        host.add_vm(stress_vm)
        assert host.colocated_with(data_serving_vm.name) == [stress_vm.name]


class TestHostStep:
    def test_step_produces_counters_and_reports(self, host, data_serving_vm):
        host.add_vm(data_serving_vm, load=0.5)
        results = host.step()
        perf = results[data_serving_vm.name]
        assert perf.counters.inst_retired > 0
        assert perf.report.throughput > 0
        assert host.latest_counters(data_serving_vm.name) is perf.counters
        assert host.latest_performance(data_serving_vm.name) is perf
        assert host.current_epoch == 1

    def test_latest_counters_before_first_step(self, host, data_serving_vm):
        host.add_vm(data_serving_vm)
        assert host.latest_counters(data_serving_vm.name) is None

    def test_load_override_per_step(self, host, data_serving_vm):
        host.add_vm(data_serving_vm, load=0.2)
        low = host.step()[data_serving_vm.name]
        high = host.step({data_serving_vm.name: 0.9})[data_serving_vm.name]
        assert high.counters.inst_retired > low.counters.inst_retired * 2

    def test_history_accumulates(self, host, data_serving_vm):
        host.add_vm(data_serving_vm, load=0.5)
        for _ in range(4):
            host.step()
        assert len(host.counter_history[data_serving_vm.name]) == 4
        assert len(host.performance_history[data_serving_vm.name]) == 4

    def test_colocated_stress_degrades_performance(self, host, data_serving_vm):
        host.add_vm(data_serving_vm, load=1.1, cores=[0, 1])
        baseline = host.step()[data_serving_vm.name]
        stress = VirtualMachine(
            "stress", MemoryStressWorkload(working_set_mb=256.0), vcpus=2, memory_gb=1.0
        )
        host.add_vm(stress, load=1.0, cores=[2, 3])
        degraded = host.step()[data_serving_vm.name]
        assert degraded.counters.inst_retired < baseline.counters.inst_retired
        assert degraded.report.latency_ms >= baseline.report.latency_ms

    def test_cpu_cap_enforced(self, host, data_serving_vm):
        host.add_vm(data_serving_vm, load=1.1, cpu_cap=1.0)
        full = host.step()[data_serving_vm.name]
        host.set_cpu_cap(data_serving_vm.name, 0.4)
        capped = host.step()[data_serving_vm.name]
        assert capped.counters.inst_retired < full.counters.inst_retired

    def test_utilization_summary(self, host, data_serving_vm, stress_vm):
        host.add_vm(data_serving_vm)
        host.add_vm(stress_vm)
        summary = host.utilization_summary()
        assert summary["vcpus_used"] == data_serving_vm.vcpus + stress_vm.vcpus
        assert summary["memory_used_gb"] == pytest.approx(
            data_serving_vm.memory_gb + stress_vm.memory_gb
        )
