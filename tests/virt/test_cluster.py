"""Tests for the cluster model."""

import pytest

from repro.virt.cluster import Cluster
from repro.virt.vm import VirtualMachine
from repro.workloads.cloud import DataServingWorkload


class TestClusterTopology:
    def test_host_names(self, cluster):
        assert cluster.host_names() == ["pm0", "pm1", "pm2"]

    def test_needs_at_least_one_host(self):
        with pytest.raises(ValueError):
            Cluster(num_hosts=0)

    def test_place_and_find_vm(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm1", load=0.5)
        assert cluster.host_of(data_serving_vm.name) == "pm1"
        assert data_serving_vm.name in cluster.all_vms()

    def test_host_of_unknown_vm(self, cluster):
        assert cluster.host_of("ghost") is None

    def test_vms_running_app(self, cluster):
        for i, host in enumerate(cluster.host_names()):
            cluster.place_vm(
                VirtualMachine(f"cass{i}", DataServingWorkload()), host, load=0.5
            )
        siblings = cluster.vms_running_app("data_serving")
        assert len(siblings) == 3

    def test_step_routes_loads(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0", load=0.3)
        results = cluster.step(loads={data_serving_vm.name: 0.8})
        assert data_serving_vm.name in results["pm0"]
        assert cluster.current_epoch == 1

    def test_step_unknown_vm_load(self, cluster):
        with pytest.raises(KeyError):
            cluster.step(loads={"ghost": 0.5})


class TestMigration:
    def test_migrate_vm(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0", load=0.4)
        record = cluster.migrate_vm(data_serving_vm.name, "pm2")
        assert cluster.host_of(data_serving_vm.name) == "pm2"
        assert record.source == "pm0"
        assert record.destination == "pm2"
        assert record.total_seconds > 0
        # The load travels with the VM.
        assert cluster.get_host("pm2").get_load(data_serving_vm.name) == pytest.approx(
            0.4
        )

    def test_migrate_unknown_vm(self, cluster):
        with pytest.raises(KeyError):
            cluster.migrate_vm("ghost", "pm1")

    def test_migrate_to_unknown_host(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0")
        with pytest.raises(KeyError):
            cluster.migrate_vm(data_serving_vm.name, "pm9")

    def test_migrate_to_same_host(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0")
        with pytest.raises(ValueError):
            cluster.migrate_vm(data_serving_vm.name, "pm0")

    def test_migration_rolls_back_when_destination_full(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0", load=0.4)
        # Fill pm1 so the VM cannot fit.
        filler = VirtualMachine("filler", DataServingWorkload(), vcpus=8, memory_gb=7.5)
        cluster.place_vm(filler, "pm1")
        with pytest.raises(ValueError):
            cluster.migrate_vm(data_serving_vm.name, "pm1")
        assert cluster.host_of(data_serving_vm.name) == "pm0"

    def test_migration_history(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0")
        cluster.migrate_vm(data_serving_vm.name, "pm1")
        assert cluster.migration_engine.migrations_performed == 1
        assert cluster.migration_engine.total_migration_seconds > 0


class TestGlobalIntrospection:
    def test_latest_counters_for_app(self, cluster):
        vms = []
        for i, host in enumerate(cluster.host_names()):
            vm = VirtualMachine(f"cass{i}", DataServingWorkload())
            cluster.place_vm(vm, host, load=0.5)
            vms.append(vm)
        cluster.step()
        counters = cluster.latest_counters_for_app("data_serving", exclude_vm="cass0")
        assert set(counters) == {"cass1", "cass2"}
        assert all(sample.inst_retired > 0 for sample in counters.values())


class TestPlacementCache:
    """The VM -> host map is cached between epochs and invalidated on
    every placement change instead of rescanning all hosts."""

    def test_cache_reused_between_calls(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0", load=0.5)
        first = cluster._placement()
        assert cluster._placement() is first  # no rebuild without changes
        cluster.step()
        assert cluster._placement() is first  # stepping is not a placement change

    def test_invalidated_on_place_and_remove(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0", load=0.5)
        before = cluster._placement()
        other = VirtualMachine("cass-extra", DataServingWorkload())
        cluster.place_vm(other, "pm1", load=0.4)
        after = cluster.all_vms()
        assert after is not before
        assert set(after) == {data_serving_vm.name, "cass-extra"}
        cluster.hosts["pm1"].remove_vm("cass-extra")
        assert set(cluster.all_vms()) == {data_serving_vm.name}

    def test_invalidated_on_migration(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0", load=0.5)
        assert cluster.host_of(data_serving_vm.name) == "pm0"
        cluster.migrate_vm(data_serving_vm.name, "pm2")
        assert cluster.host_of(data_serving_vm.name) == "pm2"
        assert cluster.all_vms()[data_serving_vm.name][0] == "pm2"

    def test_invalidated_on_add_host(self, cluster, data_serving_vm):
        from repro.virt.vmm import Host

        cluster.place_vm(data_serving_vm, "pm0", load=0.5)
        cluster.all_vms()
        extra = Host(name="pm99", noise=0.0, seed=9)
        extra.add_vm(VirtualMachine("cass-new", DataServingWorkload()), load=0.3)
        cluster.add_host(extra)
        assert cluster.host_of("cass-new") == "pm99"

    def test_returned_copy_is_isolated(self, cluster, data_serving_vm):
        cluster.place_vm(data_serving_vm, "pm0", load=0.5)
        snapshot = cluster.all_vms()
        snapshot.clear()
        assert data_serving_vm.name in cluster.all_vms()
