"""Tests for the request-duplicating proxy."""

import pytest

from repro.virt.proxy import RequestProxy


class TestRequestProxy:
    def test_observe_returns_load_unchanged(self):
        proxy = RequestProxy("vm0")
        assert proxy.observe(0.7) == pytest.approx(0.7)
        assert proxy.latest_load() == pytest.approx(0.7)

    def test_observe_rejects_negative(self):
        with pytest.raises(ValueError):
            RequestProxy("vm0").observe(-0.1)

    def test_latest_load_empty(self):
        assert RequestProxy("vm0").latest_load() is None

    def test_mirror_replays_in_order(self):
        proxy = RequestProxy("vm0")
        for load in (0.1, 0.2, 0.3):
            proxy.observe(load)
        proxy.register_mirror("clone")
        replayed = [proxy.next_load_for("clone") for _ in range(3)]
        # The mirror starts from the most recent observation and catches up.
        assert replayed[0] == pytest.approx(0.3)
        assert replayed[1] is None

    def test_mirror_receives_new_observations(self):
        proxy = RequestProxy("vm0")
        proxy.observe(0.5)
        proxy.register_mirror("clone")
        proxy.next_load_for("clone")
        proxy.observe(0.8)
        assert proxy.next_load_for("clone") == pytest.approx(0.8)
        assert proxy.next_load_for("clone") is None

    def test_duplicate_mirror_rejected(self):
        proxy = RequestProxy("vm0")
        proxy.register_mirror("clone")
        with pytest.raises(ValueError):
            proxy.register_mirror("clone")

    def test_unknown_mirror(self):
        with pytest.raises(KeyError):
            RequestProxy("vm0").next_load_for("ghost")

    def test_unregister_mirror(self):
        proxy = RequestProxy("vm0")
        proxy.register_mirror("clone")
        proxy.unregister_mirror("clone")
        assert proxy.mirrors() == []

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            RequestProxy("vm0", lag_epochs=-1)
        with pytest.raises(ValueError):
            RequestProxy("vm0", history_limit=0)

    def test_history_limit_keeps_recent(self):
        proxy = RequestProxy("vm0", history_limit=3)
        for load in (0.1, 0.2, 0.3, 0.4, 0.5):
            proxy.observe(load)
        proxy.register_mirror("clone")
        assert proxy.next_load_for("clone") == pytest.approx(0.5)
