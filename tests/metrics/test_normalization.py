"""Unit tests for the normalisation helpers (scalar and batch paths)."""

import numpy as np
import pytest

from repro.metrics.counters import COUNTER_NAMES, CounterSample
from repro.metrics.normalization import (
    aggregate_samples,
    normalize_counter_matrix,
    samples_to_counter_matrix,
    windows_to_counter_matrix,
)
from repro.metrics.sample import WARNING_METRICS, MetricVector


def _sample(scale: float = 1.0, epoch_seconds: float = 1.0) -> CounterSample:
    return CounterSample(
        cpu_unhalted=3e9 * scale,
        inst_retired=2e9 * scale,
        l1d_repl=4e7 * scale,
        l2_ifetch=1e6 * scale,
        l2_lines_in=2e7 * scale,
        mem_load=6e8 * scale,
        resource_stalls=5e8 * scale,
        bus_tran_any=3e7 * scale,
        bus_trans_ifetch=2e5 * scale,
        bus_tran_brd=1e7 * scale,
        bus_req_out=8e8 * scale,
        br_miss_pred=9e6 * scale,
        disk_stall_cycles=1e8 * scale,
        net_stall_cycles=5e7 * scale,
        epoch_seconds=epoch_seconds,
    )


class TestAggregateSamples:
    def test_empty_sequence_raises_value_error_with_context(self):
        with pytest.raises(ValueError) as excinfo:
            aggregate_samples([], context="VM 'cassandra-0' smoothing window")
        message = str(excinfo.value)
        assert "cassandra-0" in message
        assert "empty sequence" in message
        assert "at least one epoch sample" in message

    def test_empty_sequence_raises_without_context(self):
        with pytest.raises(ValueError, match="empty sequence"):
            aggregate_samples([])

    def test_single_sample_is_identity(self):
        sample = _sample()
        merged = aggregate_samples([sample])
        assert merged.as_dict() == sample.as_dict()
        assert merged.epoch_seconds == sample.epoch_seconds

    def test_multi_sample_sums_counters_and_epoch_seconds(self):
        samples = [_sample(1.0), _sample(2.0, epoch_seconds=2.0), _sample(0.5)]
        merged = aggregate_samples(samples)
        for name in COUNTER_NAMES:
            assert merged[name] == pytest.approx(
                sum(s[name] for s in samples)
            )
        assert merged.epoch_seconds == pytest.approx(4.0)

    def test_generator_input_is_supported(self):
        merged = aggregate_samples(_sample() for _ in range(3))
        assert merged.inst_retired == pytest.approx(3 * 2e9)


class TestBatchHelpers:
    def test_counter_matrix_column_order_is_table1(self):
        sample = _sample()
        raw = samples_to_counter_matrix([sample])
        assert raw.shape == (1, len(COUNTER_NAMES))
        for j, name in enumerate(COUNTER_NAMES):
            assert raw[0, j] == sample[name]

    def test_windows_matrix_matches_scalar_aggregation(self):
        windows = [[_sample(1.0)], [_sample(1.0), _sample(3.0)]]
        raw = windows_to_counter_matrix(windows)
        for i, window in enumerate(windows):
            merged = aggregate_samples(window)
            for j, name in enumerate(COUNTER_NAMES):
                assert raw[i, j] == merged[name]

    def test_windows_matrix_rejects_empty_window(self):
        with pytest.raises(ValueError, match="window 1 is empty"):
            windows_to_counter_matrix([[_sample()], []], context="test fleet")

    def test_windows_matrix_names_the_offending_vm(self):
        with pytest.raises(ValueError, match=r"window 1 \(VM 'vm-b'\) is empty"):
            windows_to_counter_matrix(
                [[_sample()], []], names=["vm-a", "vm-b"]
            )

    def test_normalize_matrix_matches_scalar(self):
        samples = [_sample(0.3), _sample(1.0), _sample(7.0)]
        out = normalize_counter_matrix(samples_to_counter_matrix(samples))
        assert out.shape == (3, len(WARNING_METRICS))
        for i, sample in enumerate(samples):
            assert np.array_equal(
                out[i], MetricVector.from_sample(sample).as_array()
            )

    def test_normalize_matrix_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="counter columns"):
            normalize_counter_matrix(np.zeros((2, 3)))

    def test_low_instruction_floor_matches_scalar(self):
        quiet = CounterSample(cpu_unhalted=10.0, inst_retired=0.0)
        out = normalize_counter_matrix(samples_to_counter_matrix([quiet]))
        assert np.array_equal(out[0], MetricVector.from_sample(quiet).as_array())
