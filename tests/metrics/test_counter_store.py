"""Unit coverage for the lazy columnar counter store.

Exercises the store directly — ring ingest, scalar appends, placement
changes (ring flushes), the amortised-trim length replication and the
columnar window reads — always against the eager reference mode, which
reproduces the pre-store per-VM sample lists exactly.

Also pins the ``CounterSample`` field-order coupling the whole columnar
pipeline rests on: samples are materialised positionally from raw
counter-matrix rows, so the dataclass field order must match
:data:`~repro.metrics.counters.COUNTER_NAMES`.
"""

from dataclasses import fields

import numpy as np
import pytest

from repro.hardware.batch import N_COUNTERS
from repro.metrics.counters import COUNTER_NAMES, CounterSample
from repro.metrics.store import (
    HostCounterStore,
    sample_row,
    trimmed_length,
)


def _block(epoch: int, n_vms: int) -> np.ndarray:
    """A deterministic, distinct counter block for one epoch."""
    base = np.arange(n_vms * N_COUNTERS, dtype=float).reshape(
        n_vms, N_COUNTERS
    )
    return base + 1000.0 * epoch + 1.0


def _pair(limit, lazy_names=("a", "b")):
    """A (lazy, eager) store pair with the same VMs registered."""
    lazy = HostCounterStore(history_limit=limit, lazy=True)
    eager = HostCounterStore(history_limit=limit, lazy=False)
    for store in (lazy, eager):
        for name in lazy_names:
            store.ensure(name)
    return lazy, eager


def _assert_equal_stores(lazy, eager):
    assert set(lazy.histories) == set(eager.histories)
    for name in eager.histories:
        history_l = lazy.histories[name]
        history_e = eager.histories[name]
        assert len(history_l) == len(history_e), name
        assert list(history_l) == list(history_e), name


class TestTrimmedLength:
    def test_matches_amortised_trim_brute_force(self):
        """The closed form replays the eager append-and-trim recurrence
        for every (base, appends, limit) combination."""
        for limit in (1, 2, 3, 5):
            for base in range(0, 2 * limit + 1):
                length = base
                for appended in range(1, 40):
                    length += 1
                    if length > 2 * limit:
                        length = limit
                    assert trimmed_length(base + appended, limit) == length, (
                        f"limit={limit} base={base} appended={appended}"
                    )

    def test_unlimited(self):
        assert trimmed_length(0, None) == 0
        assert trimmed_length(7, None) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            trimmed_length(-1, 3)


class TestIngestEquivalence:
    @pytest.mark.parametrize("limit", [None, 3])
    def test_steady_ingest(self, limit):
        lazy, eager = _pair(limit)
        names = ("a", "b")
        for epoch in range(17):
            block = _block(epoch, 2)
            lazy.ingest(names, block, 1.0)
            eager.ingest(names, block, 1.0)
            _assert_equal_stores(lazy, eager)

    @pytest.mark.parametrize("limit", [None, 2])
    def test_placement_change_flushes_ring(self, limit):
        """Changing the VM-name tuple starts a new ring segment; the
        flushed epochs must survive in every VM's history."""
        lazy, eager = _pair(limit, lazy_names=("a", "b", "c"))
        for epoch in range(5):
            block = _block(epoch, 3)
            lazy.ingest(("a", "b", "c"), block, 1.0)
            eager.ingest(("a", "b", "c"), block, 1.0)
        # VM "c" leaves the host.
        for epoch in range(5, 11):
            block = _block(epoch, 2)
            lazy.ingest(("a", "b"), block, 1.0)
            eager.ingest(("a", "b"), block, 1.0)
            _assert_equal_stores(lazy, eager)
        # The departed VM's history is retained, frozen at departure.
        assert len(lazy.histories["c"]) == len(eager.histories["c"]) > 0
        assert list(lazy.histories["c"]) == list(eager.histories["c"])

    def test_scalar_append_flushes_ring(self):
        """A scalar epoch flushes the ring (no gaps in the record)."""
        lazy, eager = _pair(3)
        names = ("a", "b")
        for epoch in range(4):
            block = _block(epoch, 2)
            lazy.ingest(names, block, 1.0)
            eager.ingest(names, block, 1.0)
        scalar = {
            "a": CounterSample(inst_retired=5.0),
            "b": CounterSample(inst_retired=7.0),
        }
        lazy.append_samples(scalar)
        eager.append_samples(scalar)
        _assert_equal_stores(lazy, eager)
        assert lazy.latest_block() is None
        # Scalar-appended objects keep identity through the store.
        assert lazy.histories["a"][-1] is scalar["a"]

    def test_vm_joining_mid_run(self):
        """A VM arriving mid-run has a shorter history; trim phases then
        differ per VM and must still replicate the eager reference."""
        limit = 2
        lazy, eager = _pair(limit, lazy_names=("a",))
        for epoch in range(3):
            block = _block(epoch, 1)
            lazy.ingest(("a",), block, 1.0)
            eager.ingest(("a",), block, 1.0)
        for store in (lazy, eager):
            store.ensure("b")
        for epoch in range(3, 14):
            block = _block(epoch, 2)
            lazy.ingest(("a", "b"), block, 1.0)
            eager.ingest(("a", "b"), block, 1.0)
            _assert_equal_stores(lazy, eager)

    def test_grow_path_preserves_ring_continuity(self):
        """Post-construction VM registration takes the in-place grow
        path: the segment (and the resident VMs' ring contents) carries
        over instead of flushing, and the appended VM's history begins
        at the epoch it joined."""
        limit = 4
        lazy, eager = _pair(limit, lazy_names=("a", "b"))
        for epoch in range(3):
            block = _block(epoch, 2)
            lazy.ingest(("a", "b"), block, 1.0)
            eager.ingest(("a", "b"), block, 1.0)
        appended_before = lazy._appended
        for store in (lazy, eager):
            store.ensure("c")
        for epoch in range(3, 6):
            block = _block(epoch, 3)
            lazy.ingest(("a", "b", "c"), block, 1.0)
            eager.ingest(("a", "b", "c"), block, 1.0)
            _assert_equal_stores(lazy, eager)
        # The segment was grown, not restarted: epochs kept counting.
        assert lazy._appended == appended_before + 3
        assert len(lazy.histories["c"]) == 3
        assert len(lazy.histories["a"]) == 6

    def test_grow_path_preserves_trim_phase(self):
        """Growing mid-sawtooth must not disturb the resident VMs'
        amortised-trim phase (lengths keep replaying the eager trim)."""
        limit = 2
        lazy, eager = _pair(limit, lazy_names=("a",))
        for epoch in range(2 * limit + 1):  # "a" is past its first trim
            block = _block(epoch, 1)
            lazy.ingest(("a",), block, 1.0)
            eager.ingest(("a",), block, 1.0)
        for store in (lazy, eager):
            store.ensure("b")
        for epoch in range(2 * limit + 1, 2 * limit + 9):
            block = _block(epoch, 2)
            lazy.ingest(("a", "b"), block, 1.0)
            eager.ingest(("a", "b"), block, 1.0)
            _assert_equal_stores(lazy, eager)

    def test_grow_gates_window_fast_path_until_covered(self):
        """After a grow, the columnar window fast path must refuse
        windows the youngest VM cannot cover (the per-VM fallback trims
        those), then resume serving exact folds once it can."""
        store = HostCounterStore(history_limit=8, lazy=True)
        for name in ("a", "b"):
            store.ensure(name)
        for epoch in range(4):
            store.ingest(("a", "b"), _block(epoch, 2), 1.0)
        store.ensure("c")
        names = ("a", "b", "c")
        store.ingest(names, _block(4, 3), 1.0)
        assert store.window_view(3, names, 5) is None  # "c" has 1 epoch
        assert store.window_view(1, names, 5) is not None
        for epoch in range(5, 8):
            store.ingest(names, _block(epoch, 3), 1.0)
        view = store.window_view(3, names, 8)
        assert view is not None
        _got_names, latest, acc = view
        for i, name in enumerate(names):
            samples = store.histories[name][-3:]
            expected = sample_row(samples[0])
            for s in samples[1:]:
                expected = expected + sample_row(s)
            assert np.array_equal(acc[i], expected)
            assert np.array_equal(latest[i], sample_row(samples[-1]))

    def test_shrink_path_keeps_segment_and_departed_history(self):
        """A pure removal shrinks the ring in place: the departed VM's
        history is materialised and retained, the remaining VMs keep
        their segment (the window fast path stays available)."""
        lazy, eager = _pair(4, lazy_names=("a", "b", "c"))
        names = ("a", "b", "c")
        for epoch in range(5):
            block = _block(epoch, 3)
            lazy.ingest(names, block, 1.0)
            eager.ingest(names, block, 1.0)
        appended_before = lazy._appended
        for epoch in range(5, 8):
            block = _block(epoch, 2)
            lazy.ingest(("a", "c"), block, 1.0)
            eager.ingest(("a", "c"), block, 1.0)
            _assert_equal_stores(lazy, eager)
        assert lazy._appended == appended_before + 3
        assert list(lazy.histories["b"]) == list(eager.histories["b"])
        # The survivors' ring segment kept running: exact fast windows.
        assert lazy.window_view(4, ("a", "c"), 8) is not None

    def test_reorder_still_flushes(self):
        """Only pure appends/removals resize in place; a reordering is
        not a lifecycle shape and falls back to the full flush."""
        lazy, eager = _pair(4, lazy_names=("a", "b"))
        for epoch in range(3):
            block = _block(epoch, 2)
            lazy.ingest(("a", "b"), block, 1.0)
            eager.ingest(("a", "b"), block, 1.0)
        for epoch in range(3, 6):
            block = _block(epoch, 2)
            lazy.ingest(("b", "a"), block, 1.0)
            eager.ingest(("b", "a"), block, 1.0)
            _assert_equal_stores(lazy, eager)
        assert lazy._appended == 3  # restarted segment

    def test_departed_vm_can_rejoin_with_prior_history(self):
        """Depart (shrink), then re-arrive (grow): the rejoining VM's
        prefix history must splice with its new ring epochs exactly as
        the eager lists do."""
        limit = 3
        lazy, eager = _pair(limit, lazy_names=("a", "b"))
        for epoch in range(4):
            block = _block(epoch, 2)
            lazy.ingest(("a", "b"), block, 1.0)
            eager.ingest(("a", "b"), block, 1.0)
        for epoch in range(4, 6):
            block = _block(epoch, 1)
            lazy.ingest(("a",), block, 1.0)
            eager.ingest(("a",), block, 1.0)
        for epoch in range(6, 14):
            block = _block(epoch, 2)
            lazy.ingest(("a", "b"), block, 1.0)
            eager.ingest(("a", "b"), block, 1.0)
            _assert_equal_stores(lazy, eager)

    def test_epoch_seconds_preserved_per_epoch(self):
        lazy, eager = _pair(None, lazy_names=("a",))
        for epoch, eps in enumerate((0.5, 1.0, 2.0)):
            block = _block(epoch, 1)
            lazy.ingest(("a",), block, eps)
            eager.ingest(("a",), block, eps)
        assert [s.epoch_seconds for s in lazy.histories["a"]] == [0.5, 1.0, 2.0]
        _assert_equal_stores(lazy, eager)

    def test_ingested_block_is_copied(self):
        """Mutating the caller's block after ingest (buffer reuse) must
        not change the recorded epoch."""
        store = HostCounterStore(history_limit=4, lazy=True)
        store.ensure("a")
        block = _block(0, 1)
        store.ingest(("a",), block, 1.0)
        before = store.histories["a"][-1]
        block[:] = -1.0
        assert store.histories["a"][-1] == before


class TestWindowReads:
    def test_window_view_matches_fold_of_samples(self):
        store = HostCounterStore(history_limit=4, lazy=True)
        names = ("a", "b")
        for name in names:
            store.ensure(name)
        for epoch in range(6):
            store.ingest(names, _block(epoch, 2), 1.0)
        for window in (1, 2, 3, 4):
            view = store.window_view(window, names, 6)
            assert view is not None
            got_names, latest, acc = view
            assert got_names == names
            for i, name in enumerate(names):
                samples = store.histories[name][-window:]
                expected = sample_row(samples[0])
                for s in samples[1:]:
                    expected = expected + sample_row(s)
                assert np.array_equal(acc[i], expected)
                assert np.array_equal(latest[i], sample_row(samples[-1]))

    def test_window_view_refuses_trimmed_window(self):
        """history_limit < window would trim the sample windows; the
        fast path must refuse so callers fall back (and warn)."""
        store = HostCounterStore(history_limit=2, lazy=True)
        store.ensure("a")
        for epoch in range(6):
            store.ingest(("a",), _block(epoch, 1), 1.0)
        assert store.window_view(3, ("a",), 6) is None
        assert store.window_view(2, ("a",), 6) is not None

    def test_window_view_refuses_changed_placement(self):
        store = HostCounterStore(history_limit=8, lazy=True)
        for name in ("a", "b"):
            store.ensure(name)
        store.ingest(("a", "b"), _block(0, 2), 1.0)
        assert store.window_view(1, ("a",), 1) is None

    def test_vm_window_fold_matches_materialised(self):
        """The per-VM fallback fold equals aggregating the materialised
        window, across prefix/ring boundaries."""
        store = HostCounterStore(history_limit=4, lazy=True)
        for name in ("a", "b"):
            store.ensure(name)
        for epoch in range(3):
            store.ingest(("a", "b"), _block(epoch, 2), 1.0)
        # Placement change: "b" leaves; "a" keeps a prefix + new ring.
        for epoch in range(3, 6):
            store.ingest(("a",), _block(epoch, 1), 1.0)
        for window in (1, 2, 4, 6):
            for name in ("a", "b"):
                fold = store.vm_window_fold(name, window)
                samples = store.histories[name][-window:]
                expected = sample_row(samples[0])
                for s in samples[1:]:
                    expected = expected + sample_row(s)
                acc, latest = fold
                assert np.array_equal(acc, expected), (name, window)
                assert np.array_equal(latest, sample_row(samples[-1]))

    def test_latest_block_tracks_newest_epoch(self):
        store = HostCounterStore(history_limit=2, lazy=True)
        store.ensure("a")
        assert store.latest_block() is None
        for epoch in range(5):
            block = _block(epoch, 1)
            store.ingest(("a",), block, 1.0)
            assert np.array_equal(store.latest_block(), block)


class TestHistoryViewProtocol:
    def test_mapping_and_sequence_protocols(self):
        store = HostCounterStore(history_limit=None, lazy=True)
        store.ensure("a")
        view = store.histories
        assert "a" in view and "ghost" not in view
        assert view.get("ghost") is None
        assert len(view["a"]) == 0
        assert not view["a"]
        store.ingest(("a",), _block(0, 1), 1.0)
        history = view["a"]
        assert history  # non-empty is truthy
        assert history[0] == history[-1]
        assert history[-1:] == [history[0]]
        with pytest.raises(IndexError):
            history[1]
        with pytest.raises(KeyError):
            view["ghost"]

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            HostCounterStore(history_limit=0)


class TestCounterSampleFieldOrder:
    """The positional coupling every columnar path depends on.

    ``CounterSample(*row)`` is used by ``BatchEpochResult.sample`` /
    ``samples`` and by the lazy store's materialisation; if a dataclass
    field were reordered, every counter would be silently scrambled.
    """

    def test_dataclass_fields_match_counter_names(self):
        declared = tuple(f.name for f in fields(CounterSample))
        assert declared[: len(COUNTER_NAMES)] == COUNTER_NAMES
        assert declared[len(COUNTER_NAMES)] == "epoch_seconds"
        assert len(declared) == len(COUNTER_NAMES) + 1

    def test_positional_construction_round_trips(self):
        row = [float(i + 1) for i in range(len(COUNTER_NAMES))]
        sample = CounterSample(*row, epoch_seconds=2.0)
        assert [sample[name] for name in COUNTER_NAMES] == row
        assert sample.epoch_seconds == 2.0
        assert np.array_equal(sample_row(sample), np.asarray(row))

    def test_batch_result_columns_match_sample_fields(self):
        """A batch epoch's counter columns materialise into the fields
        of the same name (the ``BatchEpochResult.counters`` contract)."""
        from repro.hardware.demand import ResourceDemand
        from repro.hardware.machine import PhysicalMachine

        machine = PhysicalMachine(noise=0.0, seed=3)
        demands = {
            "vm0": ResourceDemand(
                instructions=2e9,
                vcpus=2,
                working_set_mb=64.0,
                disk_mb=10.0,
                network_mbit=50.0,
            )
        }
        names = list(demands)
        plan = machine.batch_plan(demands)
        from repro.hardware.batch import (
            ClusterLayout,
            DemandMatrix,
            simulate_epoch_batch,
        )

        layout = ClusterLayout.assemble(
            [plan], machine.spec.architecture.cache_domains
        )
        batch = simulate_epoch_batch(
            machine.spec,
            DemandMatrix.from_demands([demands[n] for n in names]),
            layout,
            1.0,
            np.ones(1),
            noise_rngs=[(0.0, machine._rng)],
        )
        sample = batch.sample(0)
        for j, name in enumerate(COUNTER_NAMES):
            assert sample[name] == batch.counters[0, j], name
