"""Tests for the Table 1 counter definitions and raw samples."""

import pytest

from repro.metrics.counters import (
    CORE_COUNTERS,
    COUNTER_DEFINITIONS,
    COUNTER_NAMES,
    IO_COUNTERS,
    CounterSample,
)


class TestCounterDefinitions:
    def test_table1_has_fourteen_metrics(self):
        assert len(COUNTER_DEFINITIONS) == 14
        assert len(COUNTER_NAMES) == 14

    def test_names_are_unique(self):
        assert len(set(COUNTER_NAMES)) == len(COUNTER_NAMES)

    def test_core_and_io_partition(self):
        assert set(CORE_COUNTERS) | set(IO_COUNTERS) == set(COUNTER_NAMES)
        assert not set(CORE_COUNTERS) & set(IO_COUNTERS)

    def test_io_counters_are_disk_and_network(self):
        assert set(IO_COUNTERS) == {"disk_stall_cycles", "net_stall_cycles"}

    def test_expected_pmu_counters_present(self):
        for name in ("cpu_unhalted", "inst_retired", "l1d_repl", "l2_lines_in",
                     "resource_stalls", "bus_tran_any", "br_miss_pred"):
            assert name in CORE_COUNTERS


class TestCounterSample:
    def test_as_dict_roundtrip(self):
        sample = CounterSample(cpu_unhalted=100.0, inst_retired=50.0)
        rebuilt = CounterSample.from_mapping(sample.as_dict())
        assert rebuilt.cpu_unhalted == 100.0
        assert rebuilt.inst_retired == 50.0

    def test_from_mapping_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            CounterSample.from_mapping({"not_a_counter": 1.0})

    def test_getitem_and_iter(self):
        sample = CounterSample(inst_retired=42.0)
        assert sample["inst_retired"] == 42.0
        assert list(sample) == list(COUNTER_NAMES)
        with pytest.raises(KeyError):
            sample["bogus"]

    def test_cpi_and_ipc(self):
        sample = CounterSample(cpu_unhalted=200.0, inst_retired=100.0)
        assert sample.cpi == pytest.approx(2.0)
        assert sample.ipc == pytest.approx(0.5)

    def test_cpi_of_idle_sample_is_infinite(self):
        assert CounterSample.zeros().cpi == float("inf")
        assert CounterSample.zeros().ipc == 0.0

    def test_scaled(self):
        sample = CounterSample(cpu_unhalted=10.0, inst_retired=4.0, l1d_repl=2.0)
        half = sample.scaled(0.5)
        assert half.cpu_unhalted == pytest.approx(5.0)
        assert half.l1d_repl == pytest.approx(1.0)
        assert half.epoch_seconds == sample.epoch_seconds

    def test_merged_sums_counters_and_epochs(self):
        a = CounterSample(inst_retired=10.0, epoch_seconds=1.0)
        b = CounterSample(inst_retired=20.0, epoch_seconds=2.0)
        merged = a.merged(b)
        assert merged.inst_retired == pytest.approx(30.0)
        assert merged.epoch_seconds == pytest.approx(3.0)

    def test_validate_accepts_zeroes(self):
        CounterSample.zeros().validate()

    def test_validate_rejects_negative(self):
        sample = CounterSample(inst_retired=-1.0)
        with pytest.raises(ValueError):
            sample.validate()

    def test_validate_rejects_nan(self):
        sample = CounterSample(inst_retired=float("nan"))
        with pytest.raises(ValueError):
            sample.validate()
