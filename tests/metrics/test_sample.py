"""Tests for the normalised metric vectors."""

import pytest

from repro.metrics.counters import CounterSample
from repro.metrics.normalization import (
    aggregate_samples,
    normalize_sample,
    normalize_samples,
)
from repro.metrics.sample import (
    WARNING_METRICS,
    MetricVector,
    matrix_to_vectors,
    vectors_to_matrix,
)


def _sample(inst=1e9, scale=1.0):
    return CounterSample(
        cpu_unhalted=2.0 * inst,
        inst_retired=inst,
        l1d_repl=0.02 * inst * scale,
        l2_lines_in=0.005 * inst * scale,
        mem_load=0.3 * inst,
        resource_stalls=1.0 * inst,
        bus_tran_any=0.008 * inst * scale,
        br_miss_pred=0.004 * inst,
        disk_stall_cycles=0.1 * inst,
        net_stall_cycles=0.05 * inst,
    )


class TestMetricVector:
    def test_dimensions_complete(self):
        vector = MetricVector.from_sample(_sample())
        assert set(vector.values) == set(WARNING_METRICS)

    def test_normalisation_is_load_invariant(self):
        """The key property from Section 4.1: normalised values persist
        across load intensities (here, scaling the amount of work)."""
        low = MetricVector.from_sample(_sample(inst=1e8))
        high = MetricVector.from_sample(_sample(inst=4e9))
        for name in ("cpi", "l1_repl_pki", "l2_lines_in_pki", "bus_tran_pki"):
            assert low[name] == pytest.approx(high[name], rel=1e-9)

    def test_interference_shifts_normalised_values(self):
        quiet = MetricVector.from_sample(_sample(scale=1.0))
        noisy = MetricVector.from_sample(_sample(scale=3.0))
        assert noisy["l2_lines_in_pki"] > quiet["l2_lines_in_pki"] * 2

    def test_missing_dimension_rejected(self):
        with pytest.raises(ValueError):
            MetricVector(values={"cpi": 1.0})

    def test_as_array_order(self):
        vector = MetricVector.from_sample(_sample())
        array = vector.as_array()
        assert array.shape == (len(WARNING_METRICS),)
        assert array[0] == pytest.approx(vector["cpi"])

    def test_as_array_subset(self):
        vector = MetricVector.from_sample(_sample())
        sub = vector.as_array(["cpi", "l1_repl_pki"])
        assert sub.shape == (2,)
        assert sub[1] == pytest.approx(vector["l1_repl_pki"])

    def test_distance_zero_to_self(self):
        vector = MetricVector.from_sample(_sample())
        assert vector.distance(vector) == pytest.approx(0.0)

    def test_distance_with_scale(self):
        a = MetricVector.from_sample(_sample(scale=1.0))
        b = MetricVector.from_sample(_sample(scale=2.0))
        unscaled = a.distance(b)
        scaled = a.distance(b, scale={name: 10.0 for name in WARNING_METRICS})
        assert scaled < unscaled

    def test_copy_is_independent(self):
        vector = MetricVector.from_sample(_sample())
        clone = vector.copy()
        clone.values["cpi"] = 123.0
        assert vector["cpi"] != 123.0

    def test_cpu_utilization_bounded(self):
        vector = MetricVector.from_sample(_sample())
        assert 0.0 <= vector["cpu_utilization"] <= 1.0


class TestMatrixConversion:
    def test_roundtrip(self):
        vectors = [MetricVector.from_sample(_sample(scale=s)) for s in (1.0, 2.0, 3.0)]
        matrix = vectors_to_matrix(vectors)
        assert matrix.shape == (3, len(WARNING_METRICS))
        back = matrix_to_vectors(matrix)
        assert back[1]["l1_repl_pki"] == pytest.approx(vectors[1]["l1_repl_pki"])

    def test_empty(self):
        matrix = vectors_to_matrix([])
        assert matrix.shape == (0, len(WARNING_METRICS))


class TestNormalizationHelpers:
    def test_normalize_sample_label(self):
        vector = normalize_sample(_sample(), label="app")
        assert vector.label == "app"

    def test_normalize_samples(self):
        vectors = normalize_samples([_sample(), _sample()])
        assert len(vectors) == 2

    def test_aggregate_samples(self):
        merged = aggregate_samples([_sample(inst=1e9), _sample(inst=2e9)])
        assert merged.inst_retired == pytest.approx(3e9)
        assert merged.epoch_seconds == pytest.approx(2.0)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_samples([])
