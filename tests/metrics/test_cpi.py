"""Tests for the I/O-augmented CPI stack."""

import pytest

from repro.metrics.counters import CounterSample
from repro.metrics.cpi import (
    CPIStack,
    CPIStackModel,
    Resource,
    StallBreakdown,
    degradation_from_instructions,
)


def _sample(inst=1e9, l1=0.02, l2=0.005, stalls=1.0, disk=0.0, net=0.0, cycles=2.0):
    return CounterSample(
        cpu_unhalted=cycles * inst,
        inst_retired=inst,
        l1d_repl=l1 * inst,
        l2_lines_in=l2 * inst,
        resource_stalls=stalls * inst,
        bus_req_out=l2 * inst * 100,
        disk_stall_cycles=disk * inst,
        net_stall_cycles=net * inst,
    )


class TestStallBreakdown:
    def test_overall_is_sum(self):
        bd = StallBreakdown(core=1.0, cache=0.5, memory_bus=0.3, disk=0.2, network=0.1)
        assert bd.overall == pytest.approx(2.1)

    def test_as_dict_and_getitem(self):
        bd = StallBreakdown(core=1.0, cache=0.5, memory_bus=0.3, disk=0.2, network=0.1)
        assert bd[Resource.CACHE] == pytest.approx(0.5)
        assert set(bd.as_dict()) == set(Resource)


class TestCPIStackModel:
    def test_breakdown_components_nonnegative(self):
        model = CPIStackModel.for_architecture("xeon_x5472")
        bd = model.breakdown(_sample())
        for resource in Resource:
            assert bd[resource] >= 0.0

    def test_for_architecture_unknown(self):
        with pytest.raises(KeyError):
            CPIStackModel.for_architecture("sparc")

    def test_for_architecture_presets_differ(self):
        xeon = CPIStackModel.for_architecture("xeon_x5472")
        i7 = CPIStackModel.for_architecture("core_i7")
        assert xeon.memory_cycles != i7.memory_cycles

    def test_io_stalls_enter_breakdown(self):
        model = CPIStackModel.for_architecture("xeon_x5472")
        bd = model.breakdown(_sample(disk=0.8, net=0.4))
        assert bd.disk == pytest.approx(0.8, rel=1e-6)
        assert bd.network == pytest.approx(0.4, rel=1e-6)


class TestCulpritAttribution:
    def _compare(self, iso_kwargs, prod_kwargs):
        model = CPIStackModel.for_architecture("xeon_x5472")
        return model.compare(_sample(**prod_kwargs), _sample(**iso_kwargs))

    def test_more_cache_misses_blames_cache(self):
        """Scenario A: more off-core accesses at the same per-access cost."""
        stack = self._compare(
            dict(l1=0.02, stalls=1.0, cycles=2.0),
            dict(l1=0.06, stalls=3.0, cycles=4.0),
        )
        assert stack.culprit() is Resource.CACHE

    def test_higher_access_cost_blames_memory_bus(self):
        """Scenario B: same accesses, each one costing more."""
        stack = self._compare(
            dict(l1=0.02, stalls=1.0, cycles=2.0),
            dict(l1=0.02, stalls=2.5, cycles=3.5),
        )
        assert stack.culprit() is Resource.MEMORY_BUS

    def test_disk_stalls_blame_disk(self):
        stack = self._compare(
            dict(disk=0.05),
            dict(disk=1.5),
        )
        assert stack.culprit() is Resource.DISK

    def test_network_stalls_blame_network(self):
        stack = self._compare(
            dict(net=0.05),
            dict(net=1.2),
        )
        assert stack.culprit() is Resource.NETWORK

    def test_factors_sum_close_to_relative_slowdown(self):
        iso = _sample(cycles=2.0, stalls=1.0)
        prod = _sample(cycles=3.0, stalls=2.0)
        model = CPIStackModel.for_architecture("xeon_x5472")
        stack = model.compare(prod, iso)
        total = sum(stack.factors().values())
        expected = (3.0 - 2.0) / 3.0
        assert total == pytest.approx(expected, abs=0.05)

    def test_ranked_orders_by_factor(self):
        stack = self._compare(dict(disk=0.0), dict(disk=2.0))
        ranked = stack.ranked()
        assert ranked[0] is Resource.DISK

    def test_fallback_factors_without_calibration(self):
        prod = StallBreakdown(
            core=1.0, cache=0.8, memory_bus=0.4, disk=0.0, network=0.0
        )
        iso = StallBreakdown(core=1.0, cache=0.2, memory_bus=0.2, disk=0.0, network=0.0)
        stack = CPIStack(production=prod, isolation=iso)
        factors = stack.factors()
        assert factors[Resource.CACHE] > factors[Resource.MEMORY_BUS]
        assert stack.culprit() is Resource.CACHE


class TestDegradation:
    def test_no_degradation_for_identical_rates(self):
        a = _sample(inst=1e9)
        assert degradation_from_instructions(a, a) == pytest.approx(0.0)

    def test_half_rate_is_fifty_percent(self):
        prod = _sample(inst=0.5e9)
        iso = _sample(inst=1e9)
        assert degradation_from_instructions(prod, iso) == pytest.approx(0.5)

    def test_epoch_normalisation(self):
        prod = _sample(inst=1e9)
        prod.epoch_seconds = 2.0
        iso = _sample(inst=1e9)
        # Same count over twice the time = half the rate.
        assert degradation_from_instructions(prod, iso) == pytest.approx(0.5)

    def test_never_negative(self):
        prod = _sample(inst=2e9)
        iso = _sample(inst=1e9)
        assert degradation_from_instructions(prod, iso) == 0.0

    def test_zero_isolation_rate(self):
        prod = _sample(inst=1e9)
        iso = _sample(inst=0.0)
        assert degradation_from_instructions(prod, iso) == 0.0
