"""The deterministic fault-injection harness (chaos suite).

:mod:`repro.fleet.faults` is the controlled way to break a process
fleet's own workers: a seeded :class:`FaultPlan` schedules SIGKILLs,
hangs and shared-memory descriptor corruption/delays, injected either
programmatically (``build_fleet(fault_plan=...)``) or through the
``REPRO_FLEET_FAULT_PLAN`` environment hook the CI chaos leg uses.
This module pins the harness itself (plan determinism, JSON/env
parsing, per-worker slicing) and the supervision semantics the
equivalence suite does not cover: descriptor faults tolerated without a
restart, the exhausted-budget error naming the dead shards and the ways
out, quarantine manifests flowing into degraded checkpoints, and the
fault knobs being refused off the process executor.

Recovery *equivalence* (bit-identical decisions after a mid-run kill)
is pinned separately by
``tests/property/test_fault_recovery_equivalence.py``.
"""

import json

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FaultPlan,
    FaultPolicy,
    RunOptions,
    WorkerFault,
    build_fleet,
    build_regional_fleet,
    synthesize_datacenter,
)
from repro.fleet.checkpoint import validate_checkpoint_meta
from repro.fleet.faults import ENV_FAULT_PLAN, FAULT_KINDS, FAULT_POINTS
from repro.fleet.shm import leaked_segments


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _process_fleet(fault_policy=None, fault_plan=None, max_workers=2):
    scenario = synthesize_datacenter(16, num_shards=2, seed=29)
    return build_fleet(
        scenario,
        config=_config(),
        engine="batch",
        mitigate=False,
        executor="process",
        max_workers=max_workers,
        fault_policy=fault_policy,
        fault_plan=fault_plan,
    )


def _drive(fleet, epochs):
    for _ in range(epochs):
        fleet.run_epoch(options=RunOptions(analyze=False, report="columnar"))


def _kill(epoch, point="mid", worker=0):
    return FaultPlan(
        faults=(WorkerFault(kind="kill", worker=worker, epoch=epoch, point=point),)
    )


class TestFaultPlanDeterminism:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            seed=7, epochs=12, workers=4, kills=2, hangs=1, corruptions=1, delays=1
        )
        first = FaultPlan.generate(**kwargs)
        second = FaultPlan.generate(**kwargs)
        assert first == second
        assert len(first.faults) == 5
        by_kind = {kind: 0 for kind in FAULT_KINDS}
        for fault in first.faults:
            by_kind[fault.kind] += 1
            assert 0 <= fault.worker < 4
            assert 0 <= fault.epoch < 12
            assert fault.point in FAULT_POINTS
        assert by_kind == {
            "kill": 2,
            "hang": 1,
            "corrupt_descriptor": 1,
            "delay_descriptor": 1,
        }

    def test_generate_needs_room_to_schedule(self):
        with pytest.raises(ValueError, match="at least one epoch"):
            FaultPlan.generate(seed=1, epochs=0, workers=2)
        with pytest.raises(ValueError, match="at least one epoch"):
            FaultPlan.generate(seed=1, epochs=3, workers=0)

    @pytest.mark.parametrize(
        "fields,match",
        [
            (dict(kind="explode", worker=0, epoch=0), "unknown fault kind"),
            (dict(kind="kill", worker=0, epoch=0, point="eventually"), "fault point"),
            (dict(kind="kill", worker=-1, epoch=0), "worker index"),
            (dict(kind="kill", worker=0, epoch=-2), "epoch"),
            (dict(kind="hang", worker=0, epoch=0, seconds=0.0), "seconds"),
        ],
    )
    def test_fault_validation(self, fields, match):
        with pytest.raises(ValueError, match=match):
            WorkerFault(**fields)


class TestFaultPlanParsing:
    def test_explicit_fault_list(self):
        plan = FaultPlan.from_json(
            json.dumps(
                {
                    "faults": [
                        {"kind": "kill", "worker": 1, "epoch": 4, "point": "after"},
                        {
                            "kind": "delay_descriptor",
                            "worker": 0,
                            "epoch": 2,
                            "seconds": 0.5,
                        },
                    ]
                }
            )
        )
        assert plan.faults == (
            WorkerFault(kind="kill", worker=1, epoch=4, point="after"),
            WorkerFault(kind="delay_descriptor", worker=0, epoch=2, seconds=0.5),
        )

    def test_seeded_generator_spec(self):
        spec = {"seed": 3, "epochs": 5, "workers": 2, "kills": 2}
        assert FaultPlan.from_json(json.dumps(spec)) == FaultPlan.generate(**spec)

    @pytest.mark.parametrize(
        "text,match",
        [
            ("[1, 2]", "JSON object"),
            ("{}", "'faults' list or a 'seed'"),
            ('{"faults": {"kind": "kill"}}', "'faults' list or a 'seed'"),
        ],
    )
    def test_bad_specs_are_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.from_json(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(ENV_FAULT_PLAN, "")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(
            ENV_FAULT_PLAN,
            '{"faults": [{"kind": "kill", "worker": 0, "epoch": 1}]}',
        )
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.faults == (WorkerFault(kind="kill", worker=0, epoch=1),)
        # An explicit mapping wins over the process environment.
        assert FaultPlan.from_env({}) is None

    def test_worker_slicing_and_replay_pruning(self):
        plan = FaultPlan(
            faults=(
                WorkerFault(kind="kill", worker=0, epoch=2),
                WorkerFault(kind="hang", worker=1, epoch=3, seconds=1.0),
                WorkerFault(kind="kill", worker=0, epoch=6),
            )
        )
        assert bool(plan)
        assert not FaultPlan()
        assert [f.epoch for f in plan.for_worker(0).faults] == [2, 6]
        assert [f.worker for f in plan.for_worker(1).faults] == [1]
        # Respawn after failing epoch 3: everything already fired (or
        # overtaken by the failure) is dropped so replay cannot re-fire.
        assert [f.epoch for f in plan.after_epoch(3).faults] == [6]


class TestChaosIntegration:
    def test_env_hook_injects_plan_into_process_fleet(self, monkeypatch):
        """The CI chaos leg's knob: a JSON plan in the environment is
        picked up by every process fleet built without an explicit plan,
        and the supervisor recovers from it."""
        monkeypatch.setenv(
            ENV_FAULT_PLAN,
            '{"faults": [{"kind": "kill", "worker": 0, "epoch": 1, "point": "mid"}]}',
        )
        fleet = _process_fleet(fault_policy=FaultPolicy(restarts=1))
        try:
            _drive(fleet, 3)
            health = fleet.worker_health()
            assert [row["restarts"] for row in health] == [1, 0]
            assert all(row["alive"] for row in health)
        finally:
            fleet.shutdown()
        assert leaked_segments() == []

    def test_delay_descriptor_is_tolerated_without_restart(self):
        """A slow worker is not a dead worker: a delayed descriptor
        inside the heartbeat budget must not trip a restart."""
        plan = FaultPlan(
            faults=(
                WorkerFault(
                    kind="delay_descriptor", worker=0, epoch=1, seconds=0.3
                ),
            )
        )
        fleet = _process_fleet(
            fault_policy=FaultPolicy(restarts=1, heartbeat_timeout=30.0),
            fault_plan=plan,
        )
        try:
            _drive(fleet, 3)
            assert [row["restarts"] for row in fleet.worker_health()] == [0, 0]
        finally:
            fleet.shutdown()
        assert leaked_segments() == []

    def test_corrupt_descriptor_recovers_like_a_death(self):
        """A descriptor the parent cannot attach is indistinguishable
        from worker garbage: kill, respawn, replay, continue."""
        plan = FaultPlan(
            faults=(
                WorkerFault(kind="corrupt_descriptor", worker=0, epoch=1),
            )
        )
        fleet = _process_fleet(
            fault_policy=FaultPolicy(restarts=2), fault_plan=plan
        )
        try:
            _drive(fleet, 3)
            health = fleet.worker_health()
            assert [row["restarts"] for row in health] == [1, 0]
            assert all(row["alive"] for row in health)
        finally:
            fleet.shutdown()
        assert leaked_segments() == []

    def test_exhausted_budget_raise_names_shards_and_ways_out(self):
        fleet = _process_fleet(
            fault_policy=FaultPolicy(restarts=0), fault_plan=_kill(1)
        )
        try:
            with pytest.raises(
                RuntimeError,
                match=r"worker 0 \(shards: shard0\) failed at epoch 1",
            ) as excinfo:
                _drive(fleet, 3)
            message = str(excinfo.value)
            assert "restart budget (0)" in message
            assert "resume_fleet" in message
            assert "quarantine" in message
            # The run is refused deterministically afterwards.
            with pytest.raises(RuntimeError, match="lock step"):
                _drive(fleet, 1)
        finally:
            fleet.shutdown()
        assert leaked_segments() == []

    def test_quarantine_manifests_flow_into_degraded_checkpoint(self, tmp_path):
        fleet = _process_fleet(
            fault_policy=FaultPolicy(restarts=0, on_exhaustion="quarantine"),
            fault_plan=_kill(1, worker=1),
        )
        try:
            report = fleet.run_epoch(
                options=RunOptions(analyze=False, report="columnar")
            )
            assert report.missing_shards == ()
            report = fleet.run_epoch(
                options=RunOptions(analyze=False, report="columnar")
            )
            assert report.missing_shards == ("shard1",)
            assert report.degraded
            assert fleet.quarantined_shards == ("shard1",)
            checkpoint = fleet.snapshot(tmp_path / "degraded.ckpt")
            assert checkpoint.meta["missing_shards"] == ["shard1"]
            assert list(checkpoint.meta["shard_ids"]) == ["shard0"]
            validate_checkpoint_meta(checkpoint.meta)
        finally:
            fleet.shutdown()
        # The degraded checkpoint resumes (serial) with the survivors.
        resumed = type(fleet).resume(tmp_path / "degraded.ckpt")
        try:
            resumed.run_epoch(options=RunOptions(analyze=False))
            assert list(resumed.shards) == ["shard0"]
        finally:
            resumed.shutdown()
        assert leaked_segments() == []


class TestFaultKnobValidation:
    def test_fault_knobs_refused_off_the_process_executor(self):
        scenario = synthesize_datacenter(16, num_shards=2, seed=29)
        for knobs in (
            {"fault_policy": FaultPolicy()},
            {"fault_plan": _kill(1)},
        ):
            with pytest.raises(ValueError, match="process executor"):
                build_fleet(
                    scenario,
                    config=_config(),
                    mitigate=False,
                    executor="serial",
                    **knobs,
                )

    def test_regional_plan_for_unknown_region_rejected(self):
        scenario = synthesize_datacenter(16, num_shards=4, seed=29)
        with pytest.raises(ValueError, match="nowhere"):
            build_regional_fleet(
                scenario,
                num_regions=2,
                config=_config(),
                mitigate=False,
                fault_plans={"nowhere": _kill(1)},
            )
