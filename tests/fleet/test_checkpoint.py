"""Checkpoint file format, schema validation and resume dispatch.

The property contract (resumed == uninterrupted) lives in
``tests/property/test_checkpoint_equivalence.py``; this file pins the
container itself: magic/header/version handling, loud metadata
validation, deep payload cross-checks, atomicity of ``save``, and the
``kind`` guards that keep flat and regional resume paths explicit.
"""

import pickle
import struct

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    Fleet,
    RegionalFleet,
    build_fleet,
    build_regional_fleet,
    resume_fleet,
    synthesize_datacenter,
    validate_checkpoint_file,
)
from repro.fleet.checkpoint import (
    CHECKPOINT_MAGIC,
    validate_checkpoint_meta,
)


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _fleet(regional=False):
    scenario = synthesize_datacenter(16, num_shards=2, seed=23)
    if regional:
        fleet = build_regional_fleet(scenario, num_regions=2, config=_config())
    else:
        fleet = build_fleet(scenario, config=_config())
    fleet.bootstrap()
    return fleet


@pytest.fixture(scope="module")
def fleet_checkpoint():
    fleet = _fleet()
    try:
        fleet.run(2, analyze=False)
        return fleet.snapshot()
    finally:
        fleet.shutdown()


@pytest.fixture(scope="module")
def regional_checkpoint():
    fleet = _fleet(regional=True)
    try:
        fleet.run(2, analyze=False)
        return fleet.snapshot()
    finally:
        fleet.shutdown()


class TestFileFormat:
    def test_bytes_roundtrip(self, fleet_checkpoint):
        reloaded = Checkpoint.from_bytes(fleet_checkpoint.to_bytes())
        assert reloaded.meta == fleet_checkpoint.meta
        assert reloaded.payload == fleet_checkpoint.payload

    def test_save_load_roundtrip(self, fleet_checkpoint, tmp_path):
        path = fleet_checkpoint.save(tmp_path / "f.ckpt")
        assert path.read_bytes()[: len(CHECKPOINT_MAGIC)] == CHECKPOINT_MAGIC
        assert not (tmp_path / "f.ckpt.tmp").exists(), "atomic write leftovers"
        reloaded = Checkpoint.load(path)
        assert reloaded.meta == fleet_checkpoint.meta
        assert reloaded.payload == fleet_checkpoint.payload

    def test_bad_magic_refused(self, fleet_checkpoint):
        blob = b"NOT-A-CHECKPOINT" + fleet_checkpoint.to_bytes()[16:]
        with pytest.raises(CheckpointError, match="magic"):
            Checkpoint.from_bytes(blob)

    def test_truncated_header_refused(self):
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.from_bytes(CHECKPOINT_MAGIC[:8])

    def test_truncated_metadata_refused(self, fleet_checkpoint):
        blob = fleet_checkpoint.to_bytes()
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.from_bytes(blob[: len(CHECKPOINT_MAGIC) + 8 + 4])

    def test_future_version_refused(self, fleet_checkpoint):
        blob = bytearray(fleet_checkpoint.to_bytes())
        blob[16:20] = struct.pack(">I", CHECKPOINT_VERSION + 1)
        with pytest.raises(CheckpointError, match="newer"):
            Checkpoint.from_bytes(bytes(blob))

    def test_header_metadata_version_disagreement_refused(self, fleet_checkpoint):
        blob = bytearray(fleet_checkpoint.to_bytes())
        # Doctor only the binary header version; the JSON metadata keeps
        # the real one, so the two disagree.
        blob[16:20] = struct.pack(">I", 0)
        with pytest.raises(CheckpointError, match="disagrees"):
            Checkpoint.from_bytes(bytes(blob))

    def test_state_unpickles_fresh_each_call(self, fleet_checkpoint):
        a = fleet_checkpoint.state()
        b = fleet_checkpoint.state()
        assert a is not b
        assert a["shards"][0] is not b["shards"][0]

    def test_load_names_the_file(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="junk.ckpt"):
            Checkpoint.load(path)


class TestMetaValidation:
    def test_valid_meta_accepted(self, fleet_checkpoint):
        validate_checkpoint_meta(fleet_checkpoint.meta)

    @pytest.mark.parametrize(
        "patch,fragment",
        [
            ({"kind": "galactic"}, "kind"),
            ({"epoch": -1}, "epoch"),
            ({"executor": "fibers"}, "executor"),
            ({"max_workers": 0}, "max_workers"),
            ({"shard_ids": []}, "shard_ids"),
            ({"shard_ids": ["a", "a"]}, "duplicate"),
            ({"total_vms": "many"}, "total_vms"),
            ({"has_lifecycle": "yes"}, "has_lifecycle"),
            ({"created_unix": None}, "created_unix"),
            ({"regions": [{}]}, "regions"),
        ],
    )
    def test_violations_named(self, fleet_checkpoint, patch, fragment):
        meta = {**fleet_checkpoint.meta, **patch}
        with pytest.raises(CheckpointError, match=fragment):
            validate_checkpoint_meta(meta)

    def test_all_violations_reported_at_once(self, fleet_checkpoint):
        meta = {**fleet_checkpoint.meta, "epoch": -1, "executor": "fibers"}
        with pytest.raises(CheckpointError) as excinfo:
            validate_checkpoint_meta(meta)
        assert "epoch" in str(excinfo.value)
        assert "fibers" in str(excinfo.value)

    def test_regional_meta_needs_matching_shard_order(self, regional_checkpoint):
        meta = dict(regional_checkpoint.meta)
        regions = [dict(entry) for entry in meta["regions"]]
        # Swap the two regions' shard groups: concatenation no longer
        # reproduces the checkpoint's flat shard order.
        regions[0]["shard_ids"], regions[1]["shard_ids"] = (
            regions[1]["shard_ids"],
            regions[0]["shard_ids"],
        )
        meta["regions"] = regions
        with pytest.raises(CheckpointError, match="shard order"):
            validate_checkpoint_meta(meta)

    def test_flat_meta_refuses_regions(self, fleet_checkpoint):
        meta = {**fleet_checkpoint.meta, "regions": [{"region_id": "r"}]}
        with pytest.raises(CheckpointError, match="null"):
            validate_checkpoint_meta(meta)


class TestDeepValidation:
    def test_deep_validation_passes(self, fleet_checkpoint, tmp_path):
        path = fleet_checkpoint.save(tmp_path / "f.ckpt")
        meta = validate_checkpoint_file(path, deep=True)
        assert meta["epoch"] == 2

    def test_shard_inventory_mismatch_caught(self, fleet_checkpoint, tmp_path):
        state = fleet_checkpoint.state()
        state["shards"] = state["shards"][:1]
        doctored = Checkpoint(
            meta=dict(fleet_checkpoint.meta),
            payload=pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        )
        path = doctored.save(tmp_path / "doctored.ckpt")
        validate_checkpoint_file(path)  # shallow pass can't see it
        with pytest.raises(CheckpointError, match="inventory"):
            validate_checkpoint_file(path, deep=True)

    def test_missing_payload_keys_caught(self, fleet_checkpoint, tmp_path):
        state = fleet_checkpoint.state()
        del state["schedule"]
        doctored = Checkpoint(
            meta=dict(fleet_checkpoint.meta),
            payload=pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        )
        path = doctored.save(tmp_path / "doctored.ckpt")
        with pytest.raises(CheckpointError, match="schedule"):
            validate_checkpoint_file(path, deep=True)

    def test_untruthful_summary_flag_caught(self, fleet_checkpoint, tmp_path):
        doctored = Checkpoint(
            meta={**fleet_checkpoint.meta, "has_summary": True},
            payload=fleet_checkpoint.payload,
        )
        path = doctored.save(tmp_path / "doctored.ckpt")
        with pytest.raises(CheckpointError, match="has_summary"):
            validate_checkpoint_file(path, deep=True)


class TestResumeDispatch:
    def test_kind_guards(self, fleet_checkpoint, regional_checkpoint):
        with pytest.raises(CheckpointError, match="RegionalFleet.resume"):
            Fleet.resume(regional_checkpoint)
        with pytest.raises(CheckpointError, match="Fleet.resume"):
            RegionalFleet.resume(fleet_checkpoint)

    def test_resume_fleet_dispatches_on_kind(
        self, fleet_checkpoint, regional_checkpoint
    ):
        flat = resume_fleet(fleet_checkpoint)
        regional = resume_fleet(regional_checkpoint)
        try:
            assert isinstance(flat, Fleet)
            assert not isinstance(flat, RegionalFleet)
            assert isinstance(regional, RegionalFleet)
            assert flat.current_epoch == 2
            assert regional.current_epoch == 2
            assert all(
                inner.current_epoch == 2 for inner in regional.fleets.values()
            )
        finally:
            flat.shutdown()
            regional.shutdown()

    def test_resume_overrides_executor(self, fleet_checkpoint):
        fleet = Fleet.resume(fleet_checkpoint, executor="thread", max_workers=2)
        try:
            assert fleet.executor == "thread"
            assert fleet.max_workers == 2
        finally:
            fleet.shutdown()

    def test_regional_resume_rebuilds_partition(self, regional_checkpoint):
        fleet = RegionalFleet.resume(regional_checkpoint)
        try:
            assert list(fleet.fleets) == [
                entry["region_id"]
                for entry in regional_checkpoint.meta["regions"]
            ]
            assert list(fleet.shards) == list(
                regional_checkpoint.meta["shard_ids"]
            )
        finally:
            fleet.shutdown()

    def test_build_classmethod_validates(self):
        with pytest.raises(CheckpointError):
            Checkpoint.build({"kind": "fleet"}, {"shards": []})
