"""Campaign-runner unit tests: grid expansion, resume, npz schema.

A campaign cell is a deterministic function of (spec, cell parameters)
and completion tracking lives entirely in the result files, so these
tests exercise the three contracts the runner is built on: stable grid
expansion (cell ids and order never change), file-based resume (only
missing or corrupt cells rerun), and strict schema validation of the
columnar npz outputs.
"""

import json

import numpy as np
import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    CampaignRunner,
    CampaignSchemaError,
    CampaignSpec,
    validate_cell_npz,
)
from repro.fleet.campaign import CELL_SCHEMA, CELL_SCHEMA_VERSION
from repro.fleet.executor import WARNING_ACTIONS


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _tiny_spec(**overrides) -> CampaignSpec:
    params = dict(
        name="tiny",
        num_vms=8,
        num_shards=2,
        num_regions=2,
        epochs=4,
        seed=3,
        churn_rates=(0.0, 0.1),
        interference_mixes=("none", "memory"),
    )
    params.update(overrides)
    return CampaignSpec(**params)


class TestGridExpansion:
    def test_axis_product_in_declaration_order(self):
        spec = CampaignSpec(
            name="grid",
            churn_rates=(0.0, 0.1),
            interference_mixes=("none", "memory", "disk"),
            admission_degradations=(0.3, 0.6),
            load_phases=(1.0,),
        )
        cells = spec.cells()
        assert len(cells) == 2 * 3 * 2 * 1
        assert [c.index for c in cells] == list(range(12))
        # churn is the outermost axis, load the innermost.
        assert cells[0].params() == {
            "churn_rate": 0.0,
            "interference_mix": "none",
            "admission_degradation": 0.3,
            "load_phase": 1.0,
        }
        assert cells[1].admission_degradation == 0.6
        assert cells[6].churn_rate == 0.1

    def test_cell_ids_stable_and_filesystem_safe(self):
        spec = _tiny_spec()
        ids = [c.cell_id for c in spec.cells()]
        assert ids == [
            "cell0000-churn0-mixnone-adm0p5-load1",
            "cell0001-churn0-mixmemory-adm0p5-load1",
            "cell0002-churn0p1-mixnone-adm0p5-load1",
            "cell0003-churn0p1-mixmemory-adm0p5-load1",
        ]
        assert all("/" not in i and "." not in i for i in ids)

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="unknown interference mix"):
            _tiny_spec(interference_mixes=("cpu",))
        with pytest.raises(ValueError, match="must not be empty"):
            _tiny_spec(churn_rates=())
        with pytest.raises(ValueError, match="non-negative"):
            _tiny_spec(churn_rates=(-0.1,))

    def test_scenarios_reflect_cell_parameters(self):
        spec = _tiny_spec(load_phases=(1.0, 0.7))
        cells = spec.cells()
        quiet = spec.scenario_for(cells[0])
        assert quiet.episodes == () and quiet.timeline is None
        noisy = spec.scenario_for(
            next(c for c in cells if c.interference_mix == "memory")
        )
        assert len(noisy.episodes) == spec.num_shards
        churned = spec.scenario_for(
            next(c for c in cells if c.churn_rate > 0)
        )
        assert churned.timeline is not None
        phased = spec.scenario_for(
            next(c for c in cells if c.load_phase != 1.0)
        )
        phase_events = [
            e for e in phased.timeline.events if type(e).__name__ == "LoadPhase"
        ]
        assert len(phase_events) == spec.num_shards


class TestCampaignRun:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        spec = _tiny_spec()
        campaign_dir = tmp_path_factory.mktemp("campaign")
        runner = CampaignRunner(spec, campaign_dir, config=_config())
        summaries = runner.run()
        return spec, campaign_dir, runner, summaries

    def test_all_cells_written_and_valid(self, campaign):
        spec, campaign_dir, _runner, summaries = campaign
        assert [s["cell_id"] for s in summaries] == [
            c.cell_id for c in spec.cells()
        ]
        for cell in spec.cells():
            arrays = validate_cell_npz(campaign_dir / f"{cell.cell_id}.npz")
            assert int(arrays["epochs"]) == spec.epochs
            assert arrays["observations"].sum() > 0

    def test_manifest_describes_grid(self, campaign):
        spec, campaign_dir, _runner, _summaries = campaign
        manifest = json.loads((campaign_dir / "manifest.json").read_text())
        assert manifest["name"] == spec.name
        assert manifest["schema_version"] == CELL_SCHEMA_VERSION
        assert manifest["axes"]["churn_rate"] == list(spec.churn_rates)
        assert [c["cell_id"] for c in manifest["cells"]] == [
            c.cell_id for c in spec.cells()
        ]

    def test_summaries_have_percentiles_and_slo(self, campaign):
        _spec, _dir, _runner, summaries = campaign
        for summary in summaries:
            assert {"p50", "p90", "p99", "mean", "max"} <= set(
                summary["epoch_seconds"]
            )
            assert 0.0 <= summary["slo_violation_fraction"] <= 1.0
            assert summary["status"] == "complete"

    def test_interference_cells_confirm(self, campaign):
        """The memory-mix cells must actually detect something, or the
        whole sweep measures nothing."""
        _spec, _dir, _runner, summaries = campaign
        confirmed = {
            s["params"]["interference_mix"]: s["confirmed"] for s in summaries
        }
        assert confirmed["memory"] > 0

    def test_resume_skips_completed_cells(self, campaign):
        spec, campaign_dir, runner, _summaries = campaign
        mtimes = {
            p.name: p.stat().st_mtime_ns
            for p in campaign_dir.glob("*.npz")
        }
        runner.run(resume=True)
        after = {
            p.name: p.stat().st_mtime_ns
            for p in campaign_dir.glob("*.npz")
        }
        assert after == mtimes, "resume must not rewrite completed cells"

    def test_resume_reruns_corrupt_cell(self, campaign):
        spec, campaign_dir, runner, _summaries = campaign
        victim = spec.cells()[0]
        npz = campaign_dir / f"{victim.cell_id}.npz"
        npz.write_bytes(b"not an npz")
        assert not runner.cell_complete(victim)
        untouched = spec.cells()[1]
        before = (campaign_dir / f"{untouched.cell_id}.npz").stat().st_mtime_ns
        runner.run(resume=True)
        validate_cell_npz(npz)
        after = (campaign_dir / f"{untouched.cell_id}.npz").stat().st_mtime_ns
        assert after == before, "only the corrupt cell may rerun"

    def test_mismatched_campaign_dir_refused(self, campaign):
        _spec, campaign_dir, _runner, _summaries = campaign
        other = CampaignRunner(
            _tiny_spec(seed=99), campaign_dir, config=_config()
        )
        with pytest.raises(ValueError, match="different campaign"):
            other.run()

    def test_cell_decisions_deterministic(self, campaign, tmp_path):
        """Rerunning one cell in a fresh directory reproduces the
        decision columns byte for byte (wall-times aside)."""
        spec, campaign_dir, _runner, _summaries = campaign
        from repro.fleet import run_cell

        cell = spec.cells()[1]
        run_cell(spec, cell, tmp_path, config=_config())
        a = validate_cell_npz(campaign_dir / f"{cell.cell_id}.npz")
        b = validate_cell_npz(tmp_path / f"{cell.cell_id}.npz")
        for name in ("action_counts", "observations", "confirmed", "counter_totals"):
            assert np.array_equal(a[name], b[name], equal_nan=True), name


class TestSchemaValidation:
    @pytest.fixture(scope="class")
    def valid_npz(self, tmp_path_factory):
        from repro.fleet import run_cell

        spec = _tiny_spec(churn_rates=(0.0,), interference_mixes=("none",))
        cell = spec.cells()[0]
        d = tmp_path_factory.mktemp("schema")
        run_cell(spec, cell, d, config=_config())
        return d / f"{cell.cell_id}.npz"

    def _tampered(self, valid_npz, tmp_path, mutate):
        with np.load(valid_npz) as archive:
            arrays = {name: archive[name] for name in archive.files}
        mutate(arrays)
        out = tmp_path / "tampered.npz"
        np.savez(out, **arrays)
        return out

    def test_valid_file_passes(self, valid_npz):
        arrays = validate_cell_npz(valid_npz)
        assert set(arrays) == set(CELL_SCHEMA)

    def test_missing_array_rejected(self, valid_npz, tmp_path):
        out = self._tampered(
            valid_npz, tmp_path, lambda a: a.pop("action_counts")
        )
        with pytest.raises(CampaignSchemaError, match="missing arrays"):
            validate_cell_npz(out)

    def test_unexpected_array_rejected(self, valid_npz, tmp_path):
        out = self._tampered(
            valid_npz,
            tmp_path,
            lambda a: a.update(extra=np.zeros(3)),
        )
        with pytest.raises(CampaignSchemaError, match="unexpected arrays"):
            validate_cell_npz(out)

    def test_wrong_dtype_rejected(self, valid_npz, tmp_path):
        out = self._tampered(
            valid_npz,
            tmp_path,
            lambda a: a.update(observations=a["observations"].astype(float)),
        )
        with pytest.raises(CampaignSchemaError, match="dtype kind"):
            validate_cell_npz(out)

    def test_wrong_shape_rejected(self, valid_npz, tmp_path):
        out = self._tampered(
            valid_npz,
            tmp_path,
            lambda a: a.update(confirmed=a["confirmed"][:-1]),
        )
        with pytest.raises(CampaignSchemaError, match="shape"):
            validate_cell_npz(out)

    def test_wrong_schema_version_rejected(self, valid_npz, tmp_path):
        out = self._tampered(
            valid_npz,
            tmp_path,
            lambda a: a.update(schema_version=np.int64(99)),
        )
        with pytest.raises(CampaignSchemaError, match="schema_version"):
            validate_cell_npz(out)

    def test_inconsistent_counts_rejected(self, valid_npz, tmp_path):
        def bump(arrays):
            counts = arrays["action_counts"].copy()
            counts[0, 0] += 1
            arrays["action_counts"] = counts

        out = self._tampered(valid_npz, tmp_path, bump)
        with pytest.raises(CampaignSchemaError, match="do not sum"):
            validate_cell_npz(out)

    def test_wrong_action_table_rejected(self, valid_npz, tmp_path):
        out = self._tampered(
            valid_npz,
            tmp_path,
            lambda a: a.update(
                action_names=np.array(list(reversed(WARNING_ACTIONS)))
            ),
        )
        with pytest.raises(CampaignSchemaError, match="action_names"):
            validate_cell_npz(out)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(CampaignSchemaError, match="unreadable"):
            validate_cell_npz(path)


class TestMidCellResume:
    """PR-8: ``checkpoint_every`` checkpoints a *running* cell, so an
    interrupted campaign resumes mid-cell instead of rerunning the cell
    from epoch 0 — with byte-identical decision columns."""

    SEMANTIC = (
        "action_counts",
        "observations",
        "analyzer_invocations",
        "confirmed",
        "counter_totals",
    )

    def _one_cell_spec(self):
        return _tiny_spec(
            epochs=6, churn_rates=(0.1,), interference_mixes=("memory",)
        )

    def _assert_same_columns(self, a_npz, b_npz):
        a = validate_cell_npz(a_npz)
        b = validate_cell_npz(b_npz)
        for name in self.SEMANTIC:
            assert np.array_equal(a[name], b[name], equal_nan=True), name

    def test_interrupted_cell_resumes_bit_identical(self, tmp_path):
        from repro.fleet import run_cell

        spec = self._one_cell_spec()
        cell = spec.cells()[0]
        reference_dir = tmp_path / "reference"
        run_cell(spec, cell, reference_dir, config=_config())

        interrupted_dir = tmp_path / "interrupted"
        with pytest.raises(RuntimeError, match="test hook"):
            run_cell(
                spec,
                cell,
                interrupted_dir,
                config=_config(),
                checkpoint_every=2,
                _fail_after_epochs=3,
            )
        ckpt = interrupted_dir / f"{cell.cell_id}.ckpt"
        assert ckpt.exists(), "the interruption must leave a checkpoint"
        assert not (interrupted_dir / f"{cell.cell_id}.npz").exists()

        summary = run_cell(
            spec, cell, interrupted_dir, config=_config(), checkpoint_every=2
        )
        assert summary["resumed_from_epoch"] == 2
        assert summary["status"] == "complete"
        assert not ckpt.exists(), "completion must delete the checkpoint"
        self._assert_same_columns(
            reference_dir / f"{cell.cell_id}.npz",
            interrupted_dir / f"{cell.cell_id}.npz",
        )

    def test_runner_threads_checkpoint_every(self, tmp_path):
        """A runner with ``checkpoint_every`` picks up a mid-cell
        checkpoint left by an interrupted run of the same directory."""
        from repro.fleet import run_cell

        spec = self._one_cell_spec()
        cell = spec.cells()[0]
        campaign_dir = tmp_path / "campaign"
        with pytest.raises(RuntimeError, match="test hook"):
            run_cell(
                spec,
                cell,
                campaign_dir,
                config=_config(),
                checkpoint_every=2,
                _fail_after_epochs=3,
            )
        runner = CampaignRunner(
            spec, campaign_dir, config=_config(), checkpoint_every=2
        )
        summaries = runner.run()
        assert summaries[0]["resumed_from_epoch"] == 2
        assert not (campaign_dir / f"{cell.cell_id}.ckpt").exists()

    def test_corrupt_checkpoint_restarts_fresh(self, tmp_path):
        from repro.fleet import run_cell

        spec = self._one_cell_spec()
        cell = spec.cells()[0]
        tmp_path.mkdir(exist_ok=True)
        ckpt = tmp_path / f"{cell.cell_id}.ckpt"
        ckpt.write_bytes(b"not a checkpoint")
        summary = run_cell(
            spec, cell, tmp_path, config=_config(), checkpoint_every=2
        )
        assert "resumed_from_epoch" not in summary
        assert not ckpt.exists()
        validate_cell_npz(tmp_path / f"{cell.cell_id}.npz")

    def test_foreign_checkpoint_discarded(self, tmp_path):
        """A checkpoint belonging to a different cell (or epoch budget)
        must not poison the cell: it is deleted and the cell restarts."""
        from repro.fleet import run_cell

        spec = self._one_cell_spec()
        cell = spec.cells()[0]
        donor_dir = tmp_path / "donor"
        with pytest.raises(RuntimeError, match="test hook"):
            run_cell(
                spec,
                cell,
                donor_dir,
                config=_config(),
                checkpoint_every=2,
                _fail_after_epochs=3,
            )
        # Same fleet bytes, wrong cell: a longer-budget spec's cell.
        longer = _tiny_spec(
            epochs=8, churn_rates=(0.1,), interference_mixes=("memory",)
        )
        target = longer.cells()[0]
        target_dir = tmp_path / "target"
        target_dir.mkdir()
        ckpt = target_dir / f"{target.cell_id}.ckpt"
        ckpt.write_bytes((donor_dir / f"{cell.cell_id}.ckpt").read_bytes())
        summary = run_cell(
            longer, target, target_dir, config=_config(), checkpoint_every=2
        )
        assert "resumed_from_epoch" not in summary
        assert not ckpt.exists()

    def test_checkpoint_every_validated(self, tmp_path):
        from repro.fleet import run_cell

        spec = self._one_cell_spec()
        with pytest.raises(ValueError, match="checkpoint_every"):
            run_cell(
                spec, spec.cells()[0], tmp_path, config=_config(),
                checkpoint_every=0,
            )
        with pytest.raises(ValueError, match="checkpoint_every"):
            CampaignRunner(spec, tmp_path, checkpoint_every=0)


class TestCellProcesses:
    def test_parallel_cells_match_serial(self, tmp_path):
        """Cells dispatched to spawned workers leave identical decision
        columns (cells are deterministic; scheduling is irrelevant)."""
        spec = _tiny_spec(churn_rates=(0.0,))
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        CampaignRunner(spec, serial_dir, config=_config()).run()
        CampaignRunner(
            spec, parallel_dir, config=_config(), cell_processes=2
        ).run()
        for cell in spec.cells():
            a = validate_cell_npz(serial_dir / f"{cell.cell_id}.npz")
            b = validate_cell_npz(parallel_dir / f"{cell.cell_id}.npz")
            for name in ("action_counts", "observations", "confirmed"):
                assert np.array_equal(a[name], b[name]), (cell.cell_id, name)
