"""Region-layer unit tests: construction, budgets, roll-ups.

The bit-identity of hierarchical runs is pinned by
``tests/property/test_region_equivalence.py``; these tests cover the
construction contracts (unique ids, contiguous partitioning, per-region
worker budgets, lifecycle validation) and the
:meth:`~repro.fleet.fleet.FleetRunSummary.merge` roll-up semantics.
"""

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetEpochReport,
    FleetRunSummary,
    HostDrain,
    Region,
    RegionalFleet,
    build_fleet,
    build_regional_fleet,
    churn_timeline,
    partition_regions,
    synthesize_datacenter,
)


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _flat(num_shards=4, num_vms=16, timeline=None):
    scenario = synthesize_datacenter(
        num_vms, num_shards=num_shards, seed=11, timeline=timeline
    )
    return build_fleet(scenario, config=_config())


class TestRegionConstruction:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            Region(region_id="r0", shards=[])

    def test_empty_regional_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one region"):
            RegionalFleet([])

    def test_duplicate_region_id_rejected(self):
        shards = list(_flat().shards.values())
        with pytest.raises(ValueError, match="duplicate region id"):
            RegionalFleet(
                [
                    Region("r0", shards[:2]),
                    Region("r0", shards[2:]),
                ]
            )

    def test_shard_in_two_regions_rejected(self):
        shards = list(_flat().shards.values())
        with pytest.raises(ValueError, match="appears in regions"):
            RegionalFleet(
                [
                    Region("r0", shards[:3]),
                    Region("r1", shards[2:]),
                ]
            )

    def test_from_fleet_adopts_shards(self):
        flat = _flat(num_shards=2)
        region = Region.from_fleet("adopted", flat, max_workers=3)
        assert [s.shard_id for s in region.shards] == list(flat.shards)
        assert region.max_workers == 3

    def test_contiguous_balanced_partition(self):
        shards = list(_flat(num_shards=4).shards.values())
        regions = partition_regions(shards, 3)
        sizes = [len(r.shards) for r in regions]
        assert sizes == [2, 1, 1]
        flattened = [s.shard_id for r in regions for s in r.shards]
        assert flattened == [s.shard_id for s in shards]

    def test_partition_caps_at_shard_count(self):
        shards = list(_flat(num_shards=2).shards.values())
        regions = partition_regions(shards, 5)
        assert len(regions) == 2

    def test_lifecycle_validated_against_full_topology(self):
        timeline = churn_timeline(["shard0"], epochs=4, seed=1)
        timeline.add(HostDrain(epoch=1, shard="shard0", host="nonexistent"))
        scenario = synthesize_datacenter(
            8, num_shards=2, seed=11, timeline=timeline
        )
        with pytest.raises(ValueError, match="unknown host"):
            build_regional_fleet(scenario, num_regions=2, config=_config())


class TestWorkerBudgets:
    def test_per_region_budget_overrides_default(self):
        shards = list(_flat(num_shards=4).shards.values())
        fleet = RegionalFleet(
            [
                Region("r0", shards[:2], max_workers=4),
                Region("r1", shards[2:]),
            ],
            max_workers=2,
            executor="thread",
        )
        assert fleet.fleets["r0"].max_workers == 4
        assert fleet.fleets["r1"].max_workers == 2

    def test_executor_propagates_to_every_region(self):
        fleet = build_regional_fleet(
            synthesize_datacenter(8, num_shards=2, seed=11),
            num_regions=2,
            config=_config(),
            executor="thread",
            region_workers=2,
        )
        assert fleet.executor == "thread"
        assert all(f.executor == "thread" for f in fleet.fleets.values())

    def test_default_executor_inferred_from_budget(self):
        shards = list(_flat(num_shards=2).shards.values())
        serial = RegionalFleet([Region("r0", shards)])
        assert serial.executor == "serial"
        threaded = RegionalFleet(
            [Region("r0", list(_flat(num_shards=2).shards.values()))],
            max_workers=2,
        )
        assert threaded.executor == "thread"


class TestAggregation:
    def test_stats_includes_region_count(self):
        fleet = build_regional_fleet(
            synthesize_datacenter(8, num_shards=2, seed=11),
            num_regions=2,
            config=_config(),
        )
        stats = fleet.stats()
        assert stats["regions"] == 2.0
        assert stats["shards"] == 2.0
        assert stats["vms"] == 8.0

    def test_schedule_partitioned_by_shard_ownership(self):
        from repro.fleet import InterferenceEpisode

        scenario = synthesize_datacenter(
            8,
            num_shards=2,
            seed=11,
            episodes=[
                InterferenceEpisode(
                    shard=1, host_index=0, start_epoch=0, end_epoch=2
                )
            ],
        )
        fleet = build_regional_fleet(scenario, num_regions=2, config=_config())
        assert fleet.fleets["region0"].schedule == []
        assert [s.shard_id for s in fleet.fleets["region1"].schedule] == ["shard1"]


class TestSummaryMerge:
    def _summary(self, epochs=2, observations=5, shard_id="shard0"):
        summary = FleetRunSummary(
            epochs=epochs,
            observations=observations,
            analyzer_invocations=1,
            confirmed_interference=1,
            action_histogram={"normal": observations - 1, "analyze": 1},
            final_report=FleetEpochReport(
                epoch=epochs - 1, shard_reports={shard_id: object()}
            ),
        )
        return summary

    def test_merge_requires_summaries(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetRunSummary.merge([])

    def test_merge_rejects_mismatched_epochs(self):
        with pytest.raises(ValueError, match="different epoch counts"):
            FleetRunSummary.merge([self._summary(epochs=2), self._summary(epochs=3)])

    def test_merge_rejects_overlapping_shards(self):
        with pytest.raises(ValueError, match="more than one summary"):
            FleetRunSummary.merge([self._summary(), self._summary()])

    def test_merge_adds_counters_and_concatenates_reports(self):
        merged = FleetRunSummary.merge(
            [
                self._summary(observations=5, shard_id="shard0"),
                self._summary(observations=7, shard_id="shard1"),
            ]
        )
        assert merged.epochs == 2
        assert merged.observations == 12
        assert merged.confirmed_interference == 2
        assert merged.action_histogram == {"normal": 10, "analyze": 2}
        assert list(merged.final_report.shard_reports) == ["shard0", "shard1"]
