"""Unit suite for the fleet telemetry bus and its exporters.

Covers the registry mechanics (span rings, counters, sampling,
wraparound), the three exporters (Prometheus text, Chrome trace JSON,
rotating JSONL event log), carried-total persistence across
``snapshot()``/``resume()`` (Prometheus monotonicity), and the
``resolve_telemetry`` normalisation used by every fleet constructor.
"""

import json

import pytest

from repro.fleet import (
    COUNTER_NAMES,
    SPAN_KINDS,
    Fleet,
    FleetDashboard,
    TelemetryConfig,
    TelemetryRegistry,
    build_fleet,
    resolve_telemetry,
    synthesize_datacenter,
)
from repro.fleet.telemetry import (
    C_EPOCHS,
    C_VM_EPOCHS,
    WorkerSpanBuffer,
    _escape_label,
)


def _registry(**overrides) -> TelemetryRegistry:
    return TelemetryRegistry(TelemetryConfig(**overrides))


def _small_fleet(telemetry=None):
    scenario = synthesize_datacenter(8, num_shards=2, seed=5, episodes=[])
    fleet = build_fleet(scenario, telemetry=telemetry)
    fleet.bootstrap()
    return fleet


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_span_records_kind_epoch_pid(self):
        registry = _registry()
        with registry.span("simulate", epoch=3):
            pass
        (span,) = registry.spans()
        assert span["kind"] == "simulate"
        assert span["epoch"] == 3
        assert span["pid"] == registry._pid
        assert span["duration"] >= 0

    def test_counters_addressed_by_constant(self):
        registry = _registry()
        registry.inc(C_EPOCHS)
        registry.inc(C_VM_EPOCHS, 500)
        assert registry.counter("epochs_total") == 1
        assert registry.counter("vm_epochs_total") == 500

    def test_deep_sampling_cadence(self):
        registry = _registry(profile_every=3)
        sampled = [e for e in range(9) if registry.deep(e) is not None]
        assert sampled == [0, 3, 6]
        always = _registry(profile_every=1)
        assert all(always.deep(e) is always for e in range(5))

    def test_ring_wraparound_counts_drops_keeps_totals(self):
        registry = _registry(span_capacity=4)
        for epoch in range(6):
            with registry.span("epoch", epoch):
                pass
        assert registry.counter("spans_dropped_total") == 2
        assert len(registry.spans()) == 4  # newest survive
        assert [s["epoch"] for s in registry.spans()] == [2, 3, 4, 5]
        # Carried totals are unaffected by ring eviction.
        assert registry.span_totals()["epoch"]["count"] == 6

    def test_record_span_and_fold_worker_spans(self):
        registry = _registry()
        registry.record_span("cell", 1.0, 2.5, epoch=7)
        registry.fold_worker_spans([(1, 0.5, 0.25, 4)], pid=12345)
        spans = registry.spans()
        assert {s["kind"] for s in spans} == {"cell", "simulate"}
        worker = next(s for s in spans if s["kind"] == "simulate")
        assert worker["pid"] == 12345 and worker["epoch"] == 4

    def test_worker_span_buffer_drains(self):
        buffer = WorkerSpanBuffer(profile_every=2)
        assert buffer.deep(1) is None and buffer.deep(2) is buffer
        with buffer.span("monitor", epoch=2):
            pass
        records = buffer.drain()
        assert len(records) == 1
        code, start, dur, epoch = records[0]
        assert SPAN_KINDS[code] == "monitor" and epoch == 2 and dur >= 0
        assert buffer.drain() == ()  # drained clean

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(profile_every=0)
        with pytest.raises(ValueError):
            TelemetryConfig(span_capacity=0)
        with pytest.raises(ValueError):
            TelemetryConfig(jsonl_rotate_bytes=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_PROFILE", raising=False)
        assert TelemetryConfig.from_env() is None
        monkeypatch.setenv("REPRO_FLEET_PROFILE", "0")
        assert TelemetryConfig.from_env() is None
        monkeypatch.setenv("REPRO_FLEET_PROFILE", "1")
        assert TelemetryConfig.from_env() == TelemetryConfig(
            enabled=True, profile_every=1
        )
        monkeypatch.setenv("REPRO_FLEET_PROFILE", "5")
        assert TelemetryConfig.from_env().profile_every == 5

    def test_resolve_telemetry(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_PROFILE", raising=False)
        assert resolve_telemetry(None) is None
        assert resolve_telemetry(TelemetryConfig(enabled=False)) is None
        registry = _registry()
        assert resolve_telemetry(registry) is registry
        fresh = resolve_telemetry(TelemetryConfig())
        assert isinstance(fresh, TelemetryRegistry)
        with pytest.raises(TypeError):
            resolve_telemetry("yes")
        monkeypatch.setenv("REPRO_FLEET_PROFILE", "2")
        from_env = resolve_telemetry(None)
        assert from_env is not None and from_env.config.profile_every == 2


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestPrometheus:
    def test_catalog_and_span_series_present(self):
        registry = _registry()
        registry.inc(C_EPOCHS, 3)
        with registry.span("merge", 1):
            pass
        text = registry.render_prometheus()
        for name in COUNTER_NAMES:
            assert f"# TYPE fleet_{name} counter" in text
        assert "fleet_epochs_total 3" in text
        assert 'fleet_spans_total{kind="merge"} 1' in text
        assert 'fleet_span_seconds_total{kind="merge"}' in text
        # Every non-comment line is "name[{labels}] value".
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            metric, value = line.rsplit(" ", 1)
            assert metric and float(value) >= 0

    def test_gauge_names_sanitised(self):
        registry = _registry()
        registry.set_gauge("mem/used.bytes", 12.5)
        text = registry.render_prometheus()
        assert "fleet_mem_used_bytes 12.5" in text

    def test_label_escaping(self):
        assert _escape_label('a"b') == 'a\\"b'
        assert _escape_label("a\\b") == "a\\\\b"
        assert _escape_label("a\nb") == "a\\nb"

    def test_monotone_across_snapshot_resume(self, tmp_path):
        fleet = _small_fleet(TelemetryConfig(enabled=True))
        fleet.run(3, analyze=False)
        before = fleet.telemetry.counter("epochs_total")
        seconds_before = fleet.telemetry.span_totals()["epoch"]["seconds"]
        checkpoint = fleet.snapshot(tmp_path / "fleet.ckpt")
        assert checkpoint.meta["has_telemetry"] is True
        fleet.shutdown()

        resumed = Fleet.resume(tmp_path / "fleet.ckpt")
        assert resumed.telemetry is not None
        # Carried totals arrive before any new epoch runs.
        assert resumed.telemetry.counter("epochs_total") == before
        assert resumed.telemetry.counter("snapshots_total") == 1
        resumed.run(2, analyze=False)
        resumed.shutdown()
        assert resumed.telemetry.counter("epochs_total") == before + 2
        assert (
            resumed.telemetry.span_totals()["epoch"]["seconds"]
            > seconds_before
        )
        text = resumed.telemetry.render_prometheus()
        assert f"fleet_epochs_total {before + 2}" in text

    def test_resume_telemetry_override(self, tmp_path):
        fleet = _small_fleet(TelemetryConfig(enabled=True))
        fleet.run(2, analyze=False)
        fleet.snapshot(tmp_path / "fleet.ckpt")
        fleet.shutdown()
        # An explicit disabled config switches telemetry off on resume.
        quiet = Fleet.resume(
            tmp_path / "fleet.ckpt", telemetry=TelemetryConfig(enabled=False)
        )
        assert quiet.telemetry is None
        quiet.shutdown()

    def test_untelemetered_snapshot_resumes_untelemetered(self, tmp_path):
        fleet = _small_fleet()
        fleet.run(2, analyze=False)
        checkpoint = fleet.snapshot(tmp_path / "fleet.ckpt")
        assert checkpoint.meta["has_telemetry"] is False
        fleet.shutdown()
        resumed = Fleet.resume(tmp_path / "fleet.ckpt")
        assert resumed.telemetry is None
        resumed.shutdown()


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------
class TestChromeTrace:
    def test_schema_and_worker_tracks(self, tmp_path):
        registry = _registry()
        with registry.span("epoch", 0):
            with registry.span("dispatch", 0):
                pass
        registry.fold_worker_spans(
            [(SPAN_KINDS.index("simulate"), 0.1, 0.05, 0)], pid=4242
        )
        path = registry.export_chrome_trace(tmp_path / "run.trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"epoch", "dispatch", "simulate"}
        for event in complete:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert event["dur"] >= 0 and "epoch" in event["args"]
        metadata = {
            e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert metadata[4242] == "fleet worker 4242"
        assert metadata[registry._pid] == "fleet parent"
        assert "timestamp_utc" in payload["otherData"]

    def test_trace_loads_as_json_after_fleet_run(self, tmp_path):
        fleet = _small_fleet(TelemetryConfig(enabled=True))
        fleet.run(2, analyze=False)
        fleet.shutdown()
        path = fleet.telemetry.export_chrome_trace(tmp_path / "t.json")
        payload = json.loads(path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"epoch", "simulate", "monitor"} <= names


# ---------------------------------------------------------------------------
# JSONL event log
# ---------------------------------------------------------------------------
class TestJsonlLog:
    def test_events_append_as_json_lines(self, tmp_path):
        log = tmp_path / "events.jsonl"
        registry = _registry(jsonl_path=str(log))
        registry.log_event("snapshot", epoch=4)
        registry.log_event("worker_restarted", worker=1, epoch=5)
        registry.close()
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert [r["event"] for r in records] == ["snapshot", "worker_restarted"]
        assert records[1]["worker"] == 1
        assert all("time_unix" in r for r in records)

    def test_rotation_at_size_threshold(self, tmp_path):
        log = tmp_path / "events.jsonl"
        registry = _registry(jsonl_path=str(log), jsonl_rotate_bytes=200)
        for i in range(20):
            registry.log_event("tick", index=i, padding="x" * 40)
        registry.log_event("final")  # reopens the active file post-rotation
        registry.close()
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.exists(), "log should have rotated"
        assert log.stat().st_size < 200 + 100
        # Both generations stay line-parseable.
        for path in (log, rotated):
            for line in path.read_text().splitlines():
                json.loads(line)

    def test_disabled_or_unconfigured_logs_nothing(self, tmp_path):
        registry = _registry()  # no jsonl_path
        registry.log_event("snapshot", epoch=1)
        registry.close()
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Dashboard integration
# ---------------------------------------------------------------------------
class TestDashboardTelemetry:
    def test_watch_prefers_span_durations(self):
        fleet = _small_fleet(TelemetryConfig(enabled=True))
        dashboard = FleetDashboard(fleet)
        for _ in dashboard.watch(3):
            pass
        fleet.shutdown()
        doc = dashboard.snapshot()
        assert (
            doc["throughput"]["last_epoch_seconds"]
            == fleet.telemetry.last_epoch_duration
        )

    def test_render_prometheus_refreshes_gauges(self):
        fleet = _small_fleet(TelemetryConfig(enabled=True))
        dashboard = FleetDashboard(fleet)
        for _ in dashboard.watch(2):
            pass
        fleet.shutdown()
        text = dashboard.render_prometheus()
        assert "fleet_epochs_total 2" in text
        assert "fleet_vms " in text  # stats() gauge
        assert "fleet_dashboard_epochs_observed 2" in text

    def test_render_prometheus_without_telemetry(self):
        fleet = _small_fleet()
        dashboard = FleetDashboard(fleet)
        fleet.shutdown()
        assert dashboard.render_prometheus() == "# telemetry disabled\n"
