"""Unit coverage for ``Fleet.run(keep_reports=False)`` and host trimming.

The epoch-summary merge (``FleetRunSummary.accumulate``) and the
per-host ``history_limit`` trimming are the two pieces that keep long
fleet runs constant-memory; both get direct coverage here, smaller and
more targeted than the integration suite.
"""

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetRunSummary,
    InterferenceEpisode,
    build_fleet,
    synthesize_datacenter,
)


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _build(history_limit=64, episodes=(), num_vms=16, bootstrap=True):
    scenario = synthesize_datacenter(
        num_vms, num_shards=2, seed=17, episodes=list(episodes)
    )
    fleet = build_fleet(
        scenario,
        config=_config(),
        engine="batch",
        mitigate=False,
        substrate="batch",
        history_limit=history_limit,
    )
    if bootstrap:
        fleet.bootstrap()
    return fleet


class TestRunSummaryMerge:
    EPISODES = (
        InterferenceEpisode(
            shard=0, host_index=0, start_epoch=2, end_epoch=5, kind="memory"
        ),
    )

    def test_summary_counts_match_report_list(self):
        """Two identically seeded fleets: the summary's running totals
        must equal the fold of the full report list."""
        listed = _build(episodes=self.EPISODES)
        summarized = _build(episodes=self.EPISODES)
        reports = listed.run(7, analyze=True)
        summary = summarized.run(7, analyze=True, keep_reports=False)
        assert isinstance(summary, FleetRunSummary)
        assert summary.epochs == len(reports) == 7
        assert summary.observations == sum(r.observations() for r in reports)
        assert summary.analyzer_invocations == sum(
            r.analyzer_invocations() for r in reports
        )
        assert summary.confirmed_interference == sum(
            len(r.confirmed_interference()) for r in reports
        )
        expected = {}
        for report in reports:
            for action, count in report.action_histogram().items():
                expected[action] = expected.get(action, 0) + count
        assert summary.action_histogram == expected
        assert summary.observations > 0

    def test_final_report_is_last_epoch_snapshot(self):
        fleet = _build()
        summary = fleet.run(4, analyze=False, keep_reports=False)
        assert summary.final_report is not None
        assert summary.final_report.epoch == 3
        # The snapshot is a full report: per-VM observations retained.
        assert summary.final_report.observations()
        for shard_report in summary.final_report.shard_reports.values():
            assert shard_report.observations

    def test_zero_epoch_run_returns_empty_summary(self):
        fleet = _build(bootstrap=False)
        summary = fleet.run(0, keep_reports=False)
        assert summary.epochs == 0
        assert summary.observations == 0
        assert summary.action_histogram == {}
        assert summary.final_report is None

    def test_accumulate_folds_reports(self):
        """Direct unit check of the fold itself."""
        fleet = _build()
        summary = FleetRunSummary()
        r1 = fleet.run_epoch(analyze=False)
        r2 = fleet.run_epoch(analyze=False)
        summary.accumulate(r1)
        summary.accumulate(r2)
        assert summary.epochs == 2
        assert summary.observations == r1.observations() + r2.observations()
        assert summary.final_report is r2


class TestHistoryTrimming:
    def test_histories_trimmed_to_limit(self):
        """Per-VM counter histories stay within 2x the limit and hold
        exactly the most recent epochs after a trim."""
        fleet = _build(history_limit=4)
        epochs = 11
        fleet.run(epochs, analyze=False, keep_reports=False)
        for shard in fleet.shards.values():
            for host in shard.cluster.hosts.values():
                assert host.history_limit == 4
                for history in host.counter_history.values():
                    assert len(history) <= 2 * 4
        # One more epoch is observable only through the retained window.
        report = fleet.run_epoch(analyze=False)
        assert report.epoch == epochs

    def test_trim_keeps_most_recent_samples(self):
        """The amortised trim drops the oldest epochs, never the newest."""
        fleet = _build(history_limit=3)
        shard = next(iter(fleet.shards.values()))
        host = next(
            h for h in shard.cluster.hosts.values() if h.counter_history
        )
        vm_name = next(iter(host.counter_history))
        seen = []
        for _ in range(9):
            fleet.run_epoch(analyze=False)
            seen.append(host.counter_history[vm_name][-1])
        history = host.counter_history[vm_name]
        assert len(history) <= 6
        assert history[-len(history):] == seen[-len(history):]

    def test_unlimited_history_retains_everything(self):
        fleet = _build(history_limit=None)
        fleet.run(6, analyze=False, keep_reports=False)
        for shard in fleet.shards.values():
            for host in shard.cluster.hosts.values():
                for history in host.counter_history.values():
                    assert len(history) == 6

    def test_invalid_history_limit_rejected(self):
        from repro.virt.vmm import Host

        with pytest.raises(ValueError):
            Host(history_limit=0)
