"""The live ops dashboard: telemetry folding, rendering, alerts.

The dashboard is a pure stream consumer — it must track totals
correctly off both report kinds, degrade gracefully when the fleet can
no longer answer statistics, raise the documented health alerts, and
emit a JSON-serialisable snapshot.
"""

import json

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetDashboard,
    HostDrain,
    RunOptions,
    build_fleet,
    build_regional_fleet,
    churn_timeline,
    synthesize_datacenter,
)


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _fleet(executor=None, max_workers=None, regional=False, timeline=None):
    scenario = synthesize_datacenter(16, num_shards=2, seed=23, timeline=timeline)
    if regional:
        fleet = build_regional_fleet(
            scenario,
            num_regions=2,
            config=_config(),
            executor=executor,
            region_workers=max_workers,
        )
    else:
        fleet = build_fleet(
            scenario, config=_config(), executor=executor, max_workers=max_workers
        )
    fleet.bootstrap()
    return fleet


class TestObserve:
    def test_watch_folds_each_epoch(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:
            reports = list(dashboard.watch(3, RunOptions(analyze=False)))
        finally:
            fleet.shutdown()
        assert len(reports) == 3
        assert dashboard.epochs_observed == 3
        assert dashboard.total_observations == sum(
            r.observations() for r in reports
        )
        doc = dashboard.snapshot()
        assert doc["epoch"] == 3
        assert doc["throughput"]["last_epoch_seconds"] is not None
        assert doc["throughput"]["vm_epochs_per_second"] > 0

    def test_columnar_and_full_reports_feed_alike(self):
        """Under process+auto the stream mixes columnar and full epochs;
        the dashboard's totals must not care."""
        fleet = _fleet(executor="process", max_workers=2)
        dashboard = FleetDashboard(fleet)
        try:
            list(dashboard.watch(3, RunOptions(analyze=False)))
        finally:
            fleet.shutdown()
        assert dashboard.epochs_observed == 3
        assert dashboard.total_observations == 3 * 16

    def test_regional_fleet_gets_region_rows(self):
        fleet = _fleet(regional=True)
        dashboard = FleetDashboard(fleet)
        try:
            list(dashboard.watch(2, RunOptions(analyze=False)))
        finally:
            fleet.shutdown()
        doc = dashboard.snapshot()
        assert set(doc["per_region"]) == {"region0", "region1"}
        region_obs = sum(
            numbers["observations"] for numbers in doc["per_region"].values()
        )
        shard_obs = sum(
            numbers["observations"] for numbers in doc["per_shard"].values()
        )
        assert region_obs == shard_obs > 0

    def test_flat_fleet_has_no_region_rows(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        fleet.shutdown()
        assert dashboard.snapshot()["per_region"] is None

    def test_window_bounds_memory(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet, window=2)
        try:
            list(dashboard.watch(4, RunOptions(analyze=False)))
        finally:
            fleet.shutdown()
        assert len(dashboard._epoch_seconds) == 2

    def test_invalid_window_rejected(self):
        fleet = _fleet()
        try:
            with pytest.raises(ValueError, match="window"):
                FleetDashboard(fleet, window=0)
        finally:
            fleet.shutdown()


class TestAlerts:
    def test_healthy_fleet_has_no_alerts(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:
            list(dashboard.watch(2, RunOptions(analyze=False)))
            assert dashboard.alerts() == []
        finally:
            fleet.shutdown()

    def test_slo_violation_alerts_and_counts(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet, slo_epoch_seconds=0.0)
        try:
            list(dashboard.watch(2, RunOptions(analyze=False)))
        finally:
            fleet.shutdown()
        assert dashboard.slo_violations == 2
        assert any("SLO" in alert for alert in dashboard.alerts())

    def test_active_drain_alerts(self):
        timeline = churn_timeline(
            ["shard0", "shard1"],
            epochs=4,
            seed=5,
            arrivals_per_epoch=0.5,
            mean_lifetime_epochs=50.0,
        )
        timeline.add(HostDrain(epoch=1, shard="shard0", host="s0pm1"))
        fleet = _fleet(timeline=timeline)
        dashboard = FleetDashboard(fleet)
        try:
            list(dashboard.watch(3, RunOptions(analyze=False)))
            alerts = dashboard.alerts()
        finally:
            fleet.shutdown()
        assert any("draining" in alert for alert in alerts)

    def test_stats_failure_degrades_to_alert(self, monkeypatch):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:
            list(dashboard.watch(2, RunOptions(analyze=False)))
        finally:
            fleet.shutdown()

        def broken():
            raise RuntimeError("workers are gone")

        monkeypatch.setattr(fleet, "stats", broken)
        doc = dashboard.snapshot()
        assert doc["stats"] is None
        assert any("stats unavailable" in alert for alert in doc["alerts"])


def _health_row(worker, **overrides):
    row = {
        "worker": worker,
        "shards": [f"shard{worker}"],
        "pid": 4000 + worker,
        "restarts": 0,
        "last_heartbeat_age_seconds": 0.5,
        "last_epoch": 3,
        "quarantined": False,
        "alive": True,
    }
    row.update(overrides)
    return row


class TestWorkerHealthPanel:
    """PR 9: the dashboard surfaces the supervisor's per-worker health
    (pids, restarts, heartbeat age, quarantine) and raises the
    ``WORKER_RESTARTED`` / ``SHARDS_QUARANTINED`` alerts."""

    def test_live_process_fleet_populates_worker_rows(self):
        fleet = _fleet(executor="process", max_workers=2)
        dashboard = FleetDashboard(fleet)
        try:
            list(dashboard.watch(2, RunOptions(analyze=False)))
            doc = dashboard.snapshot()
        finally:
            fleet.shutdown()
        assert [row["worker"] for row in doc["workers"]] == [0, 1]
        for row in doc["workers"]:
            assert row["alive"] and not row["quarantined"]
            assert row["restarts"] == 0
            assert isinstance(row["pid"], int)
        assert not any("WORKER" in a or "QUARANTINED" in a for a in doc["alerts"])
        json.dumps(doc)  # the panel must stay scrape-able

    def test_restarts_raise_the_worker_restarted_alert(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:
            fleet.worker_health = lambda: [
                _health_row(0, restarts=2),
                _health_row(1),
                _health_row(2, restarts=1),
            ]
            alerts = dashboard.alerts()
        finally:
            fleet.shutdown()
        assert alerts == [
            "WORKER_RESTARTED: 3 restart(s) across worker(s) 0, 2"
        ]

    def test_quarantine_raises_the_shards_quarantined_alert(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:
            fleet.worker_health = lambda: [
                _health_row(0),
                _health_row(
                    1,
                    quarantined=True,
                    alive=False,
                    shards=["shard1", "shard3"],
                ),
            ]
            alerts = dashboard.alerts()
        finally:
            fleet.shutdown()
        assert alerts == [
            "SHARDS_QUARANTINED: 2 shard(s) excluded (worker(s) 1); "
            "the run is degraded"
        ]

    def test_render_shows_the_worker_panel_states(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:
            fleet.worker_health = lambda: [
                _health_row(0, restarts=1),
                _health_row(1, quarantined=True, alive=False),
                _health_row(2, region="region1", alive=False),
            ]
            text = dashboard.render()
        finally:
            fleet.shutdown()
        assert "worker" in text and "beat age" in text
        assert "quarantined" in text
        assert "region1/2" in text
        assert "dead" in text
        assert "ALERT: WORKER_RESTARTED" in text
        assert "ALERT: SHARDS_QUARANTINED" in text

    def test_unanswerable_health_degrades_to_an_empty_panel(self):
        """A fleet too broken to answer health questions must not take
        the dashboard down with it."""
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:

            def broken():
                raise RuntimeError("workers are gone")

            fleet.worker_health = broken
            doc = dashboard.snapshot()
        finally:
            fleet.shutdown()
        assert doc["workers"] == []
        assert not any("WORKER" in a for a in doc["alerts"])


class TestRendering:
    def test_snapshot_is_json_serialisable(self):
        fleet = _fleet(regional=True)
        dashboard = FleetDashboard(fleet, slo_epoch_seconds=1.0)
        try:
            list(dashboard.watch(2, RunOptions(analyze=False)))
            parsed = json.loads(dashboard.to_json())
        finally:
            fleet.shutdown()
        assert parsed["epochs_observed"] == 2
        assert parsed["slo"]["epoch_seconds"] == 1.0

    def test_render_mentions_the_essentials(self):
        fleet = _fleet()
        dashboard = FleetDashboard(fleet)
        try:
            list(dashboard.watch(2, RunOptions(analyze=False)))
            text = dashboard.render()
        finally:
            fleet.shutdown()
        assert "epoch 2" in text
        assert "totals:" in text
        assert "shard0" in text and "shard1" in text

    def test_render_before_any_epoch(self):
        fleet = _fleet()
        try:
            text = FleetDashboard(fleet).render()
            assert "epoch 0" in text
        finally:
            fleet.shutdown()
