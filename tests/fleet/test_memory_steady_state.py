"""Steady-state memory check for long fleet runs.

With the lazy counter store, ``Fleet.run(keep_reports=False)`` holds
O(window) memory: counter telemetry lives in fixed-size per-host rings,
histories trim to ``history_limit``, and no per-epoch Python objects
accumulate.  This test pins that property with ``tracemalloc`` at tiny
scale — once the rings are warm (capacity reached, first trims done),
additional epochs must not grow traced memory.
"""

import gc
import tracemalloc

from repro.core.config import DeepDiveConfig
from repro.fleet import build_fleet, synthesize_datacenter

#: Generous allowance for interpreter-level noise (code objects,
#: logging internals, dict resizes) across the measured epochs — far
#: below the footprint per-epoch sample materialisation would add.
MAX_GROWTH_BYTES = 96 * 1024


def _build():
    scenario = synthesize_datacenter(12, num_shards=2, seed=29)
    config = DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )
    return build_fleet(
        scenario,
        config=config,
        engine="batch",
        substrate="batch",
        history_limit=8,
        history_mode="lazy",
    )


def test_steady_state_memory_does_not_grow_with_epochs():
    fleet = _build()
    fleet.bootstrap()
    # Warm the rings past capacity (2 * history_limit epochs) so every
    # allocation steady state — ring buffers, caches, trims — is reached.
    fleet.run(20, analyze=False, keep_reports=False)

    gc.collect()
    tracemalloc.start()
    try:
        fleet.run(5, analyze=False, keep_reports=False)
        gc.collect()
        baseline, _ = tracemalloc.get_traced_memory()
        fleet.run(40, analyze=False, keep_reports=False)
        gc.collect()
        settled, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    growth = settled - baseline
    assert growth < MAX_GROWTH_BYTES, (
        f"steady-state fleet run grew traced memory by {growth} bytes "
        f"over 40 epochs (allowed {MAX_GROWTH_BYTES}); the epoch loop is "
        "accumulating per-epoch state"
    )

    # The histories really are bounded by the limit's sawtooth ceiling.
    for shard in fleet.shards.values():
        for host in shard.cluster.hosts.values():
            for history in host.counter_history.values():
                assert len(history) <= 2 * 8
