"""Unit coverage for the fleet lifecycle engine and timelines.

The property suite pins churn equivalence fleet-wide; this file covers
the pieces in isolation: timeline compilation and generators, the
interference-aware admission policy's rules (headroom, anti-affinity,
drain exclusion, the degradation bound, deterministic tie-breaks), the
documented in-epoch apply order, and the explicit :class:`ValueError`
contract for events referencing unknown shards/hosts/VMs.
"""

import pickle

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    AdmissionPolicy,
    DatacenterScenario,
    FleetTimeline,
    FlashCrowd,
    HostDrain,
    HostReturn,
    LoadPhase,
    VMArrival,
    VMDeparture,
    build_fleet,
    churn_timeline,
)
from repro.fleet.timeline import ARRIVAL_WORKLOADS
from repro.workloads.traces import LoadTrace


def _fast_config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=2,
        bootstrap_load_levels=2,
        bootstrap_epochs_per_level=2,
        min_normal_behaviors=8,
        placement_eval_epochs=2,
        smoothing_epochs=2,
    )


def _arrival(epoch, shard="shard0", name="newvm", kind="data_serving", **kw):
    return VMArrival(
        epoch=epoch,
        shard=shard,
        vm_name=name,
        workload=ARRIVAL_WORKLOADS[kind](seed=7),
        load=kw.pop("load", 0.5),
        **kw,
    )


def _fleet(timeline, admission=None, **kw):
    scenario = DatacenterScenario(
        num_shards=2,
        hosts_per_shard=3,
        spare_hosts_per_shard=1,
        vms_per_host=2,
        seed=11,
        timeline=timeline,
        admission=admission,
    )
    return build_fleet(scenario, config=_fast_config(), **kw)


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
class TestTimeline:
    def test_compile_groups_and_flash_edges(self):
        timeline = FleetTimeline()
        flash = FlashCrowd(epoch=2, shard="shard0", end_epoch=5, scale=1.5)
        timeline.extend(
            [
                _arrival(2, name="a"),
                VMDeparture(epoch=2, shard="shard0", vm_name="b"),
                flash,
                LoadPhase(epoch=2, shard="shard1", scale=0.8),
                HostDrain(epoch=2, shard="shard0", host="s0pm0"),
                HostReturn(epoch=5, shard="shard0", host="s0pm0"),
            ]
        )
        batches = timeline.compile()
        assert set(batches) == {2, 5}
        batch = batches[2]
        assert len(batch.arrivals) == len(batch.departures) == 1
        assert batch.flash_starts == (flash,)
        assert batches[5].flash_ends == (flash,)
        assert batches[5].returns[0].host == "s0pm0"
        assert timeline.horizon() == 6
        assert timeline.shard_ids() == ("shard0", "shard1")

    def test_subset_filters_by_shard(self):
        timeline = FleetTimeline(
            events=[
                _arrival(1, shard="shard0", name="a"),
                _arrival(1, shard="shard1", name="b"),
            ]
        )
        sub = timeline.subset(["shard1"])
        assert [event.vm_name for event in sub.events] == ["b"]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            VMArrival(
                epoch=-1,
                shard="s",
                vm_name="x",
                workload=ARRIVAL_WORKLOADS["web_search"](seed=0),
                load=0.5,
            )
        with pytest.raises(ValueError):
            _arrival(0, load=1.5)
        with pytest.raises(ValueError):
            FlashCrowd(epoch=3, shard="s", end_epoch=3, scale=1.2)
        with pytest.raises(ValueError):
            LoadPhase(epoch=0, shard="s", scale=0.0)

    def test_churn_timeline_deterministic_and_picklable(self):
        a = churn_timeline(["shard0"], epochs=30, seed=9)
        b = churn_timeline(["shard0"], epochs=30, seed=9)
        assert len(a) == len(b) > 0
        assert [repr(event) for event in a.events] == [
            repr(event) for event in b.events
        ]
        restored = pickle.loads(pickle.dumps(a))
        assert len(restored) == len(a)
        # Departures only ever reference VMs the timeline itself created.
        names = {e.vm_name for e in a.events if isinstance(e, VMArrival)}
        for event in a.events:
            if isinstance(event, VMDeparture):
                assert event.vm_name in names
                assert event.epoch < 30

    def test_from_trace_quantises_phases(self):
        trace = LoadTrace([0.4, 0.41, 0.42, 0.8, 0.8, 0.4])
        timeline = FleetTimeline.from_trace(
            trace, ["shard0"], reference=0.4, quantum=0.25
        )
        phases = [e for e in timeline.events if isinstance(e, LoadPhase)]
        # 1.0, 1.0, 1.0, 2.0, 2.0, 1.0 -> changes at epochs 0, 3, 5.
        assert [(p.epoch, p.scale) for p in phases] == [
            (0, 1.0),
            (3, 2.0),
            (5, 1.0),
        ]


# ----------------------------------------------------------------------
# Admission policy
# ----------------------------------------------------------------------
class TestAdmission:
    def test_arrival_lands_on_least_loaded_host(self):
        """With equal contention scores the tie breaks toward free
        vCPUs: the spare (empty) host wins."""
        timeline = FleetTimeline(events=[_arrival(0, name="tenant-a")])
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        cluster = fleet.shards["shard0"].cluster
        host = cluster.host_of("tenant-a")
        assert host == "s0pm3"  # the spare headroom host is empty
        assert fleet.shards["shard0"].baseline_loads["tenant-a"] == 0.5

    def test_admission_respects_drained_hosts(self):
        timeline = FleetTimeline(
            events=[
                HostDrain(epoch=0, shard="shard0", host="s0pm3"),
                _arrival(1, name="tenant-a"),
            ]
        )
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        fleet.run_epoch(analyze=False)
        cluster = fleet.shards["shard0"].cluster
        assert cluster.host_of("tenant-a") is not None
        assert cluster.host_of("tenant-a") != "s0pm3"

    def test_admission_respects_anti_affinity(self):
        """An analytics arrival never joins a host already running
        analytics, even when that host is otherwise the best ranked."""
        timeline = FleetTimeline(
            events=[_arrival(0, name="tenant-a", kind="data_analytics")]
        )
        fleet = _fleet(
            timeline,
            admission=AdmissionPolicy(anti_affinity=("data_analytics",)),
        )
        fleet.run_epoch(analyze=False)
        cluster = fleet.shards["shard0"].cluster
        host_name = cluster.host_of("tenant-a")
        assert host_name is not None
        host = cluster.hosts[host_name]
        kinds = [
            vm.app_id for vm in host.vms.values() if vm.name != "tenant-a"
        ]
        assert "data_analytics" not in kinds

    def test_admission_headroom_reserves_capacity(self):
        """headroom_vcpus shrinks every host's admissible capacity; an
        impossible reserve rejects the arrival instead of crashing."""
        timeline = FleetTimeline(events=[_arrival(0, name="tenant-a")])
        fleet = _fleet(
            timeline, admission=AdmissionPolicy(headroom_vcpus=64)
        )
        fleet.run_epoch(analyze=False)
        assert fleet.shards["shard0"].cluster.host_of("tenant-a") is None
        stats = fleet.lifecycle_stats()["shard0"]
        assert stats["arrivals_rejected"] == 1
        assert stats["arrivals_admitted"] == 0

    def test_rejected_arrival_departure_is_ignored(self):
        """churn_timeline schedules a departure for every arrival; when
        the arrival was rejected, that departure must be dropped (and
        counted), not crash as an unknown-VM error."""
        timeline = FleetTimeline(
            events=[
                _arrival(0, name="tenant-a"),
                VMDeparture(epoch=2, shard="shard0", vm_name="tenant-a"),
            ]
        )
        fleet = _fleet(
            timeline, admission=AdmissionPolicy(headroom_vcpus=64)
        )
        for _ in range(3):
            fleet.run_epoch(analyze=False)
        all_stats = fleet.lifecycle_stats()
        # One entry per shard, untouched shards all-zero (same shape as
        # the process executor's worker-collected stats).
        assert set(all_stats) == {"shard0", "shard1"}
        assert not any(all_stats["shard1"].values())
        stats = all_stats["shard0"]
        assert stats["arrivals_rejected"] == 1
        assert stats["departures_ignored"] == 1
        assert stats["departures"] == 0

    def test_pinned_arrival_bypasses_scoring(self):
        timeline = FleetTimeline(
            events=[_arrival(0, name="tenant-a", host="s0pm1")]
        )
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        assert fleet.shards["shard0"].cluster.host_of("tenant-a") == "s0pm1"

    def test_decision_log_built_on_placement_dataclasses(self):
        """record_decisions exposes the ranked candidate evaluations as
        core.placement PlacementDecision/CandidateEvaluation objects."""
        timeline = FleetTimeline(events=[_arrival(0, name="tenant-a")])
        fleet = _fleet(timeline)
        fleet.lifecycle.record_decisions = True
        fleet.run_epoch(analyze=False)
        assert len(fleet.lifecycle.decisions) == 1
        decision = fleet.lifecycle.decisions[0]
        assert decision.vm_name == "tenant-a"
        assert decision.destination is not None
        assert decision.evaluations, "candidates must be recorded"
        best = decision.best()
        assert best.score <= decision.evaluations[-1].score


# ----------------------------------------------------------------------
# Engine semantics
# ----------------------------------------------------------------------
class TestEngineSemantics:
    def test_record_decisions_warns_under_process_executor(self):
        """The decision log lives with the engine that ran — in the
        workers under the process strategy — so enabling it there must
        warn instead of silently yielding an empty log."""
        timeline = FleetTimeline(events=[_arrival(0, name="tenant-a")])
        fleet = _fleet(timeline, executor="process", max_workers=1)
        fleet.lifecycle.record_decisions = True
        try:
            with pytest.warns(RuntimeWarning, match="record_decisions"):
                fleet.run_epoch(analyze=False)
        finally:
            fleet.shutdown()

    def test_departure_removes_vm_and_load(self):
        fleet = _fleet(FleetTimeline())
        shard = fleet.shards["shard0"]
        victim = sorted(shard.baseline_loads)[0]
        timeline = FleetTimeline(
            events=[VMDeparture(epoch=1, shard="shard0", vm_name=victim)]
        )
        fleet = _fleet(timeline)
        shard = fleet.shards["shard0"]
        assert victim in shard.baseline_loads
        fleet.run_epoch(analyze=False)
        fleet.run_epoch(analyze=False)
        assert shard.cluster.host_of(victim) is None
        assert victim not in shard.baseline_loads
        # History survives departure on the last host.
        assert any(
            victim in host.counter_history and len(host.counter_history[victim])
            for host in shard.cluster.hosts.values()
        )

    def test_drain_waives_anti_affinity(self):
        """A maintenance evacuation is a forced move: when every
        candidate host already runs the VM's anti-affine kind, the VM
        still leaves the drained host (soft constraints are waived;
        only physical capacity strands)."""
        scenario = DatacenterScenario(
            num_shards=1,
            hosts_per_shard=2,
            spare_hosts_per_shard=0,
            vms_per_host=1,
            max_vms=0,  # topology only; tenants arrive via the timeline
            seed=3,
            timeline=FleetTimeline(
                events=[
                    _arrival(0, name="an-a", kind="data_analytics", host="s0pm0"),
                    _arrival(0, name="an-b", kind="data_analytics", host="s0pm1"),
                    HostDrain(epoch=1, shard="shard0", host="s0pm0"),
                ]
            ),
            admission=AdmissionPolicy(anti_affinity=("data_analytics",)),
        )
        fleet = build_fleet(scenario, config=_fast_config())
        fleet.run_epoch(analyze=False)
        fleet.run_epoch(analyze=False)
        cluster = fleet.shards["shard0"].cluster
        assert cluster.host_of("an-a") == "s0pm1", (
            "the drained host's analytics VM must co-locate rather than strand"
        )
        stats = fleet.lifecycle_stats()["shard0"]
        assert stats["drain_migrations"] == 1
        assert stats["drain_stranded"] == 0

    def test_drained_hosts_excluded_from_mitigation_migrations(self):
        """Drain state is cluster-level: DeepDive's own placement
        manager must not pick a drained host as a mitigation
        destination either."""
        from repro.core.analyzer import AnalysisResult, AnalysisVerdict
        from repro.core.placement import PlacementManager
        from repro.metrics.counters import CounterSample
        from repro.metrics.cpi import Resource
        from repro.virt.sandbox import SandboxEnvironment

        timeline = FleetTimeline(
            events=[HostDrain(epoch=0, shard="shard0", host="s0pm3")]
        )
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        shard = fleet.shards["shard0"]
        cluster = shard.cluster
        assert cluster.drained_hosts == {"s0pm3"}
        victim_host = "s0pm0"
        victim = sorted(cluster.hosts[victim_host].vms)[0]
        analysis = AnalysisResult(
            vm_name=victim,
            app_id=cluster.hosts[victim_host].get_vm(victim).app_id,
            verdict=AnalysisVerdict.INTERFERENCE,
            degradation=0.5,
            culprit=Resource.MEMORY_BUS,
            factors={},
            cpi_stack=None,
            production_counters=CounterSample.zeros(),
            isolation_counters=CounterSample.zeros(),
            sandbox_run=None,
            profiling_seconds=0.0,
        )
        manager = PlacementManager(
            sandbox=SandboxEnvironment(
                num_hosts=1, profile_epochs=2, noise=0.0, seed=8
            ),
            config=_fast_config(),
        )
        decision = manager.resolve_interference(
            cluster, analysis, victim_host, eval_epochs=1
        )
        assert decision is not None
        assert decision.destination != "s0pm3"
        assert all(
            e.host_name != "s0pm3" for e in decision.evaluations
        ), "the drained spare must not even be evaluated"

    def test_drain_evacuates_and_return_reopens(self):
        timeline = FleetTimeline(
            events=[
                HostDrain(epoch=1, shard="shard0", host="s0pm0"),
                HostReturn(epoch=3, shard="shard0", host="s0pm0"),
                _arrival(4, name="tenant-a", load=0.5),
            ]
        )
        fleet = _fleet(timeline)
        shard = fleet.shards["shard0"]
        resident_before = set(shard.cluster.hosts["s0pm0"].vms)
        assert resident_before
        for _ in range(5):
            fleet.run_epoch(analyze=False)
        # Evacuated through the existing migration path...
        assert not (
            resident_before & set(shard.cluster.hosts["s0pm0"].vms)
            - {"tenant-a"}
        )
        records = shard.cluster.migration_engine.history
        assert {r.vm_name for r in records} >= resident_before
        assert all(r.source == "s0pm0" for r in records)
        stats = fleet.lifecycle_stats()["shard0"]
        assert stats["drain_migrations"] == len(resident_before)
        assert stats["drains"] == stats["returns"] == 1

    def test_flash_crowd_scales_and_unwinds(self):
        timeline = FleetTimeline(
            events=[
                FlashCrowd(epoch=1, shard="shard0", end_epoch=3, scale=1.5)
            ]
        )
        fleet = _fleet(timeline)
        shard = fleet.shards["shard0"]
        before = dict(shard.baseline_loads)
        fleet.run_epoch(analyze=False)  # epoch 0: surge not started
        assert dict(shard.baseline_loads) == before
        fleet.run_epoch(analyze=False)  # epoch 1: surge on
        during = dict(shard.baseline_loads)
        for name, load in before.items():
            assert during[name] == pytest.approx(min(1.0, load * 1.5))
        fleet.run_epoch(analyze=False)  # epoch 2: still on
        fleet.run_epoch(analyze=False)  # epoch 3: surge unwound
        assert dict(shard.baseline_loads) == before

    def test_phase_applies_to_arrivals_too(self):
        timeline = FleetTimeline(
            events=[
                LoadPhase(epoch=0, shard="shard0", scale=0.5),
                _arrival(1, name="tenant-a", load=0.8),
            ]
        )
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        fleet.run_epoch(analyze=False)
        assert fleet.shards["shard0"].baseline_loads["tenant-a"] == 0.4


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
class TestErrorContract:
    def test_unknown_shard_rejected_at_build(self):
        timeline = FleetTimeline(events=[_arrival(1, shard="shard9")])
        with pytest.raises(ValueError, match=r"epoch 1.*unknown shard 'shard9'"):
            _fleet(timeline)

    def test_unknown_host_rejected_at_build(self):
        timeline = FleetTimeline(
            events=[HostDrain(epoch=2, shard="shard0", host="nosuchpm")]
        )
        with pytest.raises(
            ValueError, match=r"epoch 2.*unknown host 'nosuchpm'"
        ):
            _fleet(timeline)

    def test_unknown_vm_departure_raises_with_epoch_and_event(self):
        timeline = FleetTimeline(
            events=[VMDeparture(epoch=1, shard="shard0", vm_name="ghost")]
        )
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        with pytest.raises(
            ValueError, match=r"epoch 1.*unknown VM 'ghost'.*VMDeparture"
        ):
            fleet.run_epoch(analyze=False)

    def test_duplicate_arrival_name_raises(self):
        fleet = _fleet(FleetTimeline())
        existing = sorted(fleet.shards["shard0"].baseline_loads)[0]
        timeline = FleetTimeline(events=[_arrival(1, name=existing)])
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        with pytest.raises(ValueError, match="duplicates an existing"):
            fleet.run_epoch(analyze=False)

    def test_arrival_pinned_to_full_host_raises(self):
        timeline = FleetTimeline(
            events=[_arrival(1, name="bigvm", host="s0pm0", vcpus=32)]
        )
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        with pytest.raises(ValueError, match="cannot fit"):
            fleet.run_epoch(analyze=False)

    def test_arrival_pinned_to_drained_host_raises(self):
        timeline = FleetTimeline(
            events=[
                HostDrain(epoch=0, shard="shard0", host="s0pm1"),
                _arrival(1, name="tenant-a", host="s0pm1"),
            ]
        )
        fleet = _fleet(timeline)
        fleet.run_epoch(analyze=False)
        with pytest.raises(ValueError, match="drained"):
            fleet.run_epoch(analyze=False)
