"""The unified FleetRuntime surface: RunOptions, streaming, shims.

Pins the PR-8 API redesign: both fleet kinds satisfy the
:class:`~repro.fleet.FleetRuntime` protocol with identical signatures,
``stream`` is the lazy primitive ``run``/``run_epoch`` are built on,
typed :class:`~repro.fleet.RunOptions` replaces the keyword zoo, and
the legacy ``report=`` / ``keep_reports=`` keywords survive as
deprecation shims that produce byte-identical behaviour.
"""

import warnings

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    ColumnarFleetReport,
    Fleet,
    FleetEpochReport,
    FleetRuntime,
    FleetRunSummary,
    RegionalFleet,
    RunOptions,
    build_fleet,
    build_regional_fleet,
    synthesize_datacenter,
)


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _fleet(executor=None, max_workers=None, regional=False):
    scenario = synthesize_datacenter(16, num_shards=2, seed=23)
    if regional:
        fleet = build_regional_fleet(
            scenario,
            num_regions=2,
            config=_config(),
            executor=executor,
            region_workers=max_workers,
        )
    else:
        fleet = build_fleet(
            scenario, config=_config(), executor=executor, max_workers=max_workers
        )
    fleet.bootstrap()
    return fleet


class TestRunOptions:
    def test_defaults(self):
        options = RunOptions()
        assert options.analyze is True
        assert options.report == "auto"
        assert options.keep_reports is True

    def test_unknown_report_mode_rejected(self):
        with pytest.raises(ValueError, match="cinematic"):
            RunOptions(report="cinematic")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunOptions().analyze = False

    def test_options_and_legacy_keywords_conflict(self):
        fleet = _fleet()
        try:
            with pytest.raises(TypeError, match="not both"):
                fleet.run_epoch(RunOptions(), report="full")
            with pytest.raises(TypeError, match="not both"):
                fleet.run(1, RunOptions(), keep_reports=False)
        finally:
            fleet.shutdown()

    def test_non_runoptions_rejected(self):
        fleet = _fleet()
        try:
            with pytest.raises(TypeError, match="RunOptions"):
                fleet.run_epoch({"report": "full"})
        finally:
            fleet.shutdown()


class TestProtocol:
    @pytest.mark.parametrize("regional", [False, True], ids=["flat", "regional"])
    def test_both_fleet_kinds_satisfy_the_protocol(self, regional):
        fleet = _fleet(regional=regional)
        try:
            assert isinstance(fleet, FleetRuntime)
        finally:
            fleet.shutdown()

    def test_kind_specific_classes(self):
        flat = _fleet()
        regional = _fleet(regional=True)
        try:
            assert isinstance(flat, Fleet) and not isinstance(flat, RegionalFleet)
            assert isinstance(regional, RegionalFleet)
        finally:
            flat.shutdown()
            regional.shutdown()

    def test_context_manager_shuts_down(self):
        with _fleet(executor="process", max_workers=2) as fleet:
            fleet.run_epoch()
        from repro.fleet.shm import leaked_segments

        assert leaked_segments() == []


class TestStream:
    def test_stream_is_lazy(self):
        """Epochs run only as the iterator advances; abandoning it
        mid-run stops the clock where it is."""
        fleet = _fleet()
        try:
            stream = fleet.stream(5)
            assert fleet.current_epoch == 0, "creating a stream runs nothing"
            next(stream)
            next(stream)
            assert fleet.current_epoch == 2
            stream.close()
            assert fleet.current_epoch == 2
            # The fleet is still operable after an abandoned stream.
            fleet.run_epoch()
            assert fleet.current_epoch == 3
        finally:
            fleet.shutdown()

    def test_negative_epochs_rejected_eagerly(self):
        fleet = _fleet()
        try:
            with pytest.raises(ValueError, match="non-negative"):
                fleet.stream(-1)
        finally:
            fleet.shutdown()

    def test_auto_resolves_columnar_then_full_under_process(self):
        fleet = _fleet(executor="process", max_workers=2)
        try:
            kinds = [
                type(report) for report in fleet.stream(3, RunOptions(analyze=False))
            ]
            assert kinds == [
                ColumnarFleetReport,
                ColumnarFleetReport,
                FleetEpochReport,
            ]
        finally:
            fleet.shutdown()

    def test_auto_resolves_full_off_process(self):
        fleet = _fleet()
        try:
            kinds = [
                type(report) for report in fleet.stream(2, RunOptions(analyze=False))
            ]
            assert kinds == [FleetEpochReport, FleetEpochReport]
        finally:
            fleet.shutdown()

    def test_run_buffered_never_returns_columnar(self):
        """keep_reports=True forces full reports even under auto+process
        — buffered columnar shm views would outlive their validity."""
        fleet = _fleet(executor="process", max_workers=2)
        try:
            reports = fleet.run(3, RunOptions(analyze=False))
            assert all(isinstance(r, FleetEpochReport) for r in reports)
        finally:
            fleet.shutdown()

    def test_run_summary_off_stream_equals_buffered_totals(self):
        summary = None
        reports = None
        fleet = _fleet()
        try:
            reports = fleet.run(4, RunOptions(analyze=False))
        finally:
            fleet.shutdown()
        fleet = _fleet()
        try:
            summary = fleet.run(
                4, RunOptions(analyze=False, keep_reports=False)
            )
        finally:
            fleet.shutdown()
        assert isinstance(summary, FleetRunSummary)
        assert summary.epochs == len(reports) == 4
        assert summary.observations == sum(r.observations() for r in reports)


class TestDeprecationShims:
    def test_report_keyword_warns_with_migration_hint(self):
        fleet = _fleet()
        try:
            with pytest.warns(DeprecationWarning, match="RunOptions"):
                report = fleet.run_epoch(report="full")
            assert isinstance(report, FleetEpochReport)
        finally:
            fleet.shutdown()

    def test_keep_reports_keyword_warns_with_migration_hint(self):
        fleet = _fleet()
        try:
            with pytest.warns(DeprecationWarning, match="RunOptions"):
                summary = fleet.run(2, keep_reports=False)
            assert isinstance(summary, FleetRunSummary)
        finally:
            fleet.shutdown()

    def test_analyze_keyword_stays_silent(self):
        """analyze= is a supported convenience alias, not a deprecation."""
        fleet = _fleet()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                fleet.run_epoch(analyze=False)
                fleet.run(1, analyze=False)
        finally:
            fleet.shutdown()

    def test_legacy_and_new_style_runs_identical(self):
        """The shim translation is exact: legacy keywords produce the
        same decisions as their RunOptions spelling."""

        def fingerprint(report):
            return {
                (sid, vm): obs.warning.action.value
                for sid, sr in report.shard_reports.items()
                for vm, obs in sr.observations.items()
            }

        fleet = _fleet()
        try:
            with pytest.warns(DeprecationWarning):
                legacy = fleet.run_epoch(report="full")
        finally:
            fleet.shutdown()
        fleet = _fleet()
        try:
            modern = fleet.run_epoch(RunOptions(report="full"))
        finally:
            fleet.shutdown()
        assert fingerprint(legacy) == fingerprint(modern)

    def test_regional_run_summaries_accepts_options(self):
        fleet = _fleet(regional=True)
        try:
            summaries = fleet.run_summaries(2, RunOptions(analyze=False))
            assert set(summaries) == set(fleet.fleets)
            merged = FleetRunSummary.merge(list(summaries.values()))
            assert merged.epochs == 2
        finally:
            fleet.shutdown()
