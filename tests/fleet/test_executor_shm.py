"""Process-executor sharp edges: shared-memory transport, worker
lifecycle, stats collection and counter-total semantics.

The bit-identity of process execution is pinned by
``tests/integration/test_parallel_fleet.py`` and the property suites;
this module covers the transport machinery itself (layout roundtrip,
double-buffer validity window, churn regrow, segment cleanup) and the
failure-path contracts: no cold worker spawn just to read template
statistics, a named ``RuntimeError`` instead of a raw ``KeyError`` on an
inconsistent worker shard set, recovery after a killed worker, and the
empty-shard vs. scalar-substrate counter-totals contract.
"""

import os
import signal
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import RunOptions, build_fleet, synthesize_datacenter
from repro.fleet.executor import (
    ColumnarFleetReport,
    ColumnarShardReport,
    ProcessShardExecutor,
    _shard_counter_totals,
)
from repro.fleet.faults import FaultPlan, WorkerFault
from repro.fleet.shm import (
    SEGMENT_PREFIX,
    ShmBlockReader,
    ShmBlockWriter,
    leaked_segments,
    unlink_worker_segments,
)
from repro.fleet.supervisor import FaultPolicy
from repro.hardware.batch import N_COUNTERS


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _tiny_process_fleet(max_workers=2, num_vms=16, num_shards=2, **fault_kwargs):
    scenario = synthesize_datacenter(num_vms, num_shards=num_shards, seed=21)
    return build_fleet(
        scenario,
        config=_config(),
        engine="batch",
        mitigate=False,
        executor="process",
        max_workers=max_workers,
        **fault_kwargs,
    )


def _columnar_report(shard_id, n, seed, counters=True):
    rng = np.random.default_rng(seed)
    return ColumnarShardReport(
        shard_id=shard_id,
        epoch=0,
        vm_names=tuple(f"{shard_id}-vm{i}" for i in range(n)),
        action_codes=rng.integers(0, 4, n).astype(np.int8),
        distances=rng.uniform(0, 9, n),
        siblings_consulted=rng.integers(0, 7, n).astype(np.int32),
        siblings_agreeing=rng.integers(0, 7, n).astype(np.int32),
        analyzed=rng.uniform(size=n) < 0.5,
        confirmed=rng.uniform(size=n) < 0.2,
        counter_totals=rng.uniform(1, 1e6, N_COUNTERS) if counters else None,
    )


def _assert_report_equal(received, sent):
    assert received.shard_id == sent.shard_id
    assert received.vm_names == sent.vm_names
    for attr in (
        "action_codes",
        "distances",
        "siblings_consulted",
        "siblings_agreeing",
        "analyzed",
        "confirmed",
    ):
        assert np.array_equal(getattr(received, attr), getattr(sent, attr))
        assert getattr(received, attr).dtype == getattr(sent, attr).dtype
    if sent.counter_totals is None:
        assert received.counter_totals is None
    else:
        assert np.array_equal(received.counter_totals, sent.counter_totals)


class TestShmTransport:
    def test_roundtrip_preserves_arrays_bitwise(self):
        writer = ShmBlockWriter(n_shards=3)
        reader = ShmBlockReader()
        try:
            sent = [
                _columnar_report("s0", 7, seed=1),
                _columnar_report("s1", 0, seed=2),  # an emptied-out shard
                _columnar_report("s2", 11, seed=3, counters=False),
            ]
            received = reader.read(writer.write(0, sent))
            assert [shard_id for shard_id, _ in received] == ["s0", "s1", "s2"]
            for (_, got), want in zip(received, sent):
                _assert_report_equal(got, want)
        finally:
            reader.close()
            writer.close()
        assert leaked_segments() == []

    def test_double_buffering_keeps_previous_epoch_valid(self):
        """Epoch ``e`` views must survive epoch ``e + 1`` (the documented
        validity window) and the two epochs must land in different
        buffers of different segments."""
        writer = ShmBlockWriter(n_shards=1)
        reader = ShmBlockReader()
        try:
            first = _columnar_report("s0", 5, seed=4)
            second = _columnar_report("s0", 5, seed=5)
            desc0 = writer.write(0, [first])
            (_, view0) = reader.read(desc0)[0]
            desc1 = writer.write(1, [second])
            (_, view1) = reader.read(desc1)[0]
            assert desc0.buffer_index != desc1.buffer_index
            assert desc0.segment != desc1.segment
            _assert_report_equal(view0, first)  # still intact
            _assert_report_equal(view1, second)
            # Epoch 2 reuses buffer 0 and overwrites epoch 0 in place.
            third = _columnar_report("s0", 5, seed=6)
            desc2 = writer.write(2, [third])
            assert desc2.buffer_index == desc0.buffer_index
            assert desc2.segment == desc0.segment
            _assert_report_equal(view0, third)
        finally:
            reader.close()
            writer.close()
        assert leaked_segments() == []

    def test_regrow_handshake_replaces_and_unlinks_segment(self):
        """Growing past capacity allocates a fresh segment; the parent
        remaps on the next descriptor and unlinks the replaced one."""
        writer = ShmBlockWriter(n_shards=1, slack_fraction=0.0, min_slack_rows=0)
        reader = ShmBlockReader()
        try:
            small = _columnar_report("s0", 4, seed=7)
            desc0 = writer.write(0, [small])
            reader.read(desc0)
            desc1 = writer.write(1, [small])
            reader.read(desc1)
            # Two live segments (one per buffer), zero slack.
            assert len(leaked_segments()) == 2
            grown = _columnar_report("s0", 9, seed=8)
            desc2 = writer.write(2, [grown])
            assert desc2.buffer_index == desc0.buffer_index
            assert desc2.segment != desc0.segment
            assert desc2.capacity_rows >= 9
            (_, got) = reader.read(desc2)[0]
            _assert_report_equal(got, grown)
            # The replaced segment is gone from /dev/shm; the pair of
            # live ones remains.
            live = leaked_segments()
            assert len(live) == 2
            assert not any(desc0.segment == name for name in live)
        finally:
            reader.close()
            writer.close()
        assert leaked_segments() == []

    def test_segment_names_carry_the_leak_probe_prefix(self):
        writer = ShmBlockWriter(n_shards=1)
        try:
            desc = writer.write(0, [_columnar_report("s0", 2, seed=9)])
            assert desc.segment.startswith(SEGMENT_PREFIX)
            assert desc.segment in leaked_segments()
        finally:
            # Creator-side close releases the handle; the name must
            # still be unlinkable by the (here: same-process) reader.
            reader = ShmBlockReader()
            reader.read(desc)
            reader.close()
            writer.close()
        assert leaked_segments() == []


class TestCollectWithoutWorkers:
    def test_stats_on_virgin_process_fleet_does_not_spawn(self):
        """Template statistics must not cold-spawn every worker pool."""
        fleet = _tiny_process_fleet()
        try:
            stats = fleet.stats()
            detections = fleet.detections()
            assert fleet._strategy is None or not fleet._strategy.started
            assert stats["vms"] == float(fleet.total_vms())
            assert detections == []
        finally:
            fleet.shutdown()

    def test_executor_collect_serves_template_before_start(self):
        fleet = _tiny_process_fleet()
        try:
            strategy = fleet._shard_strategy()
            assert isinstance(strategy, ProcessShardExecutor)
            collected = strategy.collect()
            assert not strategy.started, "collect() must not spawn workers"
            assert set(collected) == set(fleet.shards)
            for shard_id, shard in fleet.shards.items():
                assert collected[shard_id]["vms"] == len(shard.cluster.all_vms())
                assert collected[shard_id]["detections"] == []
        finally:
            fleet.shutdown()

    def test_executor_collect_after_real_run_is_refused_post_shutdown(self):
        fleet = _tiny_process_fleet(max_workers=1, num_vms=8)
        try:
            fleet.run_epoch(analyze=False)
            strategy = fleet._strategy
        finally:
            fleet.shutdown()
        # Fleet cached the final snapshot; the executor itself refuses
        # to silently fall back to the stale template.
        assert fleet.stats()["epochs"] == 1.0
        with pytest.raises(RuntimeError, match="shut down"):
            strategy.collect()


class TestOrderedMergeValidation:
    def _executor(self):
        shards = {"s0": object(), "s1": object(), "s2": object()}
        return ProcessShardExecutor(shards, schedule=[], max_workers=2)

    def _result(self, shard_id, names=("a", "b")):
        report = _columnar_report(shard_id, len(names), seed=11)
        return report

    def test_missing_shard_raises_named_runtime_error(self):
        executor = self._executor()
        merged = {"s0": self._result("s0"), "s2": self._result("s2")}
        with pytest.raises(RuntimeError, match=r"missing: \['s1'\]"):
            executor._ordered_merge(3, merged)
        assert executor._broken
        with pytest.raises(RuntimeError, match="lock step"):
            executor.run_shard_epochs(4, analyze=False, report="columnar")

    def test_unexpected_shard_raises_named_runtime_error(self):
        executor = self._executor()
        merged = {
            sid: self._result(sid) for sid in ("s0", "s1", "s2", "rogue")
        }
        with pytest.raises(RuntimeError, match=r"unexpected: \['rogue'\]"):
            executor._ordered_merge(0, merged)
        assert executor._broken

    def test_elided_names_without_cache_raise_runtime_error(self):
        executor = self._executor()
        merged = {sid: self._result(sid) for sid in ("s0", "s1", "s2")}
        merged["s1"].vm_names = None
        with pytest.raises(RuntimeError, match="'s1'"):
            executor._ordered_merge(0, merged)
        assert executor._broken

    def test_complete_set_merges_in_insertion_order(self):
        executor = self._executor()
        merged = {sid: self._result(sid) for sid in ("s2", "s0", "s1")}
        out = executor._ordered_merge(0, merged)
        assert list(out) == ["s0", "s1", "s2"]
        assert not executor._broken


def _host(vms, block):
    store = SimpleNamespace(latest_block=lambda block=block: block)
    return SimpleNamespace(vms=vms, counter_store=store)


def _stub_shard(hosts):
    return SimpleNamespace(cluster=SimpleNamespace(hosts=hosts))


class TestCounterTotalsContract:
    def test_emptied_out_shard_reports_explicit_zeros(self):
        """Mass departures leave zeros, not 'telemetry unavailable'."""
        shard = _stub_shard(
            {
                "h0": _host(vms={}, block=None),
                "h1": _host(vms={}, block=np.ones((1, N_COUNTERS))),
            }
        )
        totals = _shard_counter_totals(shard)
        assert totals is not None
        assert np.array_equal(totals, np.zeros(N_COUNTERS))

    def test_populated_host_without_block_is_unavailable(self):
        shard = _stub_shard(
            {
                "h0": _host(vms={"vm": object()}, block=None),
                "h1": _host(vms={"vm2": object()}, block=np.ones((1, N_COUNTERS))),
            }
        )
        assert _shard_counter_totals(shard) is None

    def test_fleet_totals_skip_unavailable_shards(self):
        """One scalar-substrate shard must not null every other shard's
        telemetry."""
        with_data = _columnar_report("s0", 3, seed=12)
        without = _columnar_report("s1", 3, seed=13, counters=False)
        report = ColumnarFleetReport(
            epoch=0, shard_reports={"s0": with_data, "s1": without}
        )
        assert np.array_equal(report.counter_totals(), with_data.counter_totals)

    def test_fleet_totals_none_only_when_no_shard_has_telemetry(self):
        report = ColumnarFleetReport(
            epoch=0,
            shard_reports={
                "s0": _columnar_report("s0", 2, seed=14, counters=False),
                "s1": _columnar_report("s1", 2, seed=15, counters=False),
            },
        )
        assert report.counter_totals() is None

    def test_fleet_totals_sum_available_shards(self):
        a = _columnar_report("s0", 2, seed=16)
        b = _columnar_report("s1", 2, seed=17)
        report = ColumnarFleetReport(epoch=0, shard_reports={"s0": a, "s1": b})
        assert np.allclose(
            report.counter_totals(), a.counter_totals + b.counter_totals
        )


class TestWorkerFailureRecovery:
    def test_killed_worker_breaks_run_but_not_cleanup(self):
        """Kill a worker mid-run: the epoch fails, the executor stays
        broken, shutdown still succeeds and no shared-memory segments
        leak."""
        fleet = _tiny_process_fleet(max_workers=2, num_vms=16)
        try:
            fleet.run_epoch(analyze=False, report="columnar")
            strategy = fleet._strategy
            assert leaked_segments(), "columnar epochs must use shm transport"
            victim = strategy.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            # Give the pool's management thread a moment to notice.
            deadline = time.monotonic() + 5.0
            with pytest.raises(RuntimeError):
                while True:
                    fleet.run_epoch(analyze=False, report="columnar")
                    assert time.monotonic() < deadline, (
                        "epochs kept succeeding after the worker was killed"
                    )
            # The run is now refused deterministically.
            with pytest.raises(RuntimeError, match="lock step"):
                fleet.run_epoch(analyze=False, report="columnar")
        finally:
            fleet.shutdown()
        # Cleanup must be complete despite the kill: pools released,
        # every transport segment unlinked, statistics still served
        # (from the template fallback, without raising).
        assert leaked_segments() == []
        assert fleet.stats()["shards"] == 2.0


class TestShutdownHardening:
    """``shutdown()`` must be idempotent and failure-proof (PR 8).

    A long-lived service calls shutdown from ``finally`` blocks, signal
    handlers and context-manager exits — possibly several times,
    possibly after the run already broke.  Every path must release the
    pools and unlink the shm transport segments exactly once, quietly.
    """

    def test_double_shutdown_after_worker_death_is_noop(self):
        fleet = _tiny_process_fleet(max_workers=2, num_vms=16)
        try:
            fleet.run_epoch(options=RunOptions(analyze=False, report="columnar"))
            victim = fleet._strategy.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            with pytest.raises(RuntimeError):
                while True:
                    fleet.run_epoch(
                        options=RunOptions(analyze=False, report="columnar")
                    )
                    assert time.monotonic() < deadline
        finally:
            fleet.shutdown()
        # Shutdown again (and again): both must be clean no-ops.
        fleet.shutdown()
        fleet.shutdown()
        assert leaked_segments() == []
        assert fleet.stats()["shards"] == 2.0

    def test_shutdown_survives_non_runtime_collect_failure(self, monkeypatch):
        """A final collect failing with something harsher than a broken
        pool (unpicklable result, OSError...) must not leak the pools or
        the shm segments — the old code only caught RuntimeError."""
        fleet = _tiny_process_fleet(max_workers=2, num_vms=16)
        fleet.run_epoch(options=RunOptions(analyze=False, report="columnar"))
        strategy = fleet._strategy
        assert leaked_segments(), "columnar epochs must use shm transport"

        def explode():
            raise ValueError("worker result did not unpickle")

        monkeypatch.setattr(strategy, "collect", explode)
        fleet.shutdown()  # must not raise
        assert strategy._pools is None, "pools must be released"
        assert leaked_segments() == []
        fleet.shutdown()  # and stay a no-op afterwards

    def test_snapshot_refused_after_worker_death(self):
        """A broken executor cannot vouch for its state: snapshotting it
        must fail loudly instead of checkpointing garbage."""
        fleet = _tiny_process_fleet(max_workers=2, num_vms=16)
        try:
            fleet.run_epoch(options=RunOptions(analyze=False, report="columnar"))
            os.kill(fleet._strategy.worker_pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            with pytest.raises(RuntimeError):
                while True:
                    fleet.run_epoch(
                        options=RunOptions(analyze=False, report="columnar")
                    )
                    assert time.monotonic() < deadline
            with pytest.raises(RuntimeError, match="snapshot|checkpoint"):
                fleet.snapshot()
        finally:
            fleet.shutdown()
        assert leaked_segments() == []

    def test_snapshot_before_start_uses_parent_template(self):
        """A never-started process fleet snapshots its local template
        (nothing to fetch from workers — none exist yet)."""
        fleet = _tiny_process_fleet(max_workers=2, num_vms=16)
        checkpoint = fleet.snapshot()
        assert checkpoint.epoch == 0
        assert checkpoint.meta["executor"] == "process"
        assert list(checkpoint.meta["shard_ids"]) == list(fleet.shards)
        fleet.shutdown()
        assert leaked_segments() == []

    def test_snapshot_after_shutdown_is_refused(self):
        fleet = _tiny_process_fleet(max_workers=2, num_vms=16)
        fleet.run_epoch(options=RunOptions(analyze=False, report="columnar"))
        fleet.shutdown()
        with pytest.raises(RuntimeError, match="shut.?down"):
            fleet.snapshot()
        assert leaked_segments() == []


class TestOrphanSegmentSweep:
    """PR 9's regrow-orphan fix: a worker that dies *between* allocating
    a new-generation segment and the parent remapping it used to leave
    that name in ``/dev/shm`` until interpreter exit (only the resource
    tracker reclaimed it).  Segment names embed the creator's pid, so
    the executor's failure paths now sweep them by name."""

    def test_unshipped_regrow_segment_is_swept_by_pid(self):
        writer = ShmBlockWriter(n_shards=1, slack_fraction=0.0, min_slack_rows=0)
        reader = ShmBlockReader()
        try:
            small = _columnar_report("s0", 4, seed=31)
            reader.read(writer.write(0, [small]))
            reader.read(writer.write(1, [small]))
            # The regrow allocates a new-generation segment for buffer
            # 0 — and the "worker" dies before the parent reads the
            # descriptor, so the reader never remaps onto it.
            orphan = writer.write(2, [_columnar_report("s0", 9, seed=32)])
            attached = reader.segment_names()
            assert orphan.segment not in attached
            removed = unlink_worker_segments(os.getpid(), skip=attached)
            assert removed == [orphan.segment]
            # The reader-owned names survived the sweep untouched.
            assert leaked_segments() == sorted(attached)
        finally:
            reader.close()
            writer.close()
        assert leaked_segments() == []

    def test_sweep_only_touches_the_given_pid(self):
        writer = ShmBlockWriter(n_shards=1)
        try:
            desc = writer.write(0, [_columnar_report("s0", 3, seed=33)])
            assert unlink_worker_segments(os.getpid() + 1) == []
            assert desc.segment in leaked_segments()
        finally:
            reader = ShmBlockReader()
            reader.read(desc)
            reader.close()
            writer.close()
        assert leaked_segments() == []


class TestUnsupervisedFaultPaths:
    """Without a :class:`FaultPolicy` the PR 6 semantics stand — detect
    and refuse — but the refusal must now clean up the dead worker's
    segments immediately and name the dead shards in the errors."""

    def test_kill_after_write_breaks_run_and_sweeps_segments(self):
        fleet = _tiny_process_fleet(
            max_workers=2,
            fault_plan=FaultPlan(
                faults=(WorkerFault(kind="kill", worker=0, epoch=1, point="after"),)
            ),
        )
        try:
            fleet.run_epoch(options=RunOptions(analyze=False, report="columnar"))
            # The kill fires after the columnar buffers are written:
            # the orphaned segments must be swept with the failure.
            with pytest.raises(RuntimeError):
                fleet.run_epoch(
                    options=RunOptions(analyze=False, report="columnar")
                )
            with pytest.raises(RuntimeError, match="lock step"):
                fleet.run_epoch(
                    options=RunOptions(analyze=False, report="columnar")
                )
        finally:
            fleet.shutdown()
        assert leaked_segments() == []

    def test_snapshot_error_names_dead_shards_and_resume_path(self):
        """The broken-fleet snapshot refusal tells the operator *which*
        shards died with the worker and how to get the run back."""
        fleet = _tiny_process_fleet(
            max_workers=2,
            fault_plan=FaultPlan(
                faults=(WorkerFault(kind="kill", worker=0, epoch=1, point="mid"),)
            ),
        )
        try:
            fleet.run_epoch(options=RunOptions(analyze=False, report="columnar"))
            with pytest.raises(RuntimeError):
                fleet.run_epoch(
                    options=RunOptions(analyze=False, report="columnar")
                )
            with pytest.raises(RuntimeError) as excinfo:
                fleet.snapshot()
            message = str(excinfo.value)
            assert "dead worker shards: shard0" in message
            assert "resume_fleet" in message
        finally:
            fleet.shutdown()
        assert leaked_segments() == []


class TestHeartbeatHangDetection:
    def test_hung_worker_is_killed_and_recovered(self):
        """A worker that stops making epoch progress (here: a planned
        hang) trips the heartbeat deadline, is SIGKILLed and recovered
        exactly like a death — the run continues."""
        fleet = _tiny_process_fleet(
            max_workers=2,
            fault_policy=FaultPolicy(restarts=1, heartbeat_timeout=3.0),
            fault_plan=FaultPlan(
                faults=(
                    WorkerFault(kind="hang", worker=0, epoch=1, point="mid"),
                )
            ),
        )
        try:
            for _ in range(3):
                fleet.run_epoch(
                    options=RunOptions(analyze=False, report="columnar")
                )
            health = fleet.worker_health()
            assert [row["restarts"] for row in health] == [1, 0]
            assert all(row["alive"] for row in health)
            assert fleet.stats()["epochs"] == 3.0
        finally:
            fleet.shutdown()
        assert leaked_segments() == []
