"""Scalar/batch hardware-substrate equivalence properties.

The vectorized contention substrate (:mod:`repro.hardware.batch`) must be
a pure optimisation of the scalar per-VM reference model: same counter
streams (including the per-host measurement-noise draws), same progress
and ground truth, and therefore identical monitoring decisions.

Counters are compared with a documented tolerance of ``1e-9`` relative:
the batch path replays the scalar arithmetic operation for operation,
but cross-VM reductions (per-domain cache pressure, per-host bus/disk
traffic totals) may associate float additions differently.  In practice
the streams are almost always bit-identical; the tolerance only covers
the reduction order, and is far below anything that could flip a
warning decision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DeepDiveConfig
from repro.fleet import InterferenceEpisode, build_fleet, synthesize_datacenter
from repro.hardware.demand import ResourceDemand
from repro.hardware.machine import PhysicalMachine
from repro.hardware.specs import CORE_I7_E5640, XEON_X5472

RTOL = 1e-9
ATOL = 1e-9

demand_strategy = st.builds(
    ResourceDemand,
    instructions=st.one_of(
        st.just(0.0), st.floats(min_value=1e6, max_value=2e10)
    ),
    vcpus=st.integers(min_value=1, max_value=8),
    working_set_mb=st.floats(min_value=0.0, max_value=512.0),
    loads_pki=st.floats(min_value=0.0, max_value=600.0),
    l1_miss_pki=st.floats(min_value=0.0, max_value=200.0),
    ifetch_pki=st.floats(min_value=0.0, max_value=20.0),
    branches_pki=st.floats(min_value=0.0, max_value=300.0),
    branch_mispredict_rate=st.floats(min_value=0.0, max_value=0.2),
    locality=st.floats(min_value=0.0, max_value=1.0),
    disk_mb=st.one_of(st.just(0.0), st.floats(min_value=0.1, max_value=400.0)),
    disk_sequential_fraction=st.floats(min_value=0.0, max_value=1.0),
    network_mbit=st.one_of(
        st.just(0.0), st.floats(min_value=0.1, max_value=2000.0)
    ),
    write_fraction=st.floats(min_value=0.0, max_value=1.0),
)


def assert_outcomes_equivalent(scalar, batch, context=""):
    """Per-VM outcome equivalence within the documented tolerance."""
    assert set(scalar.per_vm) == set(batch.per_vm)
    for name in scalar.per_vm:
        o_s, o_b = scalar.per_vm[name], batch.per_vm[name]
        v_s = np.array(list(o_s.counters.as_dict().values()))
        v_b = np.array(list(o_b.counters.as_dict().values()))
        np.testing.assert_allclose(
            v_b,
            v_s,
            rtol=RTOL,
            atol=ATOL,
            err_msg=f"{context} VM {name!r} counters diverge",
        )
        for field in (
            "instructions_retired",
            "instructions_demanded",
            "instructions_attainable",
            "progress",
            "disk_mbps",
            "network_mbps",
            "cpi",
        ):
            a, b = getattr(o_s, field), getattr(o_b, field)
            if a == b:  # covers inf == inf and exact matches
                continue
            np.testing.assert_allclose(
                b,
                a,
                rtol=RTOL,
                atol=ATOL,
                err_msg=f"{context} VM {name!r} field {field} diverges",
            )


class TestMachineSubstrateEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        demands=st.lists(demand_strategy, min_size=1, max_size=6),
        spec_i7=st.booleans(),
        noise=st.sampled_from([0.0, 0.01, 0.05]),
        epoch_seconds=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_run_epoch_batch_matches_scalar(
        self, demands, spec_i7, noise, epoch_seconds
    ):
        """For any demand mix, both substrates produce equivalent epochs.

        The machines share a seed, so the noise generators must consume
        draws identically for the counter streams to line up — which is
        part of the equivalence contract.
        """
        spec = CORE_I7_E5640 if spec_i7 else XEON_X5472
        named = {f"vm{i}": d for i, d in enumerate(demands)}
        caps = {f"vm{i}": 0.5 + 0.5 * (i % 2) for i in range(len(demands))}
        m_scalar = PhysicalMachine(spec=spec, noise=noise, seed=123)
        m_batch = PhysicalMachine(spec=spec, noise=noise, seed=123)
        scalar = m_scalar.run_epoch(
            named, epoch_seconds=epoch_seconds, cpu_caps=caps
        )
        batch = m_batch.run_epoch_batch(
            named, epoch_seconds=epoch_seconds, cpu_caps=caps
        )
        assert_outcomes_equivalent(scalar, batch)
        assert scalar.bus_utilization == pytest.approx(
            batch.bus_utilization, rel=RTOL, abs=ATOL
        )

    def test_noise_streams_stay_aligned_over_many_epochs(self):
        """Repeated epochs keep the substrates' RNG consumption in lock step."""
        m_scalar = PhysicalMachine(noise=0.02, seed=9)
        m_batch = PhysicalMachine(noise=0.02, seed=9)
        demands = {
            "busy": ResourceDemand(instructions=2e9, vcpus=2, working_set_mb=32.0),
            "idle": ResourceDemand.idle(),
            "io": ResourceDemand(
                instructions=5e8, vcpus=2, disk_mb=50.0, network_mbit=300.0
            ),
        }
        for epoch in range(10):
            scalar = m_scalar.run_epoch(demands)
            batch = m_batch.run_epoch_batch(demands)
            assert_outcomes_equivalent(scalar, batch, context=f"epoch {epoch}")

    def test_multi_domain_vm_equivalence(self):
        """A VM spanning several cache domains resolves identically."""
        m_scalar = PhysicalMachine(noise=0.0, seed=1)
        m_batch = PhysicalMachine(noise=0.0, seed=1)
        demands = {
            "wide": ResourceDemand(
                instructions=6e9, vcpus=6, working_set_mb=96.0, locality=0.2
            ),
            "narrow": ResourceDemand(instructions=1e9, vcpus=1, working_set_mb=4.0),
        }
        assert_outcomes_equivalent(
            m_scalar.run_epoch(demands), m_batch.run_epoch_batch(demands)
        )

    def test_explicit_pinning_equivalence(self):
        """Explicit core assignments flow through the batch plan."""
        m_scalar = PhysicalMachine(noise=0.0, seed=1)
        m_batch = PhysicalMachine(noise=0.0, seed=1)
        demands = {
            "a": ResourceDemand(instructions=2e9, vcpus=2, working_set_mb=48.0),
            "b": ResourceDemand(instructions=3e9, vcpus=2, working_set_mb=16.0),
        }
        pinning = {"a": [0, 1], "b": [1, 2]}  # shared core, cross-domain
        assert_outcomes_equivalent(
            m_scalar.run_epoch(demands, core_assignment=pinning),
            m_batch.run_epoch_batch(demands, core_assignment=pinning),
        )

    def test_empty_and_error_paths_match(self):
        machine = PhysicalMachine(noise=0.0, seed=1)
        assert machine.run_epoch_batch({}).per_vm == {}
        with pytest.raises(ValueError):
            machine.run_epoch_batch(
                {"x": ResourceDemand(instructions=1e9)}, epoch_seconds=0.0
            )
        with pytest.raises(ValueError):
            machine.run_epoch_batch(
                {"x": ResourceDemand(instructions=-1.0)}
            )


def _fleet_config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _decision_key(report):
    """Everything the warning system decided, per (shard, VM)."""
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


class TestFleetSubstrateEquivalence:
    def test_fleet_counters_and_decisions_match_across_substrates(self):
        """Two identically seeded fleets — one per substrate — evolve
        equivalently through bootstrap, steady state, an interference
        episode and mitigation migrations."""
        episodes = [
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=3, end_epoch=7, kind="memory"
            ),
            InterferenceEpisode(
                shard=1, host_index=1, start_epoch=4, end_epoch=8, kind="network"
            ),
        ]
        fleets = {}
        for substrate in ("scalar", "batch"):
            scenario = synthesize_datacenter(
                48, num_shards=2, seed=21, episodes=episodes
            )
            fleet = build_fleet(
                scenario,
                config=_fleet_config(),
                engine="batch",
                mitigate=True,
                substrate=substrate,
            )
            fleet.bootstrap()
            fleets[substrate] = fleet

        for epoch in range(9):
            r_scalar = fleets["scalar"].run_epoch(analyze=True)
            r_batch = fleets["batch"].run_epoch(analyze=True)
            assert _decision_key(r_scalar) == _decision_key(r_batch), (
                f"decisions diverge at epoch {epoch}"
            )

        # Same detections and migrations, in the same order.
        det_scalar = [
            (sid, e.vm_name, e.epoch) for sid, e in fleets["scalar"].detections()
        ]
        det_batch = [
            (sid, e.vm_name, e.epoch) for sid, e in fleets["batch"].detections()
        ]
        assert det_scalar == det_batch
        assert det_batch, "the injected episodes must be detected"
        mig_scalar = [
            (sid, e.vm_name, e.source, e.destination)
            for sid, e in fleets["scalar"].migrations()
        ]
        mig_batch = [
            (sid, e.vm_name, e.source, e.destination)
            for sid, e in fleets["batch"].migrations()
        ]
        assert mig_scalar == mig_batch

        # Full counter histories agree within the documented tolerance.
        for (sid, shard_s) in fleets["scalar"].shards.items():
            shard_b = fleets["batch"].shards[sid]
            for host_name, host_s in shard_s.cluster.hosts.items():
                host_b = shard_b.cluster.hosts[host_name]
                assert set(host_s.counter_history) == set(host_b.counter_history)
                for vm_name, history_s in host_s.counter_history.items():
                    history_b = host_b.counter_history[vm_name]
                    assert len(history_s) == len(history_b)
                    for t, (s, b) in enumerate(zip(history_s, history_b)):
                        np.testing.assert_allclose(
                            np.array(list(b.as_dict().values())),
                            np.array(list(s.as_dict().values())),
                            rtol=RTOL,
                            atol=ATOL,
                            err_msg=(
                                f"shard {sid} host {host_name} VM {vm_name} "
                                f"epoch {t} counters diverge"
                            ),
                        )

    def test_columnar_window_view_matches_sample_assembly(self):
        """The columnar monitoring view equals the per-sample window path."""
        scenario = synthesize_datacenter(24, num_shards=1, seed=5)
        fleet = build_fleet(
            scenario, config=_fleet_config(), engine="batch", substrate="batch"
        )
        fleet.bootstrap()
        for _ in range(5):
            fleet.run_epoch(analyze=False)
        cluster = next(iter(fleet.shards.values())).cluster
        for window in (1, 2, 3, 5, 8):
            view = cluster.counter_window_view(window)
            windows = cluster.counter_windows(window)
            assert set(view.vm_names) == set(windows)
            for vm_name, samples in windows.items():
                i = view.index[vm_name]
                latest = np.array(list(samples[-1].as_dict().values()))
                acc = np.array(list(samples[0].as_dict().values()))
                for s in samples[1:]:
                    acc = acc + np.array(list(s.as_dict().values()))
                assert np.array_equal(view.latest[i], latest)
                np.testing.assert_allclose(
                    view.window_sum[i], acc, rtol=1e-12, atol=0.0
                )

    def test_migration_falls_back_and_stays_equivalent(self):
        """A mid-run migration breaks the columnar fast path for the
        affected hosts; the view must still match the scalar assembly."""
        scenario = synthesize_datacenter(16, num_shards=1, seed=11)
        fleet = build_fleet(
            scenario, config=_fleet_config(), engine="batch", substrate="batch"
        )
        fleet.bootstrap()
        for _ in range(3):
            fleet.run_epoch(analyze=False)
        cluster = next(iter(fleet.shards.values())).cluster
        vm_name = sorted(cluster.all_vms())[0]
        source = cluster.host_of(vm_name)
        destination = next(
            h for h in cluster.hosts
            if h != source and cluster.hosts[h].can_fit(
                cluster.hosts[source].get_vm(vm_name)
            )
        )
        cluster.migrate_vm(vm_name, destination)
        for _ in range(2):
            fleet.run_epoch(analyze=False)
        view = cluster.counter_window_view(3)
        windows = cluster.counter_windows(3)
        assert set(view.vm_names) == set(windows)
        for name, samples in windows.items():
            acc = np.array(list(samples[0].as_dict().values()))
            for s in samples[1:]:
                acc = acc + np.array(list(s.as_dict().values()))
            np.testing.assert_allclose(
                view.window_sum[view.index[name]], acc, rtol=1e-12, atol=0.0
            )
