"""Scalar/batch workload-demand equivalence properties.

``Workload.demand_batch`` is the columnar epoch edge: a host generates
the demand rows of a whole epoch with one array op per distinct workload
configuration.  Each built-in model's vectorized implementation must
replay the scalar ``demand`` arithmetic operation for operation, so the
packed rows are **bit-identical** to ``pack_demand(demand(load))`` — the
property that keeps the batch hardware substrate equivalent to the
scalar reference whichever demand path produced its inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.batch import DEMAND_FIELDS, pack_demand
from repro.workloads.base import Workload, demand_table
from repro.workloads.cloud import (
    DataAnalyticsWorkload,
    DataServingWorkload,
    WebSearchWorkload,
)
from repro.workloads.stress import (
    DiskStressWorkload,
    MemoryStressWorkload,
    NetworkStressWorkload,
)
from repro.workloads.synthetic import SyntheticBenchmark, SyntheticInputs

workload_strategy = st.one_of(
    st.builds(
        DataServingWorkload,
        key_skew=st.floats(min_value=0.0, max_value=1.0),
        read_fraction=st.floats(min_value=0.0, max_value=1.0),
        dataset_gb=st.floats(min_value=1.0, max_value=64.0),
    ),
    st.builds(
        WebSearchWorkload,
        word_skew=st.floats(min_value=0.0, max_value=1.0),
        index_gb=st.floats(min_value=0.5, max_value=8.0),
    ),
    st.builds(
        DataAnalyticsWorkload,
        remote_fetch_fraction=st.floats(min_value=0.0, max_value=1.0),
        shuffle_fraction=st.floats(min_value=0.0, max_value=1.0),
        dataset_gb=st.floats(min_value=1.0, max_value=64.0),
    ),
    st.builds(
        MemoryStressWorkload,
        working_set_mb=st.floats(min_value=1.0, max_value=512.0),
        intensity=st.floats(min_value=0.1, max_value=1.0),
        locality=st.floats(min_value=0.0, max_value=1.0),
    ),
    st.builds(
        NetworkStressWorkload,
        target_mbps=st.floats(min_value=1.0, max_value=900.0),
    ),
    st.builds(
        DiskStressWorkload,
        target_mbps=st.floats(min_value=0.5, max_value=20.0),
        sequential_fraction=st.floats(min_value=0.0, max_value=1.0),
    ),
    st.builds(
        SyntheticBenchmark,
        inputs=st.builds(
            SyntheticInputs,
            compute_iterations=st.floats(min_value=0.0, max_value=50.0),
            working_set_mb=st.floats(min_value=0.25, max_value=2048.0),
            pointer_chase_fraction=st.floats(min_value=0.0, max_value=1.0),
            parallelism=st.floats(min_value=1.0, max_value=8.0),
        ),
    ),
)


class TestDemandBatchEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        workload=workload_strategy,
        loads=st.lists(
            st.floats(min_value=0.0, max_value=2000.0), min_size=1, max_size=8
        ),
        epoch_seconds=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_rows_bit_identical_to_scalar(self, workload, loads, epoch_seconds):
        """For any model, loads and epoch length, the vectorized rows
        equal the packed scalar demands bit for bit."""
        batch = workload.demand_batch(loads, epoch_seconds=epoch_seconds)
        assert batch.shape == (len(loads), len(DEMAND_FIELDS))
        scalar = np.asarray(
            [
                pack_demand(workload.demand(load, epoch_seconds=epoch_seconds))
                for load in loads
            ],
            dtype=float,
        )
        assert np.array_equal(batch, scalar), (
            f"{type(workload).__name__} demand_batch diverges from scalar demand"
        )

    @settings(max_examples=40, deadline=None)
    @given(workload=workload_strategy)
    def test_batch_key_groups_equivalent_instances(self, workload):
        """A copy of a workload (fresh seed/app_id) shares the batch key,
        so grouping by key never mixes demand-distinct configurations."""
        twin = workload.copy()
        twin.app_id = "other-app"
        twin.seed = 1234
        assert workload.batch_key() == twin.batch_key()
        assert workload.batch_key() is not None

    def test_negative_loads_rejected_like_scalar(self):
        """Cloud models refuse negative loads on both paths."""
        workload = DataServingWorkload()
        with pytest.raises(ValueError):
            workload.demand(-1.0)
        with pytest.raises(ValueError):
            workload.demand_batch([0.5, -1.0])

    def test_base_fallback_matches_scalar_loop(self):
        """The default (non-vectorized) demand_batch is usable by any
        custom subclass and agrees with the scalar loop."""

        class CustomWorkload(DataServingWorkload):
            name = "custom"

            def batch_key(self):
                return None

        workload = CustomWorkload(key_skew=0.3)
        loads = [0.0, 10.0, 250.0]
        batch = Workload.demand_batch(workload, loads, epoch_seconds=2.0)
        scalar = np.asarray(
            [pack_demand(workload.demand(load, epoch_seconds=2.0)) for load in loads],
            dtype=float,
        )
        assert np.array_equal(batch, scalar)

    def test_demand_table_rejects_bad_fields(self):
        with pytest.raises(TypeError):
            demand_table(2, instructions=1.0)  # missing fields
        kwargs = {name: 0.0 for name in DEMAND_FIELDS}
        kwargs["bogus"] = 1.0
        with pytest.raises(TypeError):
            demand_table(2, **kwargs)
