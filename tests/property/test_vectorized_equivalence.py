"""Scalar/vectorized equivalence properties.

The batch epoch engine (``MetricMatrix`` + the batch paths through the
repository and warning system) must be a pure optimisation: for any
counter input, it has to produce results *element-wise identical* to the
scalar per-VM reference path.  These properties are what lets DeepDive
swap engines freely — and what the fleet benchmark's speedup claim rests
on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository
from repro.core.warning import WarningSystem
from repro.metrics.counters import CounterSample
from repro.metrics.matrix import MetricMatrix
from repro.metrics.normalization import (
    aggregate_samples,
    normalize_counter_matrix,
    samples_to_counter_matrix,
    windows_to_counter_matrix,
)
from repro.metrics.sample import WARNING_METRICS, MetricVector

counter_strategy = st.builds(
    CounterSample,
    cpu_unhalted=st.floats(min_value=0.0, max_value=1e12),
    # Any real monitoring epoch retires many instructions; the per-kilo-
    # instruction normalisation is only meaningful above that floor.
    inst_retired=st.floats(min_value=1e4, max_value=1e12),
    l1d_repl=st.floats(min_value=0.0, max_value=1e10),
    l2_ifetch=st.floats(min_value=0.0, max_value=1e9),
    l2_lines_in=st.floats(min_value=0.0, max_value=1e10),
    mem_load=st.floats(min_value=0.0, max_value=1e11),
    resource_stalls=st.floats(min_value=0.0, max_value=1e12),
    bus_tran_any=st.floats(min_value=0.0, max_value=1e10),
    bus_trans_ifetch=st.floats(min_value=0.0, max_value=1e9),
    bus_tran_brd=st.floats(min_value=0.0, max_value=1e10),
    bus_req_out=st.floats(min_value=0.0, max_value=1e12),
    br_miss_pred=st.floats(min_value=0.0, max_value=1e9),
    disk_stall_cycles=st.floats(min_value=0.0, max_value=1e12),
    net_stall_cycles=st.floats(min_value=0.0, max_value=1e12),
)


# ----------------------------------------------------------------------
# Normalisation equivalence
# ----------------------------------------------------------------------
class TestNormalizationEquivalence:
    @given(samples=st.lists(counter_strategy, min_size=1, max_size=8))
    def test_batch_normalization_matches_scalar_bitwise(self, samples):
        """Each batch-normalised row equals the scalar MetricVector exactly."""
        raw = samples_to_counter_matrix(samples)
        batch = normalize_counter_matrix(raw)
        for i, sample in enumerate(samples):
            scalar = MetricVector.from_sample(sample).as_array()
            assert np.array_equal(batch[i], scalar), (
                f"row {i} differs: {batch[i]} vs {scalar}"
            )

    @given(
        windows=st.lists(
            st.lists(counter_strategy, min_size=1, max_size=5),
            min_size=1,
            max_size=5,
        )
    )
    def test_batch_window_aggregation_matches_scalar_bitwise(self, windows):
        """Window summation matches the aggregate_samples left fold exactly."""
        batch_raw = windows_to_counter_matrix(windows)
        batch = normalize_counter_matrix(batch_raw)
        for i, window in enumerate(windows):
            merged = aggregate_samples(window)
            scalar = MetricVector.from_sample(merged).as_array()
            assert np.array_equal(batch[i], scalar)

    @given(samples=st.lists(counter_strategy, min_size=1, max_size=6))
    def test_metric_matrix_round_trip(self, samples):
        """from_samples -> to_vectors reproduces the scalar vectors."""
        named = {f"vm{i}": s for i, s in enumerate(samples)}
        matrix = MetricMatrix.from_samples(named, labels="app")
        assert matrix.n_dimensions == len(WARNING_METRICS)
        vectors = matrix.to_vectors()
        for name, sample in named.items():
            assert vectors[name].values == MetricVector.from_sample(
                sample, label="app"
            ).values
            assert vectors[name].label == "app"
            assert np.array_equal(matrix.row(name), vectors[name].as_array())


# ----------------------------------------------------------------------
# Warning-system equivalence
# ----------------------------------------------------------------------
def _seeded_vector(rng, base_scale=1.0) -> MetricVector:
    values = {
        name: float(v)
        for name, v in zip(
            WARNING_METRICS,
            np.abs(rng.normal(1.0, 0.1, len(WARNING_METRICS))) * base_scale,
        )
    }
    return MetricVector(values=values, label="app")


@pytest.fixture(scope="module")
def fitted_warning_system() -> WarningSystem:
    """A warning system with a fitted model and interference signatures."""
    repository = BehaviorRepository(min_normal_behaviors=8, seed=3)
    rng = np.random.default_rng(42)
    # Two behaviour clusters (e.g. two load plateaus) ...
    for scale in (1.0, 3.0):
        for _ in range(20):
            repository.add_normal("app", _seeded_vector(rng, scale), refit=False)
    repository.fit("app")
    # ... and two diagnosed interference signatures.
    repository.add_interference("app", _seeded_vector(rng, 8.0))
    repository.add_interference("app", _seeded_vector(rng, 0.2))
    return WarningSystem(repository, DeepDiveConfig())


class TestWarningEquivalence:
    @given(samples=st.lists(counter_strategy, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_evaluate_batch_matches_scalar(self, fitted_warning_system, samples):
        """Batch decisions equal scalar decisions field for field.

        The sibling pool is the same epoch's latest vectors (the
        smoothing window is one epoch), exactly as DeepDive wires it.
        """
        ws = fitted_warning_system
        named = {f"vm{i}": s for i, s in enumerate(samples)}
        matrix = MetricMatrix.from_samples(named, labels="app")
        vectors = matrix.to_vectors()

        batch = ws.evaluate_batch("app", matrix, sibling_pool=matrix)
        for vm_name in named:
            siblings = {n: v for n, v in vectors.items() if n != vm_name}
            scalar = ws.evaluate(
                vm_name=vm_name,
                app_id="app",
                vector=vectors[vm_name],
                sibling_vectors=siblings,
            )
            assert batch[vm_name] == scalar, (
                f"{vm_name}: batch={batch[vm_name]} scalar={scalar}"
            )

    @given(samples=st.lists(counter_strategy, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_evaluate_batch_matches_scalar_conservative(
        self, fitted_warning_system, samples
    ):
        """Without a model both engines report conservative ANALYZE."""
        ws = fitted_warning_system
        named = {f"vm{i}": s for i, s in enumerate(samples)}
        matrix = MetricMatrix.from_samples(named, labels="unknown-app")
        vectors = matrix.to_vectors()
        batch = ws.evaluate_batch("unknown-app", matrix, sibling_pool=matrix)
        for vm_name in named:
            siblings = {n: v for n, v in vectors.items() if n != vm_name}
            scalar = ws.evaluate(
                vm_name=vm_name,
                app_id="unknown-app",
                vector=vectors[vm_name],
                sibling_vectors=siblings,
            )
            assert batch[vm_name] == scalar

    @given(samples=st.lists(counter_strategy, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_repository_batch_distances_match_scalar(
        self, fitted_warning_system, samples
    ):
        """Batch Mahalanobis / interference distances equal scalar ones."""
        repository = fitted_warning_system.repository
        named = {f"vm{i}": s for i, s in enumerate(samples)}
        matrix = MetricMatrix.from_samples(named, labels="app")
        vectors = matrix.to_vectors()
        distances = repository.distance_batch("app", matrix.array)
        interference = repository.interference_distance_batch("app", matrix.array)
        for i, vm_name in enumerate(matrix.vm_names):
            assert distances[i] == repository.distance("app", vectors[vm_name])
            assert interference[i] == repository.interference_distance(
                "app", vectors[vm_name]
            )
