"""Lifecycle-churn equivalence properties.

A :class:`~repro.fleet.timeline.FleetTimeline` is declarative data and
the :class:`~repro.fleet.lifecycle.LifecycleEngine` a deterministic
interpreter, so an identical timeline must produce **bit-identical**
fleet evolutions — decisions, run summaries, churned topology — across

* hardware substrates (``scalar`` / ``batch``),
* counter-history modes (``lazy`` / ``eager``),
* shard executors (``serial`` / ``thread`` / ``process``) at any
  worker count.

The churn-heavy scenario exercised here hits every event type at once:
tenant arrivals admitted by the interference-aware policy, scheduled
departures, one host drain (with forced evacuations through the
existing migration path) and return-to-service, a flash crowd stacked
on diurnal load phases, plus a scheduled interference episode so the
monitoring pipeline stays busy while the topology shifts under it.

Cross-substrate runs are compared on warning actions, confirmations and
the :class:`~repro.fleet.fleet.FleetRunSummary` aggregates (the
substrate contract tolerates 1e-9 counter deviations, so raw distances
are compared only within a substrate); every other axis is compared on
the full decision record, exact distances included.
"""

import numpy as np
import pytest

from repro.core.config import DeepDiveConfig
from repro.metrics.counters import COUNTER_NAMES
from repro.fleet import (
    FleetRunSummary,
    FlashCrowd,
    HostDrain,
    HostReturn,
    InterferenceEpisode,
    LoadPhase,
    build_fleet,
    churn_timeline,
    synthesize_datacenter,
)

EPOCHS = 10


def _timeline():
    timeline = churn_timeline(
        ["shard0", "shard1"],
        epochs=EPOCHS,
        seed=5,
        arrivals_per_epoch=1.0,
        mean_lifetime_epochs=6.0,
    )
    timeline.add(HostDrain(epoch=4, shard="shard0", host="s0pm1"))
    timeline.add(HostReturn(epoch=8, shard="shard0", host="s0pm1"))
    timeline.add(FlashCrowd(epoch=5, shard="shard1", end_epoch=9, scale=1.4))
    timeline.add(LoadPhase(epoch=3, shard="shard0", scale=0.8))
    timeline.add(LoadPhase(epoch=7, shard="shard0", scale=1.0))
    return timeline


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
        smoothing_epochs=2,
    )


def _build(substrate="batch", history_mode="lazy", executor=None, max_workers=None):
    scenario = synthesize_datacenter(
        16,
        num_shards=2,
        seed=23,
        episodes=[
            InterferenceEpisode(
                shard=1, host_index=1, start_epoch=3, end_epoch=6, kind="memory"
            )
        ],
        timeline=_timeline(),
    )
    fleet = build_fleet(
        scenario,
        config=_config(),
        engine="batch",
        mitigate=True,
        substrate=substrate,
        history_mode=history_mode,
        executor=executor,
        max_workers=max_workers,
    )
    fleet.bootstrap()
    return fleet


def _decision_key(report):
    """Everything the warning system decided, exact distances included."""
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


def _action_key(decisions):
    """Substrate-robust projection: actions + confirmations only."""
    return [
        {key: (value[0], value[4]) for key, value in epoch.items()}
        for epoch in decisions
    ]


def _summary_key(summary: FleetRunSummary):
    return (
        summary.epochs,
        summary.observations,
        summary.analyzer_invocations,
        summary.confirmed_interference,
        summary.action_histogram,
    )


def _run(fleet, epochs=EPOCHS):
    summary = FleetRunSummary()
    decisions = []
    try:
        for _ in range(epochs):
            report = fleet.run_epoch(analyze=True)
            decisions.append(_decision_key(report))
            summary.accumulate(report)
        lifecycle = fleet.lifecycle_stats()
    finally:
        fleet.shutdown()
    return decisions, summary, lifecycle


@pytest.fixture(scope="module")
def reference():
    """The serial / batch-substrate / lazy-history churn run."""
    return _run(_build())


class TestLifecycleEquivalence:
    def test_churn_actually_happens(self, reference):
        """The scenario must exercise every lifecycle dimension — a
        quiet timeline would vacuously pass the equivalence checks."""
        _decisions, summary, lifecycle = reference
        totals = {
            key: sum(stats[key] for stats in lifecycle.values())
            for key in next(iter(lifecycle.values()))
        }
        assert totals["arrivals_admitted"] > 0
        assert totals["departures"] > 0
        assert totals["drains"] == 1 and totals["returns"] == 1
        assert totals["drain_migrations"] > 0
        assert totals["load_changes"] > 0
        assert summary.confirmed_interference > 0, (
            "the scheduled interference episode must still be detected "
            "while the fleet churns"
        )

    def test_history_modes_bit_identical(self, reference):
        """lazy == eager through arrivals (ring grow), departures (ring
        shrink), drain migrations (flush + regrow) and load phases."""
        decisions_ref, summary_ref, _ = reference
        decisions, summary, _ = _run(_build(history_mode="eager"))
        for epoch, (a, b) in enumerate(zip(decisions_ref, decisions)):
            assert a == b, f"decisions diverge at epoch {epoch}"
        assert _summary_key(summary) == _summary_key(summary_ref)

    def test_substrates_equivalent(self, reference):
        """scalar and batch substrates see the same churned fleet: same
        topology evolution, same actions and confirmations, identical
        run summaries (distances are substrate-tolerance quantities)."""
        decisions_ref, summary_ref, lifecycle_ref = reference
        decisions, summary, lifecycle = _run(_build(substrate="scalar"))
        assert _action_key(decisions) == _action_key(decisions_ref)
        assert _summary_key(summary) == _summary_key(summary_ref)
        assert lifecycle == lifecycle_ref

    def test_scalar_substrate_history_modes(self):
        """Scalar-substrate churn (no ring blocks at all) is identical
        across history modes too."""
        decisions_a, summary_a, _ = _run(_build(substrate="scalar"))
        decisions_b, summary_b, _ = _run(
            _build(substrate="scalar", history_mode="eager")
        )
        assert decisions_a == decisions_b
        assert _summary_key(summary_a) == _summary_key(summary_b)

    def test_thread_executor_bit_identical(self, reference):
        decisions_ref, summary_ref, lifecycle_ref = reference
        for workers in (2, 4):
            decisions, summary, lifecycle = _run(
                _build(executor="thread", max_workers=workers)
            )
            assert decisions == decisions_ref, f"workers={workers}"
            assert _summary_key(summary) == _summary_key(summary_ref)
            assert lifecycle == lifecycle_ref

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_executor_bit_identical(self, reference, workers):
        """State-owning process workers apply their own lifecycle
        subsets; the merged churn run must equal serial bit for bit at
        every worker count."""
        decisions_ref, summary_ref, lifecycle_ref = reference
        decisions, summary, lifecycle = _run(
            _build(executor="process", max_workers=workers)
        )
        for epoch, (a, b) in enumerate(zip(decisions_ref, decisions)):
            assert a == b, f"workers={workers}: diverge at epoch {epoch}"
        assert _summary_key(summary) == _summary_key(summary_ref)
        assert lifecycle == lifecycle_ref

    def test_topology_evolution_identical(self):
        """Two fleets built from the same scenario walk through the
        same placements epoch by epoch — the churned VM->host maps (and
        drained-host exclusions) are part of the contract."""
        fleet_a = _build()
        fleet_b = _build(history_mode="eager")
        try:
            for _ in range(EPOCHS):
                fleet_a.run_epoch(analyze=False)
                fleet_b.run_epoch(analyze=False)
                for shard_id, shard_a in fleet_a.shards.items():
                    placement_a = {
                        vm: host
                        for vm, (host, _) in shard_a.cluster.all_vms().items()
                    }
                    placement_b = {
                        vm: host
                        for vm, (host, _) in fleet_b.shards[shard_id]
                        .cluster.all_vms()
                        .items()
                    }
                    assert placement_a == placement_b
        finally:
            fleet_a.shutdown()
            fleet_b.shutdown()

    def test_window_views_stay_exact_under_churn(self):
        """After churn, the columnar window view still equals the
        materialised per-sample assembly on every host (the ring
        grow/shrink path must never desynchronise the two)."""
        fleet = _build()
        try:
            for _ in range(EPOCHS):
                fleet.run_epoch(analyze=False)
            for shard in fleet.shards.values():
                cluster = shard.cluster
                for window in (1, 2, 3):
                    view = cluster.counter_window_view(window)
                    windows = cluster.counter_windows(window)
                    assert set(view.vm_names) == set(windows)
                    for vm_name, samples in windows.items():
                        i = view.index[vm_name]
                        expected = np.array(
                            [samples[0][name] for name in COUNTER_NAMES]
                        )
                        for sample in samples[1:]:
                            expected = expected + np.array(
                                [sample[name] for name in COUNTER_NAMES]
                            )
                        assert np.array_equal(view.window_sum[i], expected), (
                            f"{vm_name} window={window}"
                        )
        finally:
            fleet.shutdown()
