"""Lazy/eager counter-history equivalence properties.

The lazy columnar counter store (:mod:`repro.metrics.store`) must be a
pure optimisation of the eager per-VM sample history: identical warning
decisions, identical :class:`~repro.fleet.fleet.FleetRunSummary`
aggregates, and **bit-identical** materialised ``CounterSample``
windows — for every hardware substrate and shard execution strategy.

The eager reference (``history_mode="eager"``) materialises every
epoch's samples immediately, exactly like the pre-store epoch edge did;
the lazy mode only materialises on access.  Both fleets are built from
the same seed, so any divergence is a store bug, not noise.

The process strategy's shard state lives in worker processes, so its
host histories are not reachable from the parent; its decisions and
run summaries are compared here, and the existing parallel-fleet suite
already pins process == serial bit-identity at the state level.
"""

import numpy as np

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetRunSummary,
    InterferenceEpisode,
    build_fleet,
    synthesize_datacenter,
)

EPISODES = [
    InterferenceEpisode(
        shard=0, host_index=0, start_epoch=2, end_epoch=5, kind="memory"
    ),
    InterferenceEpisode(
        shard=1, host_index=1, start_epoch=3, end_epoch=6, kind="network"
    ),
]


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
        smoothing_epochs=2,
    )


def _build(history_mode, substrate="batch", executor=None, max_workers=None):
    scenario = synthesize_datacenter(
        16, num_shards=2, seed=23, episodes=EPISODES
    )
    fleet = build_fleet(
        scenario,
        config=_config(),
        engine="batch",
        mitigate=True,
        substrate=substrate,
        executor=executor,
        max_workers=max_workers,
        history_mode=history_mode,
    )
    fleet.bootstrap()
    return fleet


def _decision_key(report):
    """Everything the warning system decided, exact distances included."""
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


def _summary_key(summary: FleetRunSummary):
    return (
        summary.epochs,
        summary.observations,
        summary.analyzer_invocations,
        summary.confirmed_interference,
        summary.action_histogram,
    )


def _run(fleet, epochs=8):
    """Run ``epochs`` epochs, returning per-epoch decisions + summary."""
    summary = FleetRunSummary()
    decisions = []
    try:
        for _ in range(epochs):
            report = fleet.run_epoch(analyze=True)
            decisions.append(_decision_key(report))
            summary.accumulate(report)
    finally:
        fleet.shutdown()
    return decisions, summary


def _assert_histories_bit_identical(fleet_a, fleet_b):
    for shard_id, shard_a in fleet_a.shards.items():
        shard_b = fleet_b.shards[shard_id]
        for host_name, host_a in shard_a.cluster.hosts.items():
            host_b = shard_b.cluster.hosts[host_name]
            assert set(host_a.counter_history) == set(host_b.counter_history)
            for vm_name, history_a in host_a.counter_history.items():
                history_b = host_b.counter_history[vm_name]
                assert len(history_a) == len(history_b), (
                    f"{shard_id}/{host_name}/{vm_name} history lengths differ"
                )
                for t, (a, b) in enumerate(zip(history_a, history_b)):
                    assert a == b, (
                        f"{shard_id}/{host_name}/{vm_name} epoch {t} "
                        "materialised samples differ"
                    )


def _assert_windows_bit_identical(fleet_a, fleet_b, windows=(1, 2, 3, 5)):
    for shard_id, shard_a in fleet_a.shards.items():
        cluster_a = shard_a.cluster
        cluster_b = fleet_b.shards[shard_id].cluster
        for window in windows:
            wins_a = cluster_a.counter_windows(window)
            wins_b = cluster_b.counter_windows(window)
            assert set(wins_a) == set(wins_b)
            for vm_name, samples_a in wins_a.items():
                assert samples_a == wins_b[vm_name], (
                    f"{shard_id}/{vm_name} window={window} samples differ"
                )
            view_a = cluster_a.counter_window_view(window)
            view_b = cluster_b.counter_window_view(window)
            assert view_a.vm_names == view_b.vm_names
            assert np.array_equal(view_a.latest, view_b.latest)
            assert np.array_equal(view_a.window_sum, view_b.window_sum)


class TestLazyHistoryEquivalence:
    def test_batch_substrate_serial(self):
        """The core contract: lazy == eager through bootstrap, an
        interference episode, analyses and mitigation migrations."""
        eager = _build("eager")
        lazy = _build("lazy")
        decisions_e, summary_e = _run(eager)
        decisions_l, summary_l = _run(lazy)
        for epoch, (a, b) in enumerate(zip(decisions_e, decisions_l)):
            assert a == b, f"decisions diverge at epoch {epoch}"
        assert _summary_key(summary_e) == _summary_key(summary_l)
        assert summary_e.confirmed_interference > 0, (
            "the injected episodes must be detected"
        )
        _assert_histories_bit_identical(eager, lazy)
        _assert_windows_bit_identical(eager, lazy)

    def test_scalar_substrate_serial(self):
        """Scalar-substrate hosts never produce counter blocks; the lazy
        store must degrade to the plain sample lists transparently."""
        eager = _build("eager", substrate="scalar")
        lazy = _build("lazy", substrate="scalar")
        decisions_e, summary_e = _run(eager, epochs=6)
        decisions_l, summary_l = _run(lazy, epochs=6)
        assert decisions_e == decisions_l
        assert _summary_key(summary_e) == _summary_key(summary_l)
        _assert_histories_bit_identical(eager, lazy)
        _assert_windows_bit_identical(eager, lazy, windows=(1, 3))

    def test_thread_executor(self):
        """Thread-pool shard dispatch over lazy histories matches the
        eager serial reference bit for bit (both substrates)."""
        for substrate in ("batch", "scalar"):
            eager = _build("eager", substrate=substrate)
            lazy = _build(
                "lazy", substrate=substrate, executor="thread", max_workers=2
            )
            decisions_e, summary_e = _run(eager, epochs=6)
            decisions_l, summary_l = _run(lazy, epochs=6)
            assert decisions_e == decisions_l, f"substrate={substrate}"
            assert _summary_key(summary_e) == _summary_key(summary_l)
            _assert_histories_bit_identical(eager, lazy)

    def test_process_executor(self):
        """State-owning process workers (columnar exchange) over lazy
        histories match the eager serial reference's decisions and run
        summary; worker-side state equivalence is pinned by the
        parallel-fleet suite."""
        eager = _build("eager")
        lazy = _build("lazy", executor="process", max_workers=2)
        decisions_e, summary_e = _run(eager, epochs=6)
        decisions_l, summary_l = _run(lazy, epochs=6)
        for epoch, (a, b) in enumerate(zip(decisions_e, decisions_l)):
            assert a == b, f"decisions diverge at epoch {epoch}"
        assert _summary_key(summary_e) == _summary_key(summary_l)

    def test_migration_flushes_and_stays_identical(self):
        """An explicit mid-run migration restarts ring segments on both
        hosts; materialised histories must remain bit-identical."""
        eager = _build("eager")
        lazy = _build("lazy")
        for _ in range(3):
            eager.run_epoch(analyze=False)
            lazy.run_epoch(analyze=False)
        for fleet in (eager, lazy):
            cluster = fleet.shards["shard0"].cluster
            vm_name = sorted(cluster.all_vms())[0]
            source = cluster.host_of(vm_name)
            destination = next(
                h
                for h in cluster.hosts
                if h != source
                and cluster.hosts[h].can_fit(
                    cluster.hosts[source].get_vm(vm_name)
                )
            )
            cluster.migrate_vm(vm_name, destination)
        for _ in range(3):
            eager.run_epoch(analyze=False)
            lazy.run_epoch(analyze=False)
        _assert_histories_bit_identical(eager, lazy)
        _assert_windows_bit_identical(eager, lazy, windows=(1, 2, 4))
