"""Hierarchical-fleet equivalence properties.

Shards share nothing, so grouping them into regions is pure
bookkeeping: a :class:`~repro.fleet.region.RegionalFleet` built from
the same scenario must evolve **bit-identically** to the flat
:class:`~repro.fleet.fleet.Fleet` — decisions, run summaries, lifecycle
counters — at any region split, across

* hardware substrates (``scalar`` / ``batch``),
* counter-history modes (``lazy`` / ``eager``),
* region executors (``serial`` / ``thread`` / ``process``) at any
  per-region worker budget.

The scenario reuses the churn-heavy shape of
``test_lifecycle_equivalence``: Poisson arrivals through the admission
policy, scheduled departures, a host drain and return, a flash crowd on
a load phase, plus a scheduled interference episode — so the region
layer's lifecycle partitioning (one engine subset per region) is
exercised against every event type while the fleet stays busy
detecting.
"""

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetRunSummary,
    FlashCrowd,
    HostDrain,
    HostReturn,
    InterferenceEpisode,
    LoadPhase,
    build_fleet,
    build_regional_fleet,
    churn_timeline,
    synthesize_datacenter,
)

EPOCHS = 10
NUM_SHARDS = 4


def _timeline():
    shard_ids = [f"shard{s}" for s in range(NUM_SHARDS)]
    timeline = churn_timeline(
        shard_ids,
        epochs=EPOCHS,
        seed=5,
        arrivals_per_epoch=1.0,
        mean_lifetime_epochs=6.0,
    )
    timeline.add(HostDrain(epoch=4, shard="shard0", host="s0pm1"))
    timeline.add(HostReturn(epoch=8, shard="shard0", host="s0pm1"))
    timeline.add(FlashCrowd(epoch=5, shard="shard3", end_epoch=9, scale=1.4))
    timeline.add(LoadPhase(epoch=3, shard="shard0", scale=0.8))
    timeline.add(LoadPhase(epoch=7, shard="shard0", scale=1.0))
    return timeline


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
        smoothing_epochs=2,
    )


def _scenario():
    return synthesize_datacenter(
        16,
        num_shards=NUM_SHARDS,
        seed=23,
        episodes=[
            InterferenceEpisode(
                shard=1, host_index=1, start_epoch=3, end_epoch=6, kind="memory"
            )
        ],
        timeline=_timeline(),
    )


def _build_flat(substrate="batch", history_mode="lazy"):
    fleet = build_fleet(
        _scenario(),
        config=_config(),
        mitigate=True,
        substrate=substrate,
        history_mode=history_mode,
    )
    fleet.bootstrap()
    return fleet


def _build_regional(
    num_regions=2,
    substrate="batch",
    history_mode="lazy",
    executor=None,
    region_workers=None,
):
    fleet = build_regional_fleet(
        _scenario(),
        num_regions=num_regions,
        config=_config(),
        mitigate=True,
        substrate=substrate,
        history_mode=history_mode,
        executor=executor,
        region_workers=region_workers,
    )
    fleet.bootstrap()
    return fleet


def _decision_key(report):
    """Everything the warning system decided, exact distances included."""
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


def _summary_key(summary: FleetRunSummary):
    return (
        summary.epochs,
        summary.observations,
        summary.analyzer_invocations,
        summary.confirmed_interference,
        summary.action_histogram,
    )


def _run(fleet, epochs=EPOCHS):
    summary = FleetRunSummary()
    decisions = []
    shard_orders = []
    try:
        for _ in range(epochs):
            report = fleet.run_epoch(analyze=True)
            decisions.append(_decision_key(report))
            shard_orders.append(list(report.shard_reports))
            summary.accumulate(report)
        lifecycle = fleet.lifecycle_stats()
        stats = fleet.stats()
    finally:
        fleet.shutdown()
    return decisions, summary, lifecycle, stats, shard_orders


@pytest.fixture(scope="module")
def reference():
    """The flat serial / batch-substrate / lazy-history churn run."""
    return _run(_build_flat())


def _assert_matches_reference(result, reference, exact=True):
    decisions, summary, lifecycle, stats, shard_orders = result
    decisions_ref, summary_ref, lifecycle_ref, stats_ref, orders_ref = reference
    assert shard_orders == orders_ref, "merge order must be flat shard order"
    if exact:
        for epoch, (a, b) in enumerate(zip(decisions_ref, decisions)):
            assert a == b, f"decisions diverge at epoch {epoch}"
    assert _summary_key(summary) == _summary_key(summary_ref)
    assert lifecycle == lifecycle_ref
    for key, value in stats_ref.items():
        if key in ("regions",):
            continue
        assert stats[key] == value, f"stats[{key}]"


class TestRegionEquivalence:
    def test_scenario_active(self, reference):
        """The scenario must churn and detect — a quiet fleet would
        vacuously pass every equivalence check."""
        _decisions, summary, lifecycle, _stats, _orders = reference
        totals = {
            key: sum(stats[key] for stats in lifecycle.values())
            for key in next(iter(lifecycle.values()))
        }
        assert totals["arrivals_admitted"] > 0
        assert totals["departures"] > 0
        assert totals["drains"] == 1 and totals["returns"] == 1
        assert summary.confirmed_interference > 0

    @pytest.mark.parametrize("num_regions", [1, 2, 3, 4])
    def test_serial_regions_bit_identical(self, reference, num_regions):
        """Any contiguous split — even (2, 4), uneven (3), trivial (1)
        — merges back to the flat run bit for bit."""
        result = _run(_build_regional(num_regions=num_regions))
        _assert_matches_reference(result, reference)

    def test_history_mode_bit_identical(self, reference):
        result = _run(_build_regional(history_mode="eager"))
        _assert_matches_reference(result, reference)

    def test_scalar_substrate_bit_identical(self):
        """Regional == flat holds on the scalar substrate too (compared
        within the substrate, where exact distances must match)."""
        flat = _run(_build_flat(substrate="scalar"))
        regional = _run(_build_regional(substrate="scalar"))
        _assert_matches_reference(regional, flat)

    def test_thread_executor_bit_identical(self, reference):
        result = _run(
            _build_regional(executor="thread", region_workers=2)
        )
        _assert_matches_reference(result, reference)

    @pytest.mark.parametrize("region_workers", [1, 2, 4])
    def test_process_executor_bit_identical(self, reference, region_workers):
        """Each region brings its own shared-memory process pools; the
        hierarchical run must equal flat serial at every per-region
        worker budget."""
        result = _run(
            _build_regional(executor="process", region_workers=region_workers)
        )
        _assert_matches_reference(result, reference)

    def test_constant_memory_summary_bit_identical(self, reference):
        """``run(keep_reports=False)`` — the columnar hot loop under the
        process strategy — produces the flat fleet's summary, final
        full report included."""
        _decisions, summary_ref, _lifecycle, _stats, orders_ref = reference
        with _build_regional(executor="process", region_workers=1) as fleet:
            summary = fleet.run(EPOCHS, keep_reports=False)
        assert _summary_key(summary) == _summary_key(summary_ref)
        assert list(summary.final_report.shard_reports) == orders_ref[-1]

    def test_region_summaries_merge_to_flat(self, reference):
        """Per-region summaries (regions run to completion one after
        another) roll up to the flat summary via
        ``FleetRunSummary.merge`` — the constant-memory region path."""
        _decisions, summary_ref, _lifecycle, _stats, orders_ref = reference
        with _build_regional(num_regions=2) as fleet:
            per_region = fleet.run_summaries(EPOCHS)
        merged = FleetRunSummary.merge(per_region.values())
        assert _summary_key(merged) == _summary_key(summary_ref)
        assert list(merged.final_report.shard_reports) == orders_ref[-1]
