"""Property-based tests (hypothesis) on core invariants.

These check that the contention substrate, the normalisation layer and
the clustering machinery behave sanely for *any* physically meaningful
input, not just the hand-picked cases of the unit tests.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.clustering.scaling import StandardScaler
from repro.hardware.demand import ResourceDemand
from repro.hardware.machine import PhysicalMachine
from repro.metrics.counters import CounterSample
from repro.metrics.cpi import CPIStackModel, Resource, degradation_from_instructions
from repro.metrics.sample import MetricVector
from repro.workloads.synthetic import SyntheticBenchmark, SyntheticInputs

_MACHINE = PhysicalMachine(noise=0.0, seed=123)

demand_strategy = st.builds(
    ResourceDemand,
    instructions=st.floats(min_value=0.0, max_value=2e10),
    vcpus=st.integers(min_value=1, max_value=8),
    working_set_mb=st.floats(min_value=0.0, max_value=2048.0),
    loads_pki=st.floats(min_value=0.0, max_value=800.0),
    l1_miss_pki=st.floats(min_value=0.0, max_value=300.0),
    ifetch_pki=st.floats(min_value=0.0, max_value=20.0),
    branches_pki=st.floats(min_value=0.0, max_value=400.0),
    branch_mispredict_rate=st.floats(min_value=0.0, max_value=0.2),
    locality=st.floats(min_value=0.0, max_value=1.0),
    disk_mb=st.floats(min_value=0.0, max_value=500.0),
    disk_sequential_fraction=st.floats(min_value=0.0, max_value=1.0),
    network_mbit=st.floats(min_value=0.0, max_value=4000.0),
    write_fraction=st.floats(min_value=0.0, max_value=1.0),
)

counter_strategy = st.builds(
    CounterSample,
    cpu_unhalted=st.floats(min_value=0.0, max_value=1e12),
    # Any real monitoring epoch retires many instructions; the per-kilo-
    # instruction normalisation is only meaningful above that floor.
    inst_retired=st.floats(min_value=1e4, max_value=1e12),
    l1d_repl=st.floats(min_value=0.0, max_value=1e10),
    l2_ifetch=st.floats(min_value=0.0, max_value=1e9),
    l2_lines_in=st.floats(min_value=0.0, max_value=1e10),
    mem_load=st.floats(min_value=0.0, max_value=1e11),
    resource_stalls=st.floats(min_value=0.0, max_value=1e12),
    bus_tran_any=st.floats(min_value=0.0, max_value=1e10),
    bus_trans_ifetch=st.floats(min_value=0.0, max_value=1e9),
    bus_tran_brd=st.floats(min_value=0.0, max_value=1e10),
    bus_req_out=st.floats(min_value=0.0, max_value=1e12),
    br_miss_pred=st.floats(min_value=0.0, max_value=1e9),
    disk_stall_cycles=st.floats(min_value=0.0, max_value=1e12),
    net_stall_cycles=st.floats(min_value=0.0, max_value=1e12),
)


class TestMachineInvariants:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(demand=demand_strategy)
    def test_epoch_outcome_is_physical(self, demand):
        outcome = _MACHINE.run_in_isolation(demand)
        # Counters are finite and non-negative.
        outcome.counters.validate()
        # A VM never retires more than it asked for, nor more than it could.
        assert outcome.instructions_retired <= demand.instructions + 1e-6
        assert outcome.instructions_retired <= outcome.instructions_attainable + 1e-6
        assert 0.0 <= outcome.progress <= 1.0 + 1e-9
        # I/O stalls never exceed the epoch's worth of cycles per core.
        arch = _MACHINE.spec.architecture
        max_cycles = arch.frequency_hz * demand.vcpus
        assert outcome.counters.disk_stall_cycles <= max_cycles + 1e-6
        assert outcome.counters.net_stall_cycles <= max_cycles + 1e-6

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(demand=demand_strategy, load_factor=st.floats(min_value=0.1, max_value=1.0))
    def test_colocated_vm_never_faster_than_alone(self, demand, load_factor):
        """Adding a co-runner can only slow a VM down (work-conserving model)."""
        competitor = ResourceDemand(
            instructions=3e9,
            working_set_mb=256.0,
            l1_miss_pki=120.0,
            locality=0.05,
            disk_mb=20.0,
            network_mbit=500.0,
        )
        scaled = demand.scaled(load_factor)
        alone = _MACHINE.run_in_isolation(scaled)
        together = _MACHINE.run_epoch({"vm": scaled, "other": competitor}).per_vm["vm"]
        assert together.instructions_retired <= alone.instructions_retired * 1.01 + 1.0


class TestNormalizationInvariants:
    @settings(max_examples=50, deadline=None)
    @given(sample=counter_strategy)
    def test_metric_vector_always_finite(self, sample):
        vector = MetricVector.from_sample(sample)
        values = vector.as_array()
        assert np.all(np.isfinite(values))
        assert 0.0 <= vector["cpu_utilization"] <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(sample=counter_strategy, factor=st.floats(min_value=0.1, max_value=100.0))
    def test_normalisation_invariant_under_uniform_scaling(self, sample, factor):
        """Scaling all counters together (a pure load change) leaves the
        normalised vector unchanged."""
        # Physically, a core cannot retire more than a few instructions
        # per cycle; degenerate cycle counts break the utilisation ratio.
        assume(sample.cpu_unhalted >= sample.inst_retired / 4.0)
        scaled = sample.scaled(factor)
        original = MetricVector.from_sample(sample).as_array()
        rescaled = MetricVector.from_sample(scaled).as_array()
        assert np.allclose(original, rescaled, rtol=1e-6, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(prod=counter_strategy, iso=counter_strategy)
    def test_degradation_bounded(self, prod, iso):
        value = degradation_from_instructions(prod, iso)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(prod=counter_strategy, iso=counter_strategy)
    def test_cpi_stack_factors_finite_and_culprit_not_core(self, prod, iso):
        model = CPIStackModel.for_architecture("xeon_x5472")
        stack = model.compare(prod, iso)
        factors = stack.factors()
        assert all(np.isfinite(v) for v in factors.values())
        assert set(factors) == set(Resource)


class TestSyntheticInputInvariants:
    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=len(SyntheticInputs().as_array()),
        max_size=len(SyntheticInputs().as_array()),
    ))
    def test_from_array_clipped_demand_is_valid(self, values):
        inputs = SyntheticInputs.from_array(values)
        demand = SyntheticBenchmark(inputs=inputs).demand(1.0)
        demand.validate()


class TestScalerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(data=st.lists(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=3),
        min_size=2, max_size=40,
    ))
    def test_roundtrip(self, data):
        matrix = np.array(data, dtype=float)
        scaler = StandardScaler().fit(matrix)
        restored = scaler.inverse_transform(scaler.transform(matrix))
        assert np.allclose(restored, matrix, rtol=1e-6, atol=1e-6)
