"""Fault-recovery equivalence properties (the PR-9 contract).

A process fleet whose worker is SIGKILLed mid-run — before, during or
after an epoch's shard work — must, under a
:class:`~repro.fleet.supervisor.FaultPolicy`, respawn the worker,
rehydrate its shards, replay the missed epochs and finish the run
**bit-identical** to an undisturbed one: same per-epoch warning
decisions (exact distances included), same run summary, same lifecycle
counters.  The contract holds:

* at 1/2/4 workers (a single-worker fleet loses *everything* and
  recovers it all from replay);
* for kills at every fault point (``before``/``mid``/``after`` the
  epoch's shard work);
* recovering from the run-start template (full replay) and from
  mid-run recovery snapshots (``resnapshot_every`` bounds the replay);
* for flat and regional topologies (a regional failure is contained to
  its region);
* and with the restart budget exhausted under
  ``on_exhaustion="quarantine"``, the run *completes* with the dead
  worker's shards explicitly manifested instead of raising.

The scenario churns (arrivals, departures, a drain/return, a flash
crowd) so replay must reproduce lifecycle state, not just shard state.
Every test asserts ``/dev/shm`` ends empty — recovery may not leak the
dead worker's transport segments.
"""

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FaultPlan,
    FaultPolicy,
    FleetRunSummary,
    FlashCrowd,
    HostDrain,
    HostReturn,
    InterferenceEpisode,
    LoadPhase,
    RunOptions,
    WorkerFault,
    build_fleet,
    build_regional_fleet,
    churn_timeline,
    synthesize_datacenter,
)
from repro.fleet.shm import leaked_segments

EPOCHS = 10
SHARD_IDS = ["shard0", "shard1", "shard2", "shard3"]


def _timeline():
    timeline = churn_timeline(
        SHARD_IDS,
        epochs=EPOCHS,
        seed=5,
        arrivals_per_epoch=1.0,
        mean_lifetime_epochs=6.0,
    )
    timeline.add(HostDrain(epoch=4, shard="shard0", host="s0pm1"))
    timeline.add(HostReturn(epoch=8, shard="shard0", host="s0pm1"))
    timeline.add(FlashCrowd(epoch=5, shard="shard1", end_epoch=9, scale=1.4))
    timeline.add(LoadPhase(epoch=3, shard="shard2", scale=0.8))
    timeline.add(LoadPhase(epoch=7, shard="shard2", scale=1.0))
    return timeline


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
        smoothing_epochs=2,
    )


def _scenario():
    return synthesize_datacenter(
        16,
        num_shards=4,
        seed=23,
        episodes=[
            InterferenceEpisode(
                shard=1, host_index=1, start_epoch=3, end_epoch=6, kind="memory"
            )
        ],
        timeline=_timeline(),
    )


def _build(
    executor=None,
    max_workers=None,
    regional=False,
    fault_policy=None,
    fault_plan=None,
):
    if regional:
        fleet = build_regional_fleet(
            _scenario(),
            num_regions=2,
            config=_config(),
            mitigate=True,
            executor=executor,
            region_workers=max_workers,
            fault_policy=fault_policy,
            fault_plans={"region0": fault_plan} if fault_plan else None,
        )
    else:
        fleet = build_fleet(
            _scenario(),
            config=_config(),
            mitigate=True,
            executor=executor,
            max_workers=max_workers,
            fault_policy=fault_policy,
            fault_plan=fault_plan,
        )
    fleet.bootstrap()
    return fleet


def _decision_key(report):
    """Everything the warning system decided, exact distances included."""
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


def _summary_key(summary: FleetRunSummary):
    return (
        summary.epochs,
        summary.observations,
        summary.analyzer_invocations,
        summary.confirmed_interference,
        summary.action_histogram,
    )


def _drive(fleet, epochs):
    """Stream ``epochs`` epochs: per-epoch decisions + running summary."""
    decisions = []
    summary = FleetRunSummary()
    for report in fleet.stream(epochs, RunOptions(report="full")):
        decisions.append(_decision_key(report))
        summary.accumulate(report)
    return decisions, summary


def _run(fleet):
    try:
        decisions, summary = _drive(fleet, EPOCHS)
        lifecycle = fleet.lifecycle_stats()
        health = fleet.worker_health()
    finally:
        fleet.shutdown()
    return decisions, summary, lifecycle, health


@pytest.fixture(scope="module")
def reference():
    """The undisturbed serial flat churn run."""
    return _run(_build())


def _assert_matches_reference(result, reference, label):
    decisions, summary, lifecycle = result[:3]
    decisions_ref, summary_ref, lifecycle_ref = reference[:3]
    assert len(decisions) == len(decisions_ref)
    for epoch, (a, b) in enumerate(zip(decisions_ref, decisions)):
        assert a == b, f"{label}: decisions diverge at epoch {epoch}"
    assert _summary_key(summary) == _summary_key(summary_ref), label
    assert summary.missing_shards == (), label
    assert lifecycle == lifecycle_ref, label


def _kill_plan(epoch, point, worker=0):
    return FaultPlan(
        faults=(WorkerFault(kind="kill", worker=worker, epoch=epoch, point=point),)
    )


class TestFaultRecoveryEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize(
        "epoch,point", [(3, "before"), (5, "mid"), (7, "after")]
    )
    def test_kill_recovery_bit_identical(self, reference, workers, epoch, point):
        """A SIGKILLed worker is respawned, replayed from the run-start
        template, and the completed run matches the undisturbed serial
        reference exactly — at every worker count and fault point."""
        result = _run(
            _build(
                executor="process",
                max_workers=workers,
                fault_policy=FaultPolicy(restarts=2),
                fault_plan=_kill_plan(epoch, point),
            )
        )
        _assert_matches_reference(
            result, reference, f"workers={workers} kill@{epoch}/{point}"
        )
        health = result[3]
        assert [row["restarts"] for row in health] == [1] + [0] * (workers - 1)
        assert all(row["alive"] for row in health)
        assert leaked_segments() == []

    def test_recovery_from_midrun_snapshot(self, reference):
        """``resnapshot_every`` recovers from the last cadence snapshot
        instead of replaying the whole history — still bit-identical."""
        result = _run(
            _build(
                executor="process",
                max_workers=2,
                fault_policy=FaultPolicy(restarts=2, resnapshot_every=2),
                fault_plan=_kill_plan(7, "mid"),
            )
        )
        _assert_matches_reference(result, reference, "resnapshot_every=2")
        assert leaked_segments() == []

    def test_regional_failure_contained(self, reference):
        """A worker kill inside one region recovers within that region;
        the merged hierarchical run still matches the flat reference."""
        result = _run(
            _build(
                executor="process",
                max_workers=2,
                regional=True,
                fault_policy=FaultPolicy(restarts=2),
                fault_plan=_kill_plan(5, "mid"),
            )
        )
        _assert_matches_reference(result, reference, "regional kill")
        health = result[3]
        restarted = [row for row in health if row["restarts"]]
        assert [row["region"] for row in restarted] == ["region0"]
        assert leaked_segments() == []

    def test_quarantine_completes_degraded(self, reference):
        """With the restart budget exhausted, quarantine mode finishes
        the run: the dead worker's shards are excluded and explicitly
        manifested on every later report and on the summary — and the
        surviving shards still decide exactly what the reference did."""
        fleet = _build(
            executor="process",
            max_workers=2,
            fault_policy=FaultPolicy(restarts=0, on_exhaustion="quarantine"),
            fault_plan=_kill_plan(4, "mid", worker=1),
        )
        decisions, summary, lifecycle, health = _run(fleet)
        # Worker 1 of 2 owns the odd round-robin shards.
        dead = ("shard1", "shard3")
        assert summary.missing_shards == dead
        assert summary.degraded
        assert summary.final_report.missing_shards == dead
        quarantined = [row for row in health if row["quarantined"]]
        assert [row["worker"] for row in quarantined] == [1]
        decisions_ref = reference[0]
        for epoch, (mine, ref) in enumerate(zip(decisions, decisions_ref)):
            expected = (
                ref
                if epoch < 4
                else {k: v for k, v in ref.items() if k[0] not in dead}
            )
            assert mine == expected, f"degraded decisions diverge at {epoch}"
        assert leaked_segments() == []
