"""Checkpoint/resume equivalence properties (the PR-8 contract).

A run interrupted by ``snapshot()`` at any epoch ``k`` and continued by
``resume()`` must be **bit-identical** to an uninterrupted run — same
per-epoch warning decisions (exact distances included), same run
summary, same lifecycle counters.  The contract holds:

* across shard executors (``serial`` / ``thread`` / ``process``) at
  1/2/4 workers — a process fleet snapshots the *workers'* live state;
* across topologies (flat :class:`~repro.fleet.Fleet` vs hierarchical
  :class:`~repro.fleet.RegionalFleet` regional splits);
* across the file boundary (save → load → resume equals in-memory
  resume, and the checkpoint file passes deep schema validation);
* **cross-executor**: a checkpoint taken under one executor resumes
  under any other, still bit-identically;
* at every split point ``k`` (including ``k=0``, right after
  bootstrap);
* and snapshotting is read-only — a run that checkpoints every epoch
  decides exactly what an unobserved run decides.

The scenario churns (arrivals, departures, a host drain and return, a
flash crowd over load phases) precisely so the checkpoint must carry
the lifecycle engine's accumulated state, not just the shard objects.
"""

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    Checkpoint,
    Fleet,
    FleetRunSummary,
    FlashCrowd,
    HostDrain,
    HostReturn,
    InterferenceEpisode,
    LoadPhase,
    RegionalFleet,
    RunOptions,
    build_fleet,
    build_regional_fleet,
    churn_timeline,
    resume_fleet,
    synthesize_datacenter,
    validate_checkpoint_file,
)

EPOCHS = 10
SPLIT = 3


def _timeline():
    timeline = churn_timeline(
        ["shard0", "shard1"],
        epochs=EPOCHS,
        seed=5,
        arrivals_per_epoch=1.0,
        mean_lifetime_epochs=6.0,
    )
    timeline.add(HostDrain(epoch=4, shard="shard0", host="s0pm1"))
    timeline.add(HostReturn(epoch=8, shard="shard0", host="s0pm1"))
    timeline.add(FlashCrowd(epoch=5, shard="shard1", end_epoch=9, scale=1.4))
    timeline.add(LoadPhase(epoch=3, shard="shard0", scale=0.8))
    timeline.add(LoadPhase(epoch=7, shard="shard0", scale=1.0))
    return timeline


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
        smoothing_epochs=2,
    )


def _scenario():
    return synthesize_datacenter(
        16,
        num_shards=2,
        seed=23,
        episodes=[
            InterferenceEpisode(
                shard=1, host_index=1, start_epoch=3, end_epoch=6, kind="memory"
            )
        ],
        timeline=_timeline(),
    )


def _build(executor=None, max_workers=None, regional=False):
    if regional:
        fleet = build_regional_fleet(
            _scenario(),
            num_regions=2,
            config=_config(),
            mitigate=True,
            executor=executor,
            region_workers=max_workers,
        )
    else:
        fleet = build_fleet(
            _scenario(),
            config=_config(),
            mitigate=True,
            executor=executor,
            max_workers=max_workers,
        )
    fleet.bootstrap()
    return fleet


def _decision_key(report):
    """Everything the warning system decided, exact distances included."""
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


def _summary_key(summary: FleetRunSummary):
    return (
        summary.epochs,
        summary.observations,
        summary.analyzer_invocations,
        summary.confirmed_interference,
        summary.action_histogram,
    )


def _drive(fleet, epochs):
    """Stream ``epochs`` epochs: per-epoch decisions + running summary."""
    decisions = []
    summary = FleetRunSummary()
    for report in fleet.stream(epochs, RunOptions(report="full")):
        decisions.append(_decision_key(report))
        summary.accumulate(report)
    return decisions, summary


def _run_uninterrupted(fleet):
    try:
        decisions, summary = _drive(fleet, EPOCHS)
        lifecycle = fleet.lifecycle_stats()
    finally:
        fleet.shutdown()
    return decisions, summary, lifecycle


def _run_interrupted(
    fleet, split=SPLIT, via_file=None, resume_executor=None, resume_workers=None
):
    """Run ``split`` epochs, checkpoint, kill the fleet, resume, finish."""
    try:
        decisions, summary = _drive(fleet, split)
        checkpoint = fleet.snapshot(via_file, summary=summary)
    finally:
        fleet.shutdown()
    source = via_file if via_file is not None else checkpoint
    resumed = resume_fleet(
        source, executor=resume_executor, max_workers=resume_workers
    )
    assert resumed.current_epoch == split
    try:
        rest_decisions, rest_summary = _drive(resumed, EPOCHS - split)
        lifecycle = resumed.lifecycle_stats()
    finally:
        resumed.shutdown()
    carried = checkpoint.state()["summary"]
    carried.extend(rest_summary)
    return decisions + rest_decisions, carried, lifecycle, resumed


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted serial flat churn run."""
    return _run_uninterrupted(_build())


def _assert_matches_reference(result, reference, label):
    decisions, summary, lifecycle = result[:3]
    decisions_ref, summary_ref, lifecycle_ref = reference
    assert len(decisions) == len(decisions_ref)
    for epoch, (a, b) in enumerate(zip(decisions_ref, decisions)):
        assert a == b, f"{label}: decisions diverge at epoch {epoch}"
    assert _summary_key(summary) == _summary_key(summary_ref), label
    assert lifecycle == lifecycle_ref, label


class TestCheckpointEquivalence:
    @pytest.mark.parametrize(
        "executor,workers,regional",
        [
            ("serial", None, False),
            ("thread", 2, False),
            ("process", 2, False),
            ("process", 4, False),
            ("serial", None, True),
            ("process", 2, True),
        ],
        ids=[
            "serial-flat",
            "thread2-flat",
            "process2-flat",
            "process4-flat",
            "serial-regional",
            "process2-regional",
        ],
    )
    def test_resume_bit_identical(self, reference, executor, workers, regional):
        """``resume(snapshot(at=k)).run(n-k)`` == ``run(n)`` for every
        executor/worker/topology combination, against the serial flat
        reference."""
        fleet = _build(executor=executor, max_workers=workers, regional=regional)
        result = _run_interrupted(fleet)
        _assert_matches_reference(
            result, reference, f"{executor}/{workers}/regional={regional}"
        )
        resumed = result[3]
        assert isinstance(resumed, RegionalFleet if regional else Fleet)

    def test_every_split_point(self, reference):
        """The contract holds wherever the run is cut — including k=0
        (checkpoint straight after bootstrap) and k=n-1."""
        for split in (0, 1, 5, EPOCHS - 1):
            result = _run_interrupted(_build(), split=split)
            _assert_matches_reference(result, reference, f"split={split}")

    @pytest.mark.parametrize(
        "snap_exec,snap_workers,resume_exec,resume_workers",
        [
            ("process", 2, "serial", None),
            ("serial", None, "process", 2),
            ("thread", 2, "process", 4),
        ],
        ids=["process-to-serial", "serial-to-process", "thread-to-process"],
    )
    def test_cross_executor_resume(
        self, reference, snap_exec, snap_workers, resume_exec, resume_workers
    ):
        """A checkpoint is executor-neutral: state snapshotted under one
        strategy continues bit-identically under any other."""
        fleet = _build(executor=snap_exec, max_workers=snap_workers)
        result = _run_interrupted(
            fleet, resume_executor=resume_exec, resume_workers=resume_workers
        )
        _assert_matches_reference(
            result, reference, f"{snap_exec}->{resume_exec}"
        )
        assert result[3].executor == resume_exec

    def test_file_roundtrip(self, reference, tmp_path):
        """Through the file: save → deep-validate → load → resume is as
        bit-identical as the in-memory checkpoint object."""
        path = tmp_path / "fleet.ckpt"
        result = _run_interrupted(_build(), via_file=path)
        meta = validate_checkpoint_file(path, deep=True)
        assert meta["epoch"] == SPLIT
        assert meta["kind"] == "fleet"
        assert meta["has_summary"] is True
        _assert_matches_reference(result, reference, "file-roundtrip")

    def test_regional_file_roundtrip(self, reference, tmp_path):
        path = tmp_path / "regional.ckpt"
        result = _run_interrupted(_build(regional=True), via_file=path)
        meta = validate_checkpoint_file(path, deep=True)
        assert meta["kind"] == "regional"
        assert [entry["region_id"] for entry in meta["regions"]] == [
            "region0",
            "region1",
        ]
        _assert_matches_reference(result, reference, "regional-file")

    def test_snapshot_does_not_perturb_the_run(self, reference):
        """Snapshotting every epoch must not change a single decision —
        the snapshot path is strictly read-only (including the worker
        round trip under the process executor)."""
        fleet = _build(executor="process", max_workers=2)
        decisions = []
        summary = FleetRunSummary()
        try:
            for report in fleet.stream(EPOCHS, RunOptions(report="full")):
                decisions.append(_decision_key(report))
                summary.accumulate(report)
                fleet.snapshot()  # discard: only the side effects matter
            lifecycle = fleet.lifecycle_stats()
        finally:
            fleet.shutdown()
        _assert_matches_reference(
            (decisions, summary, lifecycle), reference, "observed-run"
        )

    def test_two_resumes_do_not_alias(self):
        """One checkpoint, two resumes: the fleets evolve independently
        (``Checkpoint.state()`` unpickles fresh per call)."""
        fleet = _build()
        try:
            _drive(fleet, SPLIT)
            checkpoint = fleet.snapshot()
        finally:
            fleet.shutdown()
        first = Fleet.resume(checkpoint)
        second = Fleet.resume(checkpoint)
        try:
            decisions_a, _ = _drive(first, EPOCHS - SPLIT)
            decisions_b, _ = _drive(second, EPOCHS - SPLIT)
        finally:
            first.shutdown()
            second.shutdown()
        assert decisions_a == decisions_b
        assert first.shards["shard0"] is not second.shards["shard0"]

    def test_summary_survives_byte_roundtrip(self):
        """The carried summary travels inside the checkpoint bytes."""
        fleet = _build()
        try:
            _, summary = _drive(fleet, SPLIT)
            checkpoint = fleet.snapshot(summary=summary)
        finally:
            fleet.shutdown()
        reloaded = Checkpoint.from_bytes(checkpoint.to_bytes())
        carried = reloaded.state()["summary"]
        assert _summary_key(carried) == _summary_key(summary)
