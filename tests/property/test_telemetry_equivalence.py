"""Telemetry-transparency properties.

The telemetry bus (:mod:`repro.fleet.telemetry`) observes the run path
— it must never steer it.  Every decision the warning system makes and
every :class:`~repro.fleet.fleet.FleetRunSummary` total must be
**bit-identical** with telemetry off, fully on, or sampled
(``profile_every > 1``), across

* executors (``serial`` / ``thread`` / ``process``) at 1/2/4 workers,
* flat vs. hierarchical (regional) topologies,

on a scenario busy enough to exercise the instrumented paths: churn
through the admission policy, a scheduled interference episode, and the
columnar shared-memory exchange under the process executor (whose
descriptors additionally carry the workers' span batches).
"""

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetRunSummary,
    InterferenceEpisode,
    RunOptions,
    TelemetryConfig,
    build_fleet,
    build_regional_fleet,
    churn_timeline,
    synthesize_datacenter,
)

EPOCHS = 8
NUM_SHARDS = 4

#: Full profiling and a sampled cadence — both must be invisible.
TELEMETRY_MODES = {
    "off": None,
    "on": TelemetryConfig(enabled=True, profile_every=1),
    "sampled": TelemetryConfig(enabled=True, profile_every=3),
}


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
        smoothing_epochs=2,
    )


def _scenario():
    shard_ids = [f"shard{s}" for s in range(NUM_SHARDS)]
    timeline = churn_timeline(
        shard_ids,
        epochs=EPOCHS,
        seed=11,
        arrivals_per_epoch=0.5,
        mean_lifetime_epochs=5.0,
    )
    return synthesize_datacenter(
        16,
        num_shards=NUM_SHARDS,
        seed=29,
        episodes=[
            InterferenceEpisode(
                shard=1, host_index=1, start_epoch=2, end_epoch=6, kind="memory"
            )
        ],
        timeline=timeline,
    )


def _build(mode, executor=None, max_workers=None, regional=False):
    telemetry = TELEMETRY_MODES[mode]
    if regional:
        fleet = build_regional_fleet(
            _scenario(),
            num_regions=2,
            config=_config(),
            mitigate=True,
            executor=executor,
            region_workers=max_workers,
            telemetry=telemetry,
        )
    else:
        fleet = build_fleet(
            _scenario(),
            config=_config(),
            mitigate=True,
            executor=executor,
            max_workers=max_workers,
            telemetry=telemetry,
        )
    fleet.bootstrap()
    return fleet


def _decision_key(report):
    """Everything the warning system decided, exact distances included."""
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


def _summary_key(summary: FleetRunSummary):
    return (
        summary.epochs,
        summary.observations,
        summary.analyzer_invocations,
        summary.confirmed_interference,
        summary.action_histogram,
    )


def _run(fleet):
    summary = FleetRunSummary()
    decisions = []
    try:
        for _ in range(EPOCHS):
            report = fleet.run_epoch(analyze=True)
            decisions.append(_decision_key(report))
            summary.accumulate(report)
        stats = fleet.stats()
    finally:
        fleet.shutdown()
    return decisions, summary, stats


@pytest.fixture(scope="module")
def reference():
    """The flat serial telemetry-off run."""
    return _run(_build("off"))


def _assert_matches(result, reference):
    decisions, summary, stats = result
    decisions_ref, summary_ref, stats_ref = reference
    for epoch, (a, b) in enumerate(zip(decisions_ref, decisions)):
        assert a == b, f"decisions diverge at epoch {epoch}"
    assert _summary_key(summary) == _summary_key(summary_ref)
    for key, value in stats_ref.items():
        if key == "regions":
            continue
        assert stats[key] == value, f"stats[{key}]"


class TestTelemetryEquivalence:
    def test_scenario_active(self, reference):
        """A quiet fleet would vacuously pass every check below."""
        _decisions, summary, _stats = reference
        assert summary.confirmed_interference > 0
        assert summary.observations > 0

    @pytest.mark.parametrize("mode", ["on", "sampled"])
    def test_serial_bit_identical(self, reference, mode):
        _assert_matches(_run(_build(mode)), reference)

    @pytest.mark.parametrize("max_workers", [2, 4])
    @pytest.mark.parametrize("mode", ["on", "sampled"])
    def test_thread_bit_identical(self, reference, mode, max_workers):
        result = _run(_build(mode, executor="thread", max_workers=max_workers))
        _assert_matches(result, reference)

    @pytest.mark.parametrize("max_workers", [1, 2, 4])
    def test_process_bit_identical(self, reference, max_workers):
        """Workers ship their span batches on the columnar descriptors;
        the decision columns must not notice."""
        fleet = _build("on", executor="process", max_workers=max_workers)
        result = _run(fleet)
        _assert_matches(result, reference)
        # The registry really recorded the run it just proved invisible.
        assert fleet.telemetry.counter("epochs_total") == EPOCHS
        totals = fleet.telemetry.span_totals()
        assert totals["epoch"]["count"] == EPOCHS
        assert totals["dispatch"]["count"] == EPOCHS
        assert totals["merge"]["count"] == EPOCHS

    @pytest.mark.parametrize("mode", ["on", "sampled"])
    def test_process_columnar_stream_bit_identical(self, reference, mode):
        """The hot ``keep_reports=False`` columnar loop — where worker
        deep spans ride the shm descriptors back — folds to the same
        summary, and the parent trace gains per-worker tracks."""
        _decisions, summary_ref, _stats = reference
        fleet = _build(mode, executor="process", max_workers=2)
        summary = fleet.run(EPOCHS, RunOptions(analyze=True, keep_reports=False))
        registry = fleet.telemetry
        fleet.shutdown()
        assert _summary_key(summary) == _summary_key(summary_ref)
        totals = registry.span_totals()
        assert totals["epoch"]["count"] == EPOCHS
        assert totals["simulate"]["count"] > 0
        worker_pids = {
            span["pid"]
            for span in registry.spans()
            if span["kind"] == "simulate"
        }
        assert worker_pids and all(
            pid != registry._pid for pid in worker_pids
        ), "worker deep spans must land under worker pids"
        if mode == "sampled":
            # Sampling thins the deep spans but never the coarse ones.
            assert totals["simulate"]["count"] < NUM_SHARDS * EPOCHS

    @pytest.mark.parametrize("mode", ["on", "sampled"])
    def test_regional_bit_identical(self, reference, mode):
        """One shared registry across every region, still invisible."""
        fleet = _build(mode, executor="process", max_workers=2, regional=True)
        result = _run(fleet)
        _assert_matches(result, reference)
        # Epoch spans tick once per fleet-wide epoch, not per region.
        assert fleet.telemetry.counter("epochs_total") == EPOCHS
        assert fleet.telemetry.span_totals()["epoch"]["count"] == EPOCHS

    def test_profile_env_switch(self, reference, monkeypatch):
        """``REPRO_FLEET_PROFILE=1`` instruments fleets built with no
        explicit telemetry argument — identically invisibly."""
        monkeypatch.setenv("REPRO_FLEET_PROFILE", "1")
        fleet = build_fleet(_scenario(), config=_config(), mitigate=True)
        assert fleet.telemetry is not None
        fleet.bootstrap()
        _assert_matches(_run(fleet), reference)
