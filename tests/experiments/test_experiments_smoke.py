"""Fast smoke tests for every experiment driver.

The full parameterisations run in ``benchmarks/``; here each figure's
driver is executed with tiny parameters to make sure the plumbing works
and the headline qualitative property holds.
"""

import math


from repro.experiments import (
    fig01_motivation,
    fig04_clusters,
    fig05_global,
    fig06_breakdown,
    fig07_i7_port,
    fig08_detection,
    fig09_degradation,
    fig11_placement,
    fig12_overhead,
    fig13_reaction_poisson,
    fig14_reaction_lognormal,
)
from repro.experiments.common import (
    CLOUD_WORKLOADS,
    PAIRED_STRESS,
    client_reported_degradation,
    instruction_rate_degradation,
    run_colocation,
)


class TestCommonHelpers:
    def test_run_colocation_isolation_vs_stress(self):
        iso = run_colocation("data_serving", load=1.1, epochs=5, seed=1)
        prod = run_colocation(
            "data_serving",
            load=1.1,
            stress_kind="memory",
            stress_level=0.4,
            stress_kwargs={"working_set_mb": 128.0},
            epochs=5,
            seed=1,
        )
        assert instruction_rate_degradation(prod, iso) > 0.05
        assert client_reported_degradation(prod, iso) > 0.05

    def test_paired_stress_covers_all_workloads(self):
        assert set(PAIRED_STRESS) == set(CLOUD_WORKLOADS)


class TestFigureSmoke:
    def test_fig01(self):
        result = fig01_motivation.run(epochs=48)
        assert result.throughput_drop_fraction() > 0.2

    def test_fig04(self):
        result = fig04_clusters.run(
            workloads=("data_serving",),
            load_levels=(0.4, 0.8),
            variations_per_workload=1,
            interference_levels=(1.0,),
            epochs=4,
        )
        assert result.per_workload["data_serving"].separation > 2.0

    def test_fig05(self):
        result = fig05_global.run(num_hosts=4, num_interfered=1, epochs=4)
        assert result.separation > 2.0

    def test_fig06(self):
        result = fig06_breakdown.run(workloads=("web_search",), epochs=5)
        assert result.accuracy() >= 2.0 / 3.0

    def test_fig07(self):
        result = fig07_i7_port.run(
            load_levels=(0.5,), interference_levels=(1.0,), epochs=4
        )
        assert result.separation > 2.0

    def test_fig08(self):
        result = fig08_detection.run_workload(
            "data_serving", days=2, epochs_per_day=24, seed=3
        )
        assert result.detection_rates()[-1] >= 0.9
        assert result.missed_episodes == 0

    def test_fig09(self):
        result = fig09_degradation.run_workload("data_analytics", epochs=6)
        assert result.mean_absolute_error() < 0.10

    def test_fig11(self):
        result = fig11_placement.run(eval_epochs=6, use_synthetic=False)
        assert result.chosen_degradation <= result.average_degradation + 0.05

    def test_fig12(self):
        result = fig12_overhead.run(days=1, epochs_per_day=24)
        assert result.deepdive.final_minutes < result.baseline(0.05).final_minutes

    def test_fig13(self):
        result = fig13_reaction_poisson.run(
            interference_fractions=(0.2, 0.6),
            servers=(2, 8),
            alphas=(1.0, math.inf),
            days=1.0,
        )
        assert result.mean_reaction("local", 8, 0.6) <= result.mean_reaction(
            "local", 2, 0.6
        )

    def test_fig14(self):
        result = fig14_reaction_lognormal.run(
            interference_fractions=(0.2,),
            servers=(4,),
            alphas=(1.0, math.inf),
            days=1.0,
        )
        assert result.mean_reaction("local", 4, 0.2) > 0.0
