"""Tests for the shared experiment infrastructure."""

import pytest

from repro.experiments.common import (
    CLOUD_WORKLOADS,
    PAIRED_STRESS,
    centroid_separation,
    client_reported_degradation,
    instruction_rate_degradation,
    latency_reported_degradation,
    make_stress_vm,
    make_victim_vm,
    run_colocation,
)
from repro.metrics.sample import MetricVector
from repro.metrics.counters import CounterSample


class TestBuilders:
    @pytest.mark.parametrize("name", CLOUD_WORKLOADS)
    def test_make_victim_vm(self, name):
        vm = make_victim_vm(name)
        assert vm.workload.name == name
        assert vm.vcpus == 2

    def test_make_victim_vm_kwargs(self):
        vm = make_victim_vm("data_serving", key_skew=0.9)
        assert vm.workload.key_skew == pytest.approx(0.9)

    @pytest.mark.parametrize("kind", ["memory", "network", "disk"])
    def test_make_stress_vm(self, kind, data_serving_vm):
        vm = make_stress_vm(kind)
        assert vm.memory_gb == pytest.approx(1.0)


class TestColocationRuns:
    def test_isolation_run_structure(self):
        run = run_colocation("web_search", load=0.6, epochs=4, seed=2)
        assert len(run.victim_samples) == 4
        assert len(run.victim_reports) == 4
        assert run.mean_inst_rate > 0
        assert run.mean_request_rate > 0
        assert run.stress_kind is None
        assert len(run.metric_vectors()) == 4
        aggregate = run.aggregate_counters()
        assert aggregate.epoch_seconds == pytest.approx(4.0)

    def test_stress_reduces_rates_at_saturation(self):
        iso = run_colocation("data_serving", load=1.1, epochs=4, seed=3)
        prod = run_colocation(
            "data_serving",
            load=1.1,
            stress_kind="memory",
            stress_level=0.5,
            stress_kwargs={"working_set_mb": 256.0},
            epochs=4,
            seed=3,
            share_cache_domain=True,
        )
        assert prod.mean_inst_rate < iso.mean_inst_rate
        assert instruction_rate_degradation(prod, iso) > 0.1
        assert client_reported_degradation(prod, iso) > 0.1
        assert latency_reported_degradation(prod, iso) >= 0.0

    def test_degradation_of_identical_runs_is_zero(self):
        run = run_colocation("web_search", load=0.5, epochs=3, seed=5)
        assert instruction_rate_degradation(run, run) == pytest.approx(0.0)
        assert client_reported_degradation(run, run) == pytest.approx(0.0)

    def test_paired_stress_mapping(self):
        assert PAIRED_STRESS["data_serving"] == "memory"
        assert PAIRED_STRESS["data_analytics"] == "network"
        assert PAIRED_STRESS["web_search"] == "disk"


class TestSeparation:
    def _vectors(self, scale, count=10):
        out = []
        for i in range(count):
            inst = 1e9
            sample = CounterSample(
                cpu_unhalted=2.0 * inst,
                inst_retired=inst,
                l1d_repl=0.02 * inst * scale * (1 + 0.01 * i),
                l2_lines_in=0.005 * inst * scale,
                bus_tran_any=0.008 * inst * scale,
            )
            out.append(MetricVector.from_sample(sample))
        return out

    def test_separated_groups_score_high(self):
        a = self._vectors(1.0)
        b = self._vectors(3.0)
        score = centroid_separation(
            a, b, ("l1_repl_pki", "l2_lines_in_pki", "bus_tran_pki")
        )
        assert score > 5.0

    def test_identical_groups_score_low(self):
        a = self._vectors(1.0)
        score = centroid_separation(a, a, ("l1_repl_pki", "l2_lines_in_pki"))
        assert score == pytest.approx(0.0, abs=1e-6)
