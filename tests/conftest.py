"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import DeepDiveConfig
from repro.hardware.demand import ResourceDemand
from repro.hardware.machine import PhysicalMachine
from repro.hardware.specs import CORE_I7_E5640, XEON_X5472
from repro.virt.cluster import Cluster
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host
from repro.workloads.cloud import (
    DataAnalyticsWorkload,
    DataServingWorkload,
    WebSearchWorkload,
)
from repro.workloads.stress import MemoryStressWorkload


@pytest.fixture
def machine() -> PhysicalMachine:
    """A noiseless Xeon X5472 physical machine."""
    return PhysicalMachine(spec=XEON_X5472, name="pm-test", noise=0.0, seed=7)


@pytest.fixture
def noisy_machine() -> PhysicalMachine:
    """A Xeon machine with realistic measurement noise."""
    return PhysicalMachine(spec=XEON_X5472, name="pm-noisy", noise=0.01, seed=7)


@pytest.fixture
def i7_machine() -> PhysicalMachine:
    """The Core-i7 NUMA machine from the paper's portability study."""
    return PhysicalMachine(spec=CORE_I7_E5640, name="pm-i7", noise=0.0, seed=7)


@pytest.fixture
def cpu_demand() -> ResourceDemand:
    """A compute-heavy demand that fits in the shared cache."""
    return ResourceDemand(
        instructions=1.0e9,
        vcpus=2,
        working_set_mb=4.0,
        l1_miss_pki=10.0,
        locality=0.9,
    )


@pytest.fixture
def memory_demand() -> ResourceDemand:
    """A memory-streaming demand that overflows the shared cache."""
    return ResourceDemand(
        instructions=2.0e9,
        vcpus=2,
        working_set_mb=256.0,
        l1_miss_pki=100.0,
        locality=0.05,
    )


@pytest.fixture
def io_demand() -> ResourceDemand:
    """A disk- and network-heavy demand."""
    return ResourceDemand(
        instructions=0.5e9,
        vcpus=2,
        working_set_mb=8.0,
        disk_mb=40.0,
        disk_sequential_fraction=0.5,
        network_mbit=400.0,
    )


@pytest.fixture
def host() -> Host:
    """A noiseless host."""
    return Host(name="host-test", spec=XEON_X5472, noise=0.0, seed=3)


@pytest.fixture
def cluster() -> Cluster:
    """A small three-host cluster."""
    return Cluster(num_hosts=3, seed=5, noise=0.0)


@pytest.fixture
def data_serving_vm() -> VirtualMachine:
    return VirtualMachine("cassandra-0", DataServingWorkload(), vcpus=2, memory_gb=2.0)


@pytest.fixture
def web_search_vm() -> VirtualMachine:
    return VirtualMachine("nutch-0", WebSearchWorkload(), vcpus=2, memory_gb=2.0)


@pytest.fixture
def analytics_vm() -> VirtualMachine:
    return VirtualMachine("hadoop-0", DataAnalyticsWorkload(), vcpus=2, memory_gb=2.0)


@pytest.fixture
def stress_vm() -> VirtualMachine:
    return VirtualMachine(
        "stress-0", MemoryStressWorkload(working_set_mb=128.0), vcpus=2, memory_gb=1.0
    )


@pytest.fixture
def fast_config() -> DeepDiveConfig:
    """A DeepDive configuration sized for fast tests."""
    return DeepDiveConfig(
        profile_epochs=5,
        bootstrap_load_levels=4,
        bootstrap_epochs_per_level=4,
        min_normal_behaviors=8,
        placement_eval_epochs=5,
    )
