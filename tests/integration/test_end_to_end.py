"""End-to-end integration tests: the full DeepDive loop on a small cluster."""

import pytest

from repro.core.config import DeepDiveConfig
from repro.core.deepdive import DeepDive
from repro.core.warning import WarningAction
from repro.metrics.cpi import Resource
from repro.virt.cluster import Cluster
from repro.virt.vm import VirtualMachine
from repro.workloads.cloud import DataAnalyticsWorkload, DataServingWorkload
from repro.workloads.stress import NetworkStressWorkload
from repro.workloads.traces import hotmail_like_trace


@pytest.fixture
def config():
    return DeepDiveConfig(
        profile_epochs=5,
        bootstrap_load_levels=4,
        bootstrap_epochs_per_level=4,
        min_normal_behaviors=8,
        placement_eval_epochs=5,
    )


class TestDetectAttributeMitigate:
    def test_full_cycle_network_interference(self, config):
        """Detect iperf-style interference on Data Analytics, blame the
        network, migrate the aggressor, and observe recovery."""
        cluster = Cluster(num_hosts=2, seed=77, noise=0.01)
        victim = VirtualMachine(
            "analytics",
            DataAnalyticsWorkload(remote_fetch_fraction=0.7),
            vcpus=2,
            memory_gb=2.0,
        )
        iperf = VirtualMachine(
            "iperf", NetworkStressWorkload(target_mbps=700.0), vcpus=2, memory_gb=1.0
        )
        cluster.place_vm(victim, "pm0", load=1.0)
        cluster.place_vm(iperf, "pm0", load=0.0)

        deepdive = DeepDive(cluster, config=config, mitigate=True)
        deepdive.bootstrap_vm(victim.name)

        # Quiet period: no detections.
        for _ in range(3):
            cluster.step(loads={victim.name: 1.0})
            deepdive.observe_epoch(loads={victim.name: 1.0})
        assert len(deepdive.events.detections()) == 0

        # Interference period.
        cluster.get_host("pm0").set_load(iperf.name, 1.0)
        for _ in range(4):
            cluster.step(loads={victim.name: 1.0})
            deepdive.observe_epoch(loads={victim.name: 1.0})
            if deepdive.events.migrations():
                break

        detections = [
            e for e in deepdive.events.detections() if e.vm_name == victim.name
        ]
        assert detections, "interference on the victim must be detected"
        assert detections[0].culprit is Resource.NETWORK

        migrations = deepdive.events.migrations()
        assert migrations, "the placement manager must act on confirmed interference"
        assert migrations[0].vm_name == iperf.name
        assert cluster.host_of(iperf.name) == "pm1"

        # After the migration the victim recovers.
        for _ in range(3):
            cluster.step(loads={victim.name: 1.0})
            report = deepdive.observe_epoch(loads={victim.name: 1.0})
        final = report.observations[victim.name]
        assert final.warning.action in (
            WarningAction.NORMAL,
            WarningAction.WORKLOAD_CHANGE,
        )


class TestGlobalInformationPath:
    def test_cluster_wide_load_change_is_not_interference(self, config):
        """When every replica of an application shifts together, the warning
        system classifies the shift as a workload change, not interference."""
        cluster = Cluster(num_hosts=3, seed=88, noise=0.01)
        vms = []
        for i, host in enumerate(cluster.host_names()):
            vm = VirtualMachine(f"cass{i}", DataServingWorkload(key_skew=0.6),
                                vcpus=2, memory_gb=2.0)
            cluster.place_vm(vm, host, load=0.5)
            vms.append(vm)
        deepdive = DeepDive(cluster, config=config)
        deepdive.bootstrap_vm(vms[0].name)

        for _ in range(3):
            cluster.step()
            deepdive.observe_epoch()

        # A qualitative change applied to every replica at once.
        for vm in vms:
            vm.workload.key_skew = 0.2
            vm.workload.read_fraction = 0.6

        actions = []
        for _ in range(2):
            cluster.step()
            report = deepdive.observe_epoch()
            actions.extend(
                obs.warning.action for obs in report.observations.values()
            )
        assert WarningAction.WORKLOAD_CHANGE in actions
        # No interference was reported for the corroborated change.
        assert not any(
            obs_action is WarningAction.KNOWN_INTERFERENCE for obs_action in actions
        )
        assert len(deepdive.events.detections()) == 0


class TestTraceReplay:
    def test_diurnal_trace_without_interference_stays_quiet(self, config):
        """Replaying a fluctuating load trace alone must not accumulate
        confirmed detections (the normalisation absorbs load changes)."""
        cluster = Cluster(num_hosts=1, seed=99, noise=0.01)
        victim = VirtualMachine("victim", DataServingWorkload(), vcpus=2, memory_gb=2.0)
        cluster.place_vm(victim, "pm0", load=0.5)
        deepdive = DeepDive(cluster, config=config)
        deepdive.bootstrap_vm(victim.name)

        trace = hotmail_like_trace(days=1, epochs_per_hour=1, seed=4)
        for epoch in range(24):
            load = float(trace[epoch])
            cluster.step(loads={victim.name: load})
            deepdive.observe_epoch(loads={victim.name: load})

        assert len(deepdive.events.detections()) == 0
