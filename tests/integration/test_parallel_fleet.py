"""Parallel shard execution and memory-bounded fleet runs.

Shards share nothing, so a fleet's evolution must be bit-identical for
any ``max_workers`` value — the worker pool only changes wall-clock, not
results.  ``keep_reports=False`` must aggregate exactly what the report
list would.
"""

import numpy as np
import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    FleetRunSummary,
    InterferenceEpisode,
    build_fleet,
    synthesize_datacenter,
)


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _build(max_workers, mitigate=True):
    scenario = synthesize_datacenter(
        48,
        num_shards=4,
        seed=33,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=3, end_epoch=7, kind="memory"
            ),
            InterferenceEpisode(
                shard=2, host_index=1, start_epoch=4, end_epoch=8, kind="disk"
            ),
        ],
    )
    fleet = build_fleet(
        scenario,
        config=_config(),
        engine="batch",
        mitigate=mitigate,
        substrate="batch",
        max_workers=max_workers,
    )
    fleet.bootstrap()
    return fleet


def _report_fingerprint(report):
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


class TestParallelDeterminism:
    def test_worker_count_does_not_change_results(self):
        """max_workers=1 and max_workers=4 produce bit-identical runs."""
        serial = _build(max_workers=1)
        parallel = _build(max_workers=4)
        try:
            for epoch in range(9):
                r1 = serial.run_epoch(analyze=True)
                r4 = parallel.run_epoch(analyze=True)
                assert r1.epoch == r4.epoch
                assert list(r1.shard_reports) == list(r4.shard_reports), (
                    "merge order must be shard insertion order"
                )
                assert _report_fingerprint(r1) == _report_fingerprint(r4), (
                    f"epoch {epoch} diverges between worker counts"
                )
            assert serial.stats() == parallel.stats()
            assert [
                (sid, e.vm_name, e.epoch) for sid, e in serial.detections()
            ] == [
                (sid, e.vm_name, e.epoch) for sid, e in parallel.detections()
            ]
            # Counter streams are bit-identical, not merely close.
            for sid, shard_s in serial.shards.items():
                shard_p = parallel.shards[sid]
                for host_name, host_s in shard_s.cluster.hosts.items():
                    host_p = shard_p.cluster.hosts[host_name]
                    for vm_name, history_s in host_s.counter_history.items():
                        history_p = host_p.counter_history[vm_name]
                        assert len(history_s) == len(history_p)
                        for s, p in zip(history_s, history_p):
                            assert np.array_equal(
                                np.array(list(s.as_dict().values())),
                                np.array(list(p.as_dict().values())),
                            )
        finally:
            serial.shutdown()
            parallel.shutdown()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            _build(max_workers=0)


class TestBaselineLoadPropagation:
    def test_direct_baseline_mutation_reaches_hosts(self):
        """Mutating shard.baseline_loads directly (the PR 1 interface)
        still changes host loads on the next epoch, despite the
        push-only-when-changed optimisation."""
        fleet = _build(max_workers=1, mitigate=False)
        shard = next(iter(fleet.shards.values()))
        vm_name = next(iter(shard.baseline_loads))
        cluster = shard.cluster
        fleet.run_epoch(analyze=False)
        host = cluster.hosts[cluster.host_of(vm_name)]
        assert host.get_load(vm_name) == shard.baseline_loads[vm_name]
        shard.baseline_loads[vm_name] = 0.123
        fleet.run_epoch(analyze=False)
        assert host.get_load(vm_name) == 0.123


class TestMemoryBoundedRun:
    def test_histories_stay_bounded(self):
        """Fleet hosts trim per-VM histories, so long runs hold constant
        memory (the default history_limit covers every consumer window)."""
        fleet = _build(max_workers=1, mitigate=False)
        fleet.run(12, analyze=False, keep_reports=False)
        limits = set()
        for shard in fleet.shards.values():
            for host in shard.cluster.hosts.values():
                limits.add(host.history_limit)
                for history in host.counter_history.values():
                    assert len(history) <= 2 * host.history_limit
        assert limits == {64}

    def test_summary_matches_report_list(self):
        """keep_reports=False aggregates exactly what the list would."""
        listed = _build(max_workers=1, mitigate=False)
        summarized = _build(max_workers=1, mitigate=False)
        reports = listed.run(9, analyze=True)
        summary = summarized.run(9, analyze=True, keep_reports=False)
        assert isinstance(summary, FleetRunSummary)
        assert summary.epochs == len(reports) == 9
        assert summary.observations == sum(r.observations() for r in reports)
        assert summary.analyzer_invocations == sum(
            r.analyzer_invocations() for r in reports
        )
        assert summary.confirmed_interference == sum(
            len(r.confirmed_interference()) for r in reports
        )
        expected_histogram = {}
        for r in reports:
            for action, count in r.action_histogram().items():
                expected_histogram[action] = expected_histogram.get(action, 0) + count
        assert summary.action_histogram == expected_histogram
        assert summary.final_report is not None
        assert summary.final_report.epoch == reports[-1].epoch
        assert _report_fingerprint(summary.final_report) == _report_fingerprint(
            reports[-1]
        )
