"""Parallel shard execution and memory-bounded fleet runs.

Shards share nothing, so a fleet's evolution must be bit-identical for
any execution strategy and ``max_workers`` value — thread pools and
state-owning worker processes only change wall-clock, not results.
``keep_reports=False`` must aggregate exactly what the report list
would.
"""

import numpy as np
import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import (
    ColumnarFleetReport,
    FleetRunSummary,
    InterferenceEpisode,
    build_fleet,
    synthesize_datacenter,
)


def _config() -> DeepDiveConfig:
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


def _build(max_workers, mitigate=True, executor=None):
    scenario = synthesize_datacenter(
        48,
        num_shards=4,
        seed=33,
        episodes=[
            InterferenceEpisode(
                shard=0, host_index=0, start_epoch=3, end_epoch=7, kind="memory"
            ),
            InterferenceEpisode(
                shard=2, host_index=1, start_epoch=4, end_epoch=8, kind="disk"
            ),
        ],
    )
    fleet = build_fleet(
        scenario,
        config=_config(),
        engine="batch",
        mitigate=mitigate,
        substrate="batch",
        max_workers=max_workers,
        executor=executor,
    )
    fleet.bootstrap()
    return fleet


def _report_fingerprint(report):
    return {
        (shard_id, vm_name): (
            obs.warning.action.value,
            obs.warning.distance,
            obs.warning.siblings_consulted,
            obs.warning.siblings_agreeing,
            obs.interference_confirmed,
        )
        for shard_id, shard_report in report.shard_reports.items()
        for vm_name, obs in shard_report.observations.items()
    }


class TestParallelDeterminism:
    def test_worker_count_does_not_change_results(self):
        """max_workers=1 and max_workers=4 produce bit-identical runs."""
        serial = _build(max_workers=1)
        parallel = _build(max_workers=4)
        try:
            for epoch in range(9):
                r1 = serial.run_epoch(analyze=True)
                r4 = parallel.run_epoch(analyze=True)
                assert r1.epoch == r4.epoch
                assert list(r1.shard_reports) == list(r4.shard_reports), (
                    "merge order must be shard insertion order"
                )
                assert _report_fingerprint(r1) == _report_fingerprint(r4), (
                    f"epoch {epoch} diverges between worker counts"
                )
            assert serial.stats() == parallel.stats()
            assert [
                (sid, e.vm_name, e.epoch) for sid, e in serial.detections()
            ] == [
                (sid, e.vm_name, e.epoch) for sid, e in parallel.detections()
            ]
            # Counter streams are bit-identical, not merely close.
            for sid, shard_s in serial.shards.items():
                shard_p = parallel.shards[sid]
                for host_name, host_s in shard_s.cluster.hosts.items():
                    host_p = shard_p.cluster.hosts[host_name]
                    for vm_name, history_s in host_s.counter_history.items():
                        history_p = host_p.counter_history[vm_name]
                        assert len(history_s) == len(history_p)
                        for s, p in zip(history_s, history_p):
                            assert np.array_equal(
                                np.array(list(s.as_dict().values())),
                                np.array(list(p.as_dict().values())),
                            )
        finally:
            serial.shutdown()
            parallel.shutdown()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            _build(max_workers=0)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            _build(max_workers=1, executor="fibers")


def _summary_fingerprint(summary):
    return (
        summary.epochs,
        summary.observations,
        summary.analyzer_invocations,
        summary.confirmed_interference,
        summary.action_histogram,
        _report_fingerprint(summary.final_report),
    )


class TestProcessExecutorDeterminism:
    """``executor="process"`` must be a pure wall-clock optimisation.

    Workers own their shards' full simulation state (pickled once at
    start-up, including every RNG) and exchange only columnar epoch
    results, so a process fleet with any worker count must produce a
    bit-identical :class:`FleetRunSummary` — and identical detections,
    migrations and statistics — to the serial loop.
    """

    EPOCHS = 8

    def test_process_workers_bit_identical_to_serial(self):
        serial = _build(max_workers=1, executor="serial")
        reference = _summary_fingerprint(
            serial.run(self.EPOCHS, analyze=True, keep_reports=False)
        )
        serial_stats = serial.stats()
        serial_detections = [
            (sid, e.vm_name, e.epoch) for sid, e in serial.detections()
        ]
        serial_migrations = [
            (sid, e.vm_name, e.source, e.destination)
            for sid, e in serial.migrations()
        ]
        serial.shutdown()
        for workers in (1, 2, 4):
            fleet = _build(max_workers=workers, executor="process")
            try:
                summary = fleet.run(self.EPOCHS, analyze=True, keep_reports=False)
                assert _summary_fingerprint(summary) == reference, (
                    f"process run with {workers} workers diverges from serial"
                )
                assert fleet.stats() == serial_stats
                assert [
                    (sid, e.vm_name, e.epoch) for sid, e in fleet.detections()
                ] == serial_detections
                assert [
                    (sid, e.vm_name, e.source, e.destination)
                    for sid, e in fleet.migrations()
                ] == serial_migrations
            finally:
                fleet.shutdown()

    def test_columnar_report_matches_full_report(self):
        """Per-epoch columnar decision arrays agree with the full
        per-VM reports, shard for shard."""
        full = _build(max_workers=1, executor="serial")
        process = _build(max_workers=2, executor="process")
        try:
            for _ in range(6):
                r_full = full.run_epoch(analyze=True)
                r_col = process.run_epoch(analyze=True, report="columnar")
                assert isinstance(r_col, ColumnarFleetReport)
                assert list(r_col.shard_reports) == list(r_full.shard_reports)
                assert r_col.observations() == r_full.observations()
                assert r_col.analyzer_invocations() == r_full.analyzer_invocations()
                assert r_col.confirmed_interference() == (
                    r_full.confirmed_interference()
                )
                assert r_col.action_histogram() == r_full.action_histogram()
                for sid, shard_full in r_full.shard_reports.items():
                    shard_col = r_col.shard_reports[sid]
                    assert shard_col.vm_names == tuple(shard_full.observations)
                    for i, (vm_name, obs) in enumerate(
                        shard_full.observations.items()
                    ):
                        assert shard_col.distances[i] == obs.warning.distance
                        assert (
                            shard_col.siblings_consulted[i]
                            == obs.warning.siblings_consulted
                        )
                        assert (
                            shard_col.siblings_agreeing[i]
                            == obs.warning.siblings_agreeing
                        )
        finally:
            full.shutdown()
            process.shutdown()

    def test_shutdown_process_fleet_refuses_new_epochs(self):
        fleet = _build(max_workers=2, executor="process", mitigate=False)
        fleet.run_epoch(analyze=False)
        stats = fleet.stats()
        fleet.shutdown()
        # Statistics survive shutdown; new epochs would silently reset
        # worker state and are refused.
        assert fleet.stats() == stats
        with pytest.raises(RuntimeError):
            fleet.run_epoch(analyze=False)


class TestBaselineLoadPropagation:
    def test_direct_baseline_mutation_reaches_hosts(self):
        """Mutating shard.baseline_loads directly (the PR 1 interface)
        still changes host loads on the next epoch, despite the
        push-only-when-changed optimisation."""
        fleet = _build(max_workers=1, mitigate=False)
        shard = next(iter(fleet.shards.values()))
        vm_name = next(iter(shard.baseline_loads))
        cluster = shard.cluster
        fleet.run_epoch(analyze=False)
        host = cluster.hosts[cluster.host_of(vm_name)]
        assert host.get_load(vm_name) == shard.baseline_loads[vm_name]
        shard.baseline_loads[vm_name] = 0.123
        fleet.run_epoch(analyze=False)
        assert host.get_load(vm_name) == 0.123


class TestMemoryBoundedRun:
    def test_histories_stay_bounded(self):
        """Fleet hosts trim per-VM histories, so long runs hold constant
        memory (the default history_limit covers every consumer window)."""
        fleet = _build(max_workers=1, mitigate=False)
        fleet.run(12, analyze=False, keep_reports=False)
        limits = set()
        for shard in fleet.shards.values():
            for host in shard.cluster.hosts.values():
                limits.add(host.history_limit)
                for history in host.counter_history.values():
                    assert len(history) <= 2 * host.history_limit
        assert limits == {64}

    def test_summary_matches_report_list(self):
        """keep_reports=False aggregates exactly what the list would."""
        listed = _build(max_workers=1, mitigate=False)
        summarized = _build(max_workers=1, mitigate=False)
        reports = listed.run(9, analyze=True)
        summary = summarized.run(9, analyze=True, keep_reports=False)
        assert isinstance(summary, FleetRunSummary)
        assert summary.epochs == len(reports) == 9
        assert summary.observations == sum(r.observations() for r in reports)
        assert summary.analyzer_invocations == sum(
            r.analyzer_invocations() for r in reports
        )
        assert summary.confirmed_interference == sum(
            len(r.confirmed_interference()) for r in reports
        )
        expected_histogram = {}
        for r in reports:
            for action, count in r.action_histogram().items():
                expected_histogram[action] = expected_histogram.get(action, 0) + count
        assert summary.action_histogram == expected_histogram
        assert summary.final_report is not None
        assert summary.final_report.epoch == reports[-1].epoch
        assert _report_fingerprint(summary.final_report) == _report_fingerprint(
            reports[-1]
        )
