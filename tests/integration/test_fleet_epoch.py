"""Fleet-level integration: the full epoch loop at 100-VM scale.

Exercises the whole stack — scenario generation, sharded clusters, the
batch epoch engine, detection, and mitigation — on a synthetic 100-VM
datacenter with injected interference episodes, and pins the DeepDive-
level equivalence of the scalar and batch engines over a full epoch
sequence.
"""

import pytest

from repro.core.config import DeepDiveConfig
from repro.fleet import InterferenceEpisode, build_fleet, synthesize_datacenter


@pytest.fixture
def fast_config():
    return DeepDiveConfig(
        profile_epochs=3,
        bootstrap_load_levels=3,
        bootstrap_epochs_per_level=3,
        min_normal_behaviors=8,
        placement_eval_epochs=3,
    )


EPISODES = [
    InterferenceEpisode(
        shard=0, host_index=0, start_epoch=6, end_epoch=14, kind="memory"
    ),
    InterferenceEpisode(
        shard=1, host_index=3, start_epoch=16, end_epoch=24, kind="memory"
    ),
]


class TestFleetEpochLoop:
    def test_100_vm_fleet_detects_and_mitigates_each_episode(self, fast_config):
        """Quiet baseline, per-episode detection, exactly one migration each."""
        scenario = synthesize_datacenter(
            100, num_shards=2, seed=11, episodes=EPISODES
        )
        fleet = build_fleet(
            scenario, config=fast_config, engine="batch", mitigate=True
        )
        assert fleet.total_vms() == 100 + len(EPISODES)
        fleet.bootstrap()

        confirmed_by_epoch = {}
        for epoch in range(28):
            report = fleet.run_epoch(analyze=True)
            confirmed_by_epoch[epoch] = report.confirmed_interference()

        # The learning epochs (0..5) certify the production behaviours;
        # once learned, the quiet fleet stays quiet.
        for epoch in range(1, 6):
            assert confirmed_by_epoch[epoch] == [], (
                f"false positives in quiet epoch {epoch}: "
                f"{confirmed_by_epoch[epoch]}"
            )

        # Each episode is detected on its target shard while active.
        for episode in EPISODES:
            shard_id = f"shard{episode.shard}"
            hits = [
                vm
                for epoch in range(episode.start_epoch, episode.end_epoch)
                for s, vm in confirmed_by_epoch[epoch]
                if s == shard_id
            ]
            assert hits, f"episode on {shard_id} was never detected"

        # Exactly one migration per persistent episode: the aggressor is
        # moved to the shard's headroom host in the detection epoch, and
        # the victims' recovery ends the episode for good.
        migrations = fleet.migrations()
        assert len(migrations) == len(EPISODES)
        for episode, (shard_id, event) in zip(EPISODES, sorted(
            migrations, key=lambda m: m[1].epoch
        )):
            assert shard_id == f"shard{episode.shard}"
            assert event.epoch == episode.start_epoch
            assert "stress" in event.vm_name
            assert event.source.endswith(f"pm{episode.host_index}")

        # After an episode's migration the victims recover: no further
        # confirmations on that shard once the aggressor is gone.
        for episode in EPISODES:
            shard_id = f"shard{episode.shard}"
            post = [
                vm
                for epoch in range(episode.start_epoch + 1, 28)
                for s, vm in confirmed_by_epoch[epoch]
                if s == shard_id
            ]
            assert post == [], f"{shard_id} did not recover: {post}"

    def test_engines_agree_over_full_epoch_sequence(self, fast_config):
        """Scalar and batch DeepDive runs evolve identically epoch for epoch.

        Two fleets built from the same scenario are deterministic; the
        only difference is the epoch engine, so any divergence in any
        epoch's warning decisions is an engine bug.
        """
        def drive(engine):
            scenario = synthesize_datacenter(
                60, num_shards=2, seed=23, episodes=[EPISODES[0]]
            )
            fleet = build_fleet(
                scenario, config=fast_config, engine=engine, mitigate=True
            )
            fleet.bootstrap()
            trace = []
            for _ in range(10):
                report = fleet.run_epoch(analyze=True)
                trace.append(
                    {
                        (shard_id, vm): (
                            obs.warning.action.value,
                            obs.warning.distance,
                            obs.warning.violated_dimensions,
                            obs.warning.siblings_consulted,
                            obs.warning.siblings_agreeing,
                            obs.interference_confirmed,
                        )
                        for shard_id, rep in report.shard_reports.items()
                        for vm, obs in rep.observations.items()
                    }
                )
            return trace, [
                (s, m.vm_name, m.source, m.destination, m.epoch)
                for s, m in fleet.migrations()
            ]

        scalar_trace, scalar_migrations = drive("scalar")
        batch_trace, batch_migrations = drive("batch")
        for epoch, (a, b) in enumerate(zip(scalar_trace, batch_trace)):
            assert a == b, f"engines diverged at epoch {epoch}"
        assert scalar_migrations == batch_migrations
