"""Tests for the synthetic-benchmark trainer."""

import numpy as np
import pytest

from repro.metrics.sample import MetricVector
from repro.regression.training import SyntheticBenchmarkTrainer, TrainedSynthesizer
from repro.workloads.cloud import DataServingWorkload
from repro.workloads.synthetic import SyntheticInputs


@pytest.fixture(scope="module")
def synthesizer():
    return SyntheticBenchmarkTrainer(samples=80, seed=3).train()


class TestTrainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticBenchmarkTrainer(samples=3)
        with pytest.raises(ValueError):
            SyntheticBenchmarkTrainer(method="forest")
        with pytest.raises(ValueError):
            SyntheticBenchmarkTrainer(neighbors=0)

    def test_training_produces_usable_synthesizer(self, synthesizer):
        assert isinstance(synthesizer, TrainedSynthesizer)
        assert synthesizer.samples_used == 80
        assert synthesizer.metric_matrix.shape[0] == 80
        assert np.isfinite(synthesizer.training_error)
        # The knn inversion should roughly reproduce the training points.
        assert synthesizer.training_error < 0.25

    def test_inputs_for_returns_clipped_inputs(self, synthesizer, machine):
        workload = DataServingWorkload()
        outcome = machine.run_in_isolation(workload.demand(600.0))
        target = MetricVector.from_sample(outcome.counters)
        inputs = synthesizer.inputs_for(target)
        assert isinstance(inputs, SyntheticInputs)
        assert 0.25 <= inputs.working_set_mb <= 2048.0
        assert 1.0 <= inputs.parallelism <= 8.0

    def test_rate_matching_sets_compute_iterations(self, synthesizer, machine):
        workload = DataServingWorkload()
        outcome = machine.run_in_isolation(workload.demand(600.0))
        target = MetricVector.from_sample(outcome.counters)
        rate = outcome.counters.inst_retired / outcome.counters.epoch_seconds
        inputs = synthesizer.inputs_for(target, target_inst_rate=rate)
        assert inputs.compute_iterations == pytest.approx(1.05 * rate / 1e9, rel=1e-6)

    def test_saturate_fallback(self, synthesizer, machine):
        workload = DataServingWorkload()
        outcome = machine.run_in_isolation(workload.demand(200.0))
        target = MetricVector.from_sample(outcome.counters)
        inputs = synthesizer.inputs_for(target, saturate=True)
        assert inputs.compute_iterations >= 16.0

    def test_synthesize_reproduces_memory_signature(self, synthesizer, machine):
        """The synthetic clone should land near the target's cache-miss rate."""
        workload = DataServingWorkload()
        outcome = machine.run_in_isolation(workload.demand(900.0))
        target = MetricVector.from_sample(outcome.counters)
        rate = outcome.counters.inst_retired / outcome.counters.epoch_seconds
        bench = synthesizer.synthesize(target, target_inst_rate=rate)
        clone_out = machine.run_in_isolation(bench.demand(1.0))
        clone_vec = MetricVector.from_sample(clone_out.counters)
        assert clone_vec["l1_repl_pki"] == pytest.approx(
            target["l1_repl_pki"], rel=0.5
        )

    def test_ridge_method_also_works(self, machine):
        synthesizer = SyntheticBenchmarkTrainer(
            samples=60, method="ridge", seed=4
        ).train()
        outcome = machine.run_in_isolation(DataServingWorkload().demand(400.0))
        target = MetricVector.from_sample(outcome.counters)
        inputs = synthesizer.inputs_for(target)
        assert isinstance(inputs, SyntheticInputs)
