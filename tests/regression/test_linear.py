"""Tests for the ridge regression helper."""

import numpy as np
import pytest

from repro.regression.linear import RidgeRegression, polynomial_features


class TestRidgeRegression:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(200, 3))
        true_w = np.array([2.0, -1.0, 0.5])
        y = x @ true_w + 3.0
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        pred = model.predict(x)
        assert np.allclose(pred, y, atol=1e-6)
        assert model.score(x, y) == pytest.approx(1.0, abs=1e-6)

    def test_multi_output(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(100, 2))
        y = np.column_stack([x[:, 0] * 2, x[:, 1] - 1.0])
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        pred = model.predict(x)
        assert pred.shape == y.shape
        assert np.allclose(pred, y, atol=1e-6)

    def test_single_sample_prediction(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 2.0, 4.0])
        model = RidgeRegression(alpha=1e-8).fit(x, y)
        assert float(model.predict(np.array([3.0]))) == pytest.approx(6.0, abs=1e-4)

    def test_regularisation_shrinks_coefficients(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(50, 2))
        y = x[:, 0] * 10
        loose = RidgeRegression(alpha=1e-8).fit(x, y)
        tight = RidgeRegression(alpha=100.0).fit(x, y)
        assert np.abs(tight.coef_).sum() < np.abs(loose.coef_).sum()

    def test_validation(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))

    def test_constant_feature_handled(self):
        x = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.arange(20.0)
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))


class TestPolynomialFeatures:
    def test_degree_two_doubles_columns(self):
        x = np.arange(6.0).reshape(3, 2)
        expanded = polynomial_features(x, degree=2)
        assert expanded.shape == (3, 4)
        assert np.allclose(expanded[:, 2:], x ** 2)

    def test_degree_one_identity(self):
        x = np.arange(6.0).reshape(3, 2)
        assert np.allclose(polynomial_features(x, degree=1), x)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            polynomial_features(np.zeros((2, 2)), degree=0)
