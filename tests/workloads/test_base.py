"""Tests for the workload/client-model base classes."""

import pytest

from repro.workloads.base import (
    BatchClientModel,
    PerformanceReport,
    RequestServingClientModel,
)


class TestPerformanceReport:
    def test_latency_degradation(self):
        baseline = PerformanceReport(throughput=100.0, latency_ms=10.0)
        degraded = PerformanceReport(throughput=70.0, latency_ms=25.0)
        assert degraded.latency_degradation(baseline) == pytest.approx(1.5)
        assert baseline.latency_degradation(degraded) == pytest.approx(0.0)

    def test_throughput_degradation(self):
        baseline = PerformanceReport(throughput=100.0, latency_ms=10.0)
        degraded = PerformanceReport(throughput=60.0, latency_ms=10.0)
        assert degraded.throughput_degradation(baseline) == pytest.approx(0.4)
        assert baseline.throughput_degradation(degraded) == pytest.approx(0.0)

    def test_zero_baseline_handled(self):
        baseline = PerformanceReport(throughput=0.0, latency_ms=0.0)
        other = PerformanceReport(throughput=10.0, latency_ms=5.0)
        assert other.latency_degradation(baseline) == 0.0
        assert other.throughput_degradation(baseline) == 0.0


class TestRequestServingClientModel:
    def _model(self):
        return RequestServingClientModel(
            instructions_per_request=1e6, base_latency_ms=5.0, max_latency_ms=1000.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestServingClientModel(instructions_per_request=0.0, base_latency_ms=1.0)

    def test_idle_client(self):
        report = self._model().performance(0.0, 0.0, 0.0, 1.0)
        assert report.throughput == 0.0
        assert report.latency_ms == pytest.approx(5.0)

    def test_no_capacity_gives_timeout_latency(self):
        report = self._model().performance(
            100.0, 1e8, 0.0, 1.0, instructions_attainable=0.0
        )
        assert report.latency_ms == pytest.approx(1000.0)
        assert report.goodput_fraction == 0.0

    def test_latency_grows_toward_saturation(self):
        model = self._model()
        low = model.performance(100.0, 1e8, 1e8, 1.0, instructions_attainable=1e9)
        high = model.performance(900.0, 9e8, 9e8, 1.0, instructions_attainable=1e9)
        assert high.latency_ms > low.latency_ms
        assert low.latency_ms >= 5.0

    def test_latency_capped(self):
        model = self._model()
        report = model.performance(5000.0, 5e9, 1e9, 1.0, instructions_attainable=1e9)
        assert report.latency_ms == pytest.approx(1000.0)

    def test_throughput_limited_by_served_requests(self):
        model = self._model()
        report = model.performance(1000.0, 1e9, 4e8, 1.0, instructions_attainable=4e8)
        assert report.throughput == pytest.approx(400.0)
        assert report.goodput_fraction == pytest.approx(0.4)


class TestBatchClientModel:
    def test_completion_time_scales_with_progress(self):
        model = BatchClientModel(base_task_ms=1000.0)
        full = model.performance(1.0, 1e9, 1e9, 1.0)
        half = model.performance(1.0, 1e9, 5e8, 1.0)
        assert full.latency_ms == pytest.approx(1000.0)
        assert half.latency_ms == pytest.approx(2000.0)
        assert half.goodput_fraction == pytest.approx(0.5)

    def test_no_work(self):
        model = BatchClientModel(base_task_ms=1000.0)
        report = model.performance(0.0, 0.0, 0.0, 1.0)
        assert report.throughput == 0.0
        assert report.latency_ms == pytest.approx(1000.0)
