"""Tests for load traces and interference schedules."""

import numpy as np
import pytest

from repro.workloads.traces import (
    InterferenceEpisode,
    InterferenceSchedule,
    LoadTrace,
    constant_trace,
    ec2_like_interference_schedule,
    hotmail_like_trace,
)


class TestLoadTrace:
    def test_basic_properties(self):
        trace = constant_trace(0.5, epochs=10, epoch_seconds=2.0)
        assert len(trace) == 10
        assert trace[3] == pytest.approx(0.5)
        assert trace.duration_seconds == pytest.approx(20.0)
        assert list(trace)[0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTrace(np.array([[0.1, 0.2]]))
        with pytest.raises(ValueError):
            LoadTrace(np.array([0.1, -0.2]))
        with pytest.raises(ValueError):
            constant_trace(0.5, epochs=0)

    def test_scaled_and_slice(self):
        trace = constant_trace(0.5, epochs=10)
        assert trace.scaled(2.0)[0] == pytest.approx(1.0)
        assert len(trace.slice(2, 5)) == 3


class TestHotmailTrace:
    def test_shape_and_bounds(self):
        trace = hotmail_like_trace(days=3, epochs_per_hour=4, seed=1)
        assert len(trace) == 3 * 24 * 4
        assert float(np.max(trace.values)) <= 1.0
        assert float(np.min(trace.values)) > 0.0

    def test_diurnal_pattern(self):
        trace = hotmail_like_trace(days=1, epochs_per_hour=1, noise=0.0, seed=1)
        afternoon = trace[15]
        night = trace[3]
        assert afternoon > night

    def test_deterministic_with_seed(self):
        a = hotmail_like_trace(seed=5)
        b = hotmail_like_trace(seed=5)
        assert np.allclose(a.values, b.values)

    def test_validation(self):
        with pytest.raises(ValueError):
            hotmail_like_trace(days=0)
        with pytest.raises(ValueError):
            hotmail_like_trace(peak=0.2, trough=0.5)


class TestInterferenceSchedule:
    def test_episode_validation(self):
        with pytest.raises(ValueError):
            InterferenceEpisode(start_epoch=5, end_epoch=5)
        with pytest.raises(ValueError):
            InterferenceEpisode(start_epoch=0, end_epoch=5, intensity=0.0)

    def test_episode_activity(self):
        episode = InterferenceEpisode(start_epoch=2, end_epoch=6, intensity=0.8)
        assert not episode.active(1)
        assert episode.active(2)
        assert episode.active(5)
        assert not episode.active(6)
        assert episode.duration == 4

    def test_schedule_intensity_capped(self):
        schedule = InterferenceSchedule([
            InterferenceEpisode(0, 10, intensity=0.7),
            InterferenceEpisode(5, 15, intensity=0.8),
        ])
        assert schedule.intensity_at(7) == pytest.approx(1.0)
        assert schedule.intensity_at(2) == pytest.approx(0.7)
        assert schedule.intensity_at(20) == pytest.approx(0.0)
        assert schedule.kinds_at(7) == ("memory",)

    def test_total_interference_epochs(self):
        schedule = InterferenceSchedule([InterferenceEpisode(2, 5)])
        assert schedule.total_interference_epochs(10) == 3

    def test_ec2_like_schedule_generation(self):
        schedule = ec2_like_interference_schedule(
            horizon_epochs=96 * 3, episodes_per_day=3.0, seed=2
        )
        assert len(schedule) > 0
        for episode in schedule:
            assert 0 <= episode.start_epoch < episode.end_epoch <= 96 * 3
            assert 0.0 < episode.intensity <= 1.0
        # Deterministic for a fixed seed.
        again = ec2_like_interference_schedule(
            horizon_epochs=96 * 3, episodes_per_day=3.0, seed=2
        )
        assert len(again) == len(schedule)

    def test_ec2_like_schedule_validation(self):
        with pytest.raises(ValueError):
            ec2_like_interference_schedule(horizon_epochs=0)
