"""Tests for the synthetic mimicking benchmark."""

import pytest

from repro.workloads.synthetic import (
    SYNTHETIC_INPUT_NAMES,
    SyntheticBenchmark,
    SyntheticInputs,
)


class TestSyntheticInputs:
    def test_array_roundtrip(self):
        inputs = SyntheticInputs(working_set_mb=33.0, disk_mbps=5.0)
        rebuilt = SyntheticInputs.from_array(inputs.as_array())
        assert rebuilt.working_set_mb == pytest.approx(33.0)
        assert rebuilt.disk_mbps == pytest.approx(5.0)

    def test_from_array_wrong_shape(self):
        with pytest.raises(ValueError):
            SyntheticInputs.from_array([1.0, 2.0])

    def test_clipped_bounds(self):
        crazy = SyntheticInputs(
            compute_iterations=1e6,
            working_set_mb=-5.0,
            pointer_chase_fraction=7.0,
            locality=-1.0,
            parallelism=100.0,
        ).clipped()
        assert crazy.compute_iterations <= 50.0
        assert crazy.working_set_mb >= 0.25
        assert 0.0 <= crazy.pointer_chase_fraction <= 1.0
        assert 0.0 <= crazy.locality <= 1.0
        assert crazy.parallelism <= 8.0

    def test_dimension_count(self):
        assert SyntheticInputs.dimensions() == len(SYNTHETIC_INPUT_NAMES)
        assert len(SyntheticInputs().as_dict()) == len(SYNTHETIC_INPUT_NAMES)


class TestSyntheticBenchmark:
    def test_demand_reflects_inputs(self):
        inputs = SyntheticInputs(
            compute_iterations=2.0,
            working_set_mb=100.0,
            disk_mbps=8.0,
            network_mbps=50.0,
            parallelism=3.0,
        )
        demand = SyntheticBenchmark(inputs=inputs).demand(1.0)
        demand.validate()
        assert demand.instructions == pytest.approx(2.0e9)
        assert demand.working_set_mb == pytest.approx(100.0)
        assert demand.disk_mb == pytest.approx(8.0)
        assert demand.network_mbit == pytest.approx(50.0)
        assert demand.vcpus == 3

    def test_demand_independent_of_load_level_above_one(self):
        bench = SyntheticBenchmark()
        assert bench.demand(1.0).instructions == pytest.approx(
            bench.demand(5.0).instructions
        )

    def test_pointer_chasing_increases_misses(self):
        streaming = SyntheticBenchmark(
            SyntheticInputs(pointer_chase_fraction=0.0)
        ).demand(1.0)
        chasing = SyntheticBenchmark(
            SyntheticInputs(pointer_chase_fraction=1.0)
        ).demand(1.0)
        assert chasing.l1_miss_pki > streaming.l1_miss_pki

    def test_with_inputs_returns_new_instance(self):
        bench = SyntheticBenchmark()
        other = bench.with_inputs(SyntheticInputs(working_set_mb=77.0))
        assert other is not bench
        assert other.inputs.working_set_mb == pytest.approx(77.0)

    def test_mimics_pressure_on_machine(self, machine):
        """A benchmark with a bigger working set causes more cache misses."""
        small = SyntheticBenchmark(
            SyntheticInputs(working_set_mb=2.0, l1_stress_pki=60.0)
        )
        large = SyntheticBenchmark(
            SyntheticInputs(working_set_mb=512.0, l1_stress_pki=60.0, locality=0.1)
        )
        small_out = machine.run_in_isolation(small.demand(1.0))
        large_out = machine.run_in_isolation(large.demand(1.0))
        small_miss = small_out.counters.l2_lines_in / max(
            small_out.counters.inst_retired, 1
        )
        large_miss = large_out.counters.l2_lines_in / max(
            large_out.counters.inst_retired, 1
        )
        assert large_miss > small_miss
