"""Tests for the interfering (stress) workloads."""

import pytest

from repro.workloads.stress import (
    DiskStressWorkload,
    MemoryStressWorkload,
    NetworkStressWorkload,
    make_stress_workload,
)


class TestMemoryStress:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryStressWorkload(working_set_mb=0.0)
        with pytest.raises(ValueError):
            MemoryStressWorkload(intensity=0.0)
        with pytest.raises(ValueError):
            MemoryStressWorkload(locality=1.5)

    def test_working_set_is_the_knob(self):
        small = MemoryStressWorkload(working_set_mb=6.0).demand(1.0)
        large = MemoryStressWorkload(working_set_mb=512.0).demand(1.0)
        assert large.working_set_mb > small.working_set_mb
        assert small.l1_miss_pki == large.l1_miss_pki  # intensity per instr same

    def test_load_scales_intensity(self):
        full = MemoryStressWorkload().demand(1.0)
        half = MemoryStressWorkload().demand(0.5)
        assert half.instructions == pytest.approx(full.instructions * 0.5)

    def test_cache_polluter_variant(self):
        streamer = MemoryStressWorkload(locality=0.05).demand(1.0)
        polluter = MemoryStressWorkload(locality=0.9).demand(1.0)
        assert polluter.locality > streamer.locality


class TestNetworkStress:
    def test_bidirectional_traffic(self):
        demand = NetworkStressWorkload(target_mbps=300.0).demand(1.0)
        assert demand.network_mbit == pytest.approx(600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkStressWorkload(target_mbps=0.0)

    def test_throughput_knob(self):
        slow = NetworkStressWorkload(target_mbps=50.0).demand(1.0)
        fast = NetworkStressWorkload(target_mbps=700.0).demand(1.0)
        assert fast.network_mbit > slow.network_mbit


class TestDiskStress:
    def test_copy_reads_and_writes(self):
        demand = DiskStressWorkload(target_mbps=5.0).demand(1.0)
        assert demand.disk_mb == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskStressWorkload(target_mbps=-1.0)
        with pytest.raises(ValueError):
            DiskStressWorkload(sequential_fraction=2.0)

    def test_rate_knob(self):
        slow = DiskStressWorkload(target_mbps=1.0).demand(1.0)
        fast = DiskStressWorkload(target_mbps=10.0).demand(1.0)
        assert fast.disk_mb > slow.disk_mb


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("memory", MemoryStressWorkload),
        ("network", NetworkStressWorkload),
        ("disk", DiskStressWorkload),
    ])
    def test_make_stress_workload(self, kind, cls):
        assert isinstance(make_stress_workload(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_stress_workload("gpu")

    @pytest.mark.parametrize("kind", ["memory", "network", "disk"])
    def test_demands_validate(self, kind):
        make_stress_workload(kind).demand(1.0).validate()
