"""Tests for the CloudSuite-like workload models."""

import pytest

from repro.workloads.cloud import (
    CLOUD_WORKLOAD_FACTORIES,
    DataAnalyticsWorkload,
    DataServingWorkload,
    WebSearchWorkload,
    make_cloud_workload,
)


class TestFactories:
    def test_three_workloads_registered(self):
        assert set(CLOUD_WORKLOAD_FACTORIES) == {
            "data_serving", "web_search", "data_analytics"
        }

    def test_make_by_name(self):
        assert isinstance(make_cloud_workload("data_serving"), DataServingWorkload)
        assert isinstance(make_cloud_workload("web_search"), WebSearchWorkload)
        assert isinstance(make_cloud_workload("data_analytics"), DataAnalyticsWorkload)

    def test_make_unknown(self):
        with pytest.raises(KeyError):
            make_cloud_workload("graph500")

    def test_kwargs_forwarded(self):
        workload = make_cloud_workload("data_serving", key_skew=0.9)
        assert workload.key_skew == pytest.approx(0.9)


class TestDataServing:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DataServingWorkload(key_skew=1.5)
        with pytest.raises(ValueError):
            DataServingWorkload(read_fraction=-0.1)

    def test_demand_scales_with_load(self):
        workload = DataServingWorkload()
        low = workload.demand(100.0)
        high = workload.demand(1000.0)
        assert high.instructions == pytest.approx(low.instructions * 10)
        assert high.disk_mb == pytest.approx(low.disk_mb * 10)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            DataServingWorkload().demand(-1.0)

    def test_skewed_keys_shrink_working_set(self):
        uniform = DataServingWorkload(key_skew=0.2).demand(500.0)
        skewed = DataServingWorkload(key_skew=0.9).demand(500.0)
        assert skewed.working_set_mb < uniform.working_set_mb

    def test_writes_increase_disk_traffic(self):
        reads = DataServingWorkload(read_fraction=0.99).demand(500.0)
        writes = DataServingWorkload(read_fraction=0.5).demand(500.0)
        assert writes.disk_mb > reads.disk_mb

    def test_client_model_latency_grows_with_utilization(self):
        workload = DataServingWorkload()
        report_low = workload.performance(
            load=200.0,
            instructions_demanded=200 * workload.INSTRUCTIONS_PER_REQUEST,
            instructions_retired=200 * workload.INSTRUCTIONS_PER_REQUEST,
            instructions_attainable=1200 * workload.INSTRUCTIONS_PER_REQUEST,
        )
        report_high = workload.performance(
            load=1100.0,
            instructions_demanded=1100 * workload.INSTRUCTIONS_PER_REQUEST,
            instructions_retired=1150 * workload.INSTRUCTIONS_PER_REQUEST,
            instructions_attainable=1200 * workload.INSTRUCTIONS_PER_REQUEST,
        )
        assert report_high.latency_ms > report_low.latency_ms


class TestWebSearch:
    def test_rare_words_touch_disk(self):
        popular = WebSearchWorkload(word_skew=0.95).demand(300.0)
        rare = WebSearchWorkload(word_skew=0.4).demand(300.0)
        assert rare.disk_mb > popular.disk_mb
        assert rare.working_set_mb > popular.working_set_mb

    def test_validation(self):
        with pytest.raises(ValueError):
            WebSearchWorkload(word_skew=-0.2)


class TestDataAnalytics:
    def test_remote_fetch_drives_network(self):
        local = DataAnalyticsWorkload(remote_fetch_fraction=0.1).demand(0.8)
        remote = DataAnalyticsWorkload(remote_fetch_fraction=0.9).demand(0.8)
        assert remote.network_mbit > local.network_mbit

    def test_shuffle_fraction_tradeoff(self):
        mappy = DataAnalyticsWorkload(shuffle_fraction=0.1).demand(0.8)
        shuffly = DataAnalyticsWorkload(shuffle_fraction=0.6).demand(0.8)
        assert mappy.disk_mb > shuffly.disk_mb
        assert shuffly.network_mbit > mappy.network_mbit

    def test_batch_client_completion_time(self):
        workload = DataAnalyticsWorkload()
        full = workload.performance(0.8, 1e9, 1e9)
        slowed = workload.performance(0.8, 1e9, 0.5e9)
        assert slowed.latency_ms == pytest.approx(full.latency_ms * 2, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            DataAnalyticsWorkload(remote_fetch_fraction=1.2)
        with pytest.raises(ValueError):
            DataAnalyticsWorkload(shuffle_fraction=-0.5)


class TestCommonWorkloadBehaviour:
    @pytest.mark.parametrize("name", sorted(CLOUD_WORKLOAD_FACTORIES))
    def test_demand_valid_and_copyable(self, name):
        workload = make_cloud_workload(name)
        demand = workload.demand(workload.nominal_load * 0.5)
        demand.validate()
        clone = workload.copy()
        assert clone is not workload
        assert clone.app_id == workload.app_id

    @pytest.mark.parametrize("name", sorted(CLOUD_WORKLOAD_FACTORIES))
    def test_nominal_load_positive(self, name):
        assert make_cloud_workload(name).nominal_load > 0
