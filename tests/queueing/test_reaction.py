"""Tests for the reaction-time study (Figures 13 and 14)."""

import math

import pytest

from repro.queueing.arrivals import LognormalArrivals
from repro.queueing.reaction import ReactionTimeStudy


@pytest.fixture(scope="module")
def study():
    return ReactionTimeStudy(days=2.0, mean_service_seconds=240.0, seed=1)


class TestReactionTimeStudy:
    def test_sweep_shapes(self, study):
        curves = study.sweep([0.1, 0.4], [2, 4])
        assert set(curves) == {2, 4}
        assert len(curves[2]) == 2
        assert curves[2][0].interference_fraction == pytest.approx(0.1)

    def test_invalid_fraction(self, study):
        with pytest.raises(ValueError):
            study.sweep([1.5], [2])

    def test_more_servers_never_slower(self, study):
        curves = study.sweep([0.4, 0.8], [2, 8])
        for i in range(2):
            assert (
                curves[8][i].mean_reaction_minutes
                <= curves[2][i].mean_reaction_minutes + 1e-6
            )

    def test_reaction_grows_with_interference_fraction(self, study):
        curve = study.sweep([0.1, 0.9], [2])[2]
        assert curve[1].mean_reaction_minutes >= curve[0].mean_reaction_minutes

    def test_global_information_improves_reaction(self, study):
        local = study.sweep([0.4], [4], use_global_information=False)[4][0]
        with_global = study.sweep([0.4], [4], use_global_information=True)[4][0]
        assert with_global.mean_reaction_minutes < local.mean_reaction_minutes
        assert with_global.cache_hit_fraction > 0.0

    def test_alpha_sweep_ordering(self, study):
        """Heavier tails (alpha -> 1) benefit most from global information."""
        curves = study.alpha_sweep([0.4], alphas=[1.0, 2.5, math.inf], num_servers=4)
        heavy = curves[1.0][0].mean_reaction_minutes
        light = curves[2.5][0].mean_reaction_minutes
        none = curves[math.inf][0].mean_reaction_minutes
        assert heavy <= light <= none

    def test_minimum_servers_search(self, study):
        minimum = study.minimum_servers_for(0.2, [1, 2, 4, 8, 16])
        assert minimum in (1, 2, 4, 8, 16)

    def test_lognormal_arrivals_supported(self):
        study = ReactionTimeStudy(
            arrivals=LognormalArrivals(vms_per_day=1000.0, sigma=1.5, seed=2),
            days=2.0,
            seed=2,
        )
        curve = study.sweep([0.4], [4])[4]
        assert curve[0].mean_reaction_minutes > 0.0
