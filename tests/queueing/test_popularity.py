"""Tests for the Zipf/Pareto application-popularity model."""

import math

import numpy as np
import pytest

from repro.queueing.popularity import ZipfPopularity


class TestZipfPopularity:
    def test_probabilities_sum_to_one(self):
        probs = ZipfPopularity(alpha=1.5, num_applications=100).probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(probs) <= 1e-12)  # decreasing in rank

    def test_heavier_tail_concentrates_more(self):
        """Smaller Pareto alpha = heavier tail = more VMs in the top apps."""
        heavy = ZipfPopularity(alpha=1.0, num_applications=200)
        light = ZipfPopularity(alpha=2.5, num_applications=200)
        assert heavy.expected_share_of_top(5) > light.expected_share_of_top(5)

    def test_assign_counts(self):
        apps = ZipfPopularity(alpha=1.5, seed=0).assign(1000)
        assert len(apps) == 1000
        assert all(a.startswith("app-") for a in apps)

    def test_infinite_alpha_means_unique_apps(self):
        apps = ZipfPopularity(alpha=math.inf).assign(50)
        assert len(set(apps)) == 50
        assert ZipfPopularity(alpha=math.inf).expected_share_of_top(10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(num_applications=0)
        with pytest.raises(ValueError):
            ZipfPopularity(alpha=-1.0)
        with pytest.raises(ValueError):
            ZipfPopularity().assign(-1)

    def test_deterministic(self):
        a = ZipfPopularity(alpha=1.5, seed=3).assign(100)
        b = ZipfPopularity(alpha=1.5, seed=3).assign(100)
        assert a == b
