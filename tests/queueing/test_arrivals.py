"""Tests for the VM arrival processes."""

import numpy as np
import pytest

from repro.queueing.arrivals import LognormalArrivals, PoissonArrivals, SECONDS_PER_DAY


class TestPoissonArrivals:
    def test_mean_interarrival_matches_rate(self):
        arrivals = PoissonArrivals(vms_per_day=1000.0, seed=0)
        gaps = arrivals.interarrival_times(20000)
        assert gaps.mean() == pytest.approx(SECONDS_PER_DAY / 1000.0, rel=0.05)

    def test_arrival_times_sorted(self):
        times = PoissonArrivals(seed=1).arrival_times(500)
        assert np.all(np.diff(times) >= 0)
        assert times.shape == (500,)

    def test_zero_count(self):
        assert PoissonArrivals().arrival_times(0).shape == (0,)
        with pytest.raises(ValueError):
            PoissonArrivals().arrival_times(-1)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(vms_per_day=0.0)

    def test_deterministic_with_seed(self):
        a = PoissonArrivals(seed=7).arrival_times(100)
        b = PoissonArrivals(seed=7).arrival_times(100)
        assert np.allclose(a, b)


class TestLognormalArrivals:
    def test_mean_preserved(self):
        arrivals = LognormalArrivals(vms_per_day=1000.0, sigma=1.5, seed=0)
        gaps = arrivals.interarrival_times(200000)
        assert gaps.mean() == pytest.approx(SECONDS_PER_DAY / 1000.0, rel=0.1)

    def test_burstier_than_poisson(self):
        """At the same mean rate, the lognormal gaps have a higher variance."""
        poisson = PoissonArrivals(vms_per_day=1000.0, seed=0).interarrival_times(50000)
        lognormal = LognormalArrivals(
            vms_per_day=1000.0, sigma=1.5, seed=0
        ).interarrival_times(50000)
        assert lognormal.std() > poisson.std()

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            LognormalArrivals(sigma=0.0)
