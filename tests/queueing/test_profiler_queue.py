"""Tests for the profiling-server queue simulation."""

import numpy as np
import pytest

from repro.queueing.profiler_queue import ProfilingQueueSimulator


class TestProfilingQueueSimulator:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProfilingQueueSimulator(num_servers=0)
        with pytest.raises(ValueError):
            ProfilingQueueSimulator(num_servers=1, cache_ttl_seconds=0.0)
        sim = ProfilingQueueSimulator(num_servers=1)
        with pytest.raises(ValueError):
            sim.simulate([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            sim.simulate([1.0, 0.0], [1.0, 1.0])

    def test_empty_trace(self):
        outcome = ProfilingQueueSimulator(num_servers=2).simulate([], [])
        assert outcome.mean_reaction_seconds == 0.0
        assert not outcome.unstable

    def test_single_job_reaction_equals_service(self):
        outcome = ProfilingQueueSimulator(num_servers=1).simulate([0.0], [120.0])
        assert outcome.mean_reaction_seconds == pytest.approx(120.0)
        assert outcome.jobs[0].waiting_time == pytest.approx(0.0)

    def test_queueing_when_jobs_overlap(self):
        # Two jobs arrive together on one server: the second waits.
        outcome = ProfilingQueueSimulator(num_servers=1).simulate(
            [0.0, 0.0], [100.0, 100.0]
        )
        assert outcome.jobs[1].waiting_time == pytest.approx(100.0)
        two_servers = ProfilingQueueSimulator(num_servers=2).simulate(
            [0.0, 0.0], [100.0, 100.0]
        )
        assert two_servers.jobs[1].waiting_time == pytest.approx(0.0)

    def test_more_servers_reduce_reaction_time(self):
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 10000, size=300))
        services = np.full(300, 120.0)
        slow = ProfilingQueueSimulator(num_servers=2).simulate(arrivals, services)
        fast = ProfilingQueueSimulator(num_servers=8).simulate(arrivals, services)
        assert fast.mean_reaction_seconds <= slow.mean_reaction_seconds

    def test_instability_detected(self):
        arrivals = np.arange(0.0, 100.0, 1.0)  # one job per second
        services = np.full(100, 10.0)          # each takes 10 seconds
        outcome = ProfilingQueueSimulator(num_servers=1).simulate(arrivals, services)
        assert outcome.unstable
        assert not outcome.acceptable()

    def test_global_information_cache(self):
        arrivals = np.arange(0.0, 1000.0, 100.0)
        services = np.full(10, 50.0)
        apps = ["app-a"] * 10
        cached = ProfilingQueueSimulator(
            num_servers=1, use_global_information=True
        ).simulate(arrivals, services, apps)
        uncached = ProfilingQueueSimulator(
            num_servers=1, use_global_information=False
        ).simulate(arrivals, services, apps)
        assert cached.cache_hit_fraction > 0.5
        assert uncached.cache_hit_fraction == 0.0
        assert cached.mean_reaction_seconds < uncached.mean_reaction_seconds

    def test_cache_expires_after_ttl(self):
        arrivals = np.array([0.0, 10_000.0])
        services = np.array([50.0, 50.0])
        outcome = ProfilingQueueSimulator(
            num_servers=1, use_global_information=True, cache_ttl_seconds=100.0
        ).simulate(arrivals, services, ["app-a", "app-a"])
        assert outcome.cache_hit_fraction == pytest.approx(0.0)

    def test_acceptable_threshold(self):
        outcome = ProfilingQueueSimulator(num_servers=4).simulate([0.0], [120.0])
        assert outcome.acceptable(max_wait_minutes=10.0)
        assert not outcome.acceptable(max_wait_minutes=1.0)
