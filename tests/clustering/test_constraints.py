"""Tests for constrained clustering."""

import numpy as np
import pytest

from repro.clustering.constraints import (
    CannotLinkConstraints,
    ConstrainedGaussianMixtureEM,
)


def _normal_data(seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(loc=[0.0, 0.0], scale=1.0, size=(200, 2))


class TestCannotLinkConstraints:
    def test_add_and_matrix(self):
        constraints = CannotLinkConstraints()
        constraints.add(np.array([1.0, 2.0]))
        constraints.add([3.0, 4.0])
        assert len(constraints) == 2
        assert constraints.as_matrix(2).shape == (2, 2)

    def test_empty_matrix(self):
        assert CannotLinkConstraints().as_matrix(3).shape == (0, 3)


class TestConstrainedEM:
    def test_without_constraints_behaves_like_plain_em(self):
        data = _normal_data()
        model = ConstrainedGaussianMixtureEM(seed=1).fit(data)
        assert model.n_components >= 1

    def test_constraint_point_pushed_outside_acceptance(self):
        data = _normal_data()
        em = ConstrainedGaussianMixtureEM(acceptance_sigma=3.0, seed=1)
        # A point near the edge of the normal cluster, labelled interference.
        excluded = np.array([2.0, 2.0])
        constraints = CannotLinkConstraints()
        constraints.add(excluded)
        model = em.fit(data, constraints)
        distance = model.mahalanobis(excluded[None, :])[0]
        assert distance > 3.0

    def test_far_constraint_does_not_shrink(self):
        data = _normal_data()
        em = ConstrainedGaussianMixtureEM(acceptance_sigma=3.0, seed=1)
        unconstrained = em.fit(data)
        constraints = CannotLinkConstraints()
        constraints.add(np.array([100.0, 100.0]))
        constrained = em.fit(data, constraints)
        assert np.allclose(constrained.variances, unconstrained.variances)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ConstrainedGaussianMixtureEM(acceptance_sigma=0.0)
        with pytest.raises(ValueError):
            ConstrainedGaussianMixtureEM(shrink_factor=1.5)

    def test_normal_points_remain_acceptable_after_shrinking(self):
        data = _normal_data()
        em = ConstrainedGaussianMixtureEM(acceptance_sigma=3.0, seed=1)
        constraints = CannotLinkConstraints()
        constraints.add(np.array([3.5, 3.5]))
        model = em.fit(data, constraints)
        # The bulk of the normal data should still be within the radius.
        distances = model.mahalanobis(data)
        assert (distances <= 3.0).mean() > 0.5
