"""Tests for the Gaussian-mixture EM implementation."""

import numpy as np
import pytest

from repro.clustering.em import GaussianMixtureEM


def _two_blobs(n=150, separation=8.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=[0.0, 0.0], scale=0.5, size=(n, 2))
    b = rng.normal(loc=[separation, separation], scale=0.5, size=(n, 2))
    return a, b


class TestGaussianMixtureEM:
    def test_fits_two_well_separated_clusters(self):
        a, b = _two_blobs()
        model = GaussianMixtureEM(n_components=2, seed=1).fit(np.vstack([a, b]))
        assert model.n_components == 2
        labels_a = model.predict(a)
        labels_b = model.predict(b)
        # Each blob is assigned almost entirely to a single (distinct) component.
        assert (labels_a == np.bincount(labels_a).argmax()).mean() > 0.95
        assert (labels_b == np.bincount(labels_b).argmax()).mean() > 0.95
        assert np.bincount(labels_a).argmax() != np.bincount(labels_b).argmax()

    def test_bic_model_selection_finds_two_components(self):
        a, b = _two_blobs()
        model = GaussianMixtureEM(max_components=5, seed=1).fit(np.vstack([a, b]))
        assert 2 <= model.n_components <= 3

    def test_single_cluster_selected_for_unimodal_data(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(200, 3))
        model = GaussianMixtureEM(max_components=4, seed=1).fit(data)
        assert model.n_components <= 2

    def test_weights_sum_to_one(self):
        a, b = _two_blobs()
        model = GaussianMixtureEM(n_components=2, seed=1).fit(np.vstack([a, b]))
        assert model.weights.sum() == pytest.approx(1.0)

    def test_mahalanobis_small_inside_cluster(self):
        a, b = _two_blobs()
        model = GaussianMixtureEM(n_components=2, seed=1).fit(np.vstack([a, b]))
        inside = model.mahalanobis(np.array([[0.0, 0.0]]))[0]
        outside = model.mahalanobis(np.array([[4.0, 4.0]]))[0]
        assert inside < 1.5
        assert outside > 4.0

    def test_responsibilities_rows_sum_to_one(self):
        a, b = _two_blobs()
        model = GaussianMixtureEM(n_components=2, seed=1).fit(np.vstack([a, b]))
        resp = model.responsibilities(np.vstack([a[:10], b[:10]]))
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_score_samples_higher_near_means(self):
        a, b = _two_blobs()
        model = GaussianMixtureEM(n_components=2, seed=1).fit(np.vstack([a, b]))
        near = model.score_samples(np.array([[0.0, 0.0]]))[0]
        far = model.score_samples(np.array([[20.0, -20.0]]))[0]
        assert near > far

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixtureEM().fit(np.empty((0, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianMixtureEM(n_components=0)
        with pytest.raises(ValueError):
            GaussianMixtureEM(max_components=0)

    def test_more_components_than_points_clamped(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        model = GaussianMixtureEM(n_components=10, seed=0).fit(data)
        assert model.n_components <= 3

    def test_deterministic_given_seed(self):
        a, b = _two_blobs()
        data = np.vstack([a, b])
        m1 = GaussianMixtureEM(n_components=2, seed=9).fit(data)
        m2 = GaussianMixtureEM(n_components=2, seed=9).fit(data)
        assert np.allclose(np.sort(m1.means, axis=0), np.sort(m2.means, axis=0))
