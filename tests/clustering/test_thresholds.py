"""Tests for the metric-threshold derivation."""

import numpy as np
import pytest

from repro.clustering.em import GaussianMixtureEM
from repro.clustering.thresholds import MetricThresholds, derive_thresholds


def _model(seed=0):
    rng = np.random.default_rng(seed)
    data = np.column_stack([
        rng.normal(2.0, 0.1, size=300),
        rng.normal(10.0, 1.0, size=300),
    ])
    return GaussianMixtureEM(n_components=1, seed=1).fit(data)


class TestDeriveThresholds:
    def test_thresholds_reflect_spread(self):
        thresholds = derive_thresholds(_model(), ["cpi", "bus"], sigma=3.0)
        assert thresholds["bus"] > thresholds["cpi"]
        assert thresholds["cpi"] == pytest.approx(0.3, rel=0.3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            derive_thresholds(_model(), ["only_one"])

    def test_floors_apply(self):
        thresholds = derive_thresholds(
            _model(), ["cpi", "bus"], floors={"cpi": 5.0}
        )
        assert thresholds["cpi"] == pytest.approx(5.0)

    def test_sigma_scales_thresholds(self):
        narrow = derive_thresholds(_model(), ["cpi", "bus"], sigma=1.0)
        wide = derive_thresholds(_model(), ["cpi", "bus"], sigma=4.0)
        assert wide["cpi"] > narrow["cpi"]


class TestMetricThresholds:
    def _thresholds(self):
        return MetricThresholds(thresholds={"cpi": 0.5, "bus": 2.0}, sigma=3.0)

    def test_matches_within(self):
        mt = self._thresholds()
        assert mt.matches({"cpi": 2.2, "bus": 9.0}, {"cpi": 2.0, "bus": 10.0})

    def test_violations_reported(self):
        mt = self._thresholds()
        violated = mt.violated_dimensions(
            {"cpi": 3.0, "bus": 9.5}, {"cpi": 2.0, "bus": 10.0}
        )
        assert violated == ("cpi",)
        assert not mt.matches({"cpi": 3.0, "bus": 9.5}, {"cpi": 2.0, "bus": 10.0})

    def test_scaled(self):
        mt = self._thresholds().scaled(2.0)
        assert mt["cpi"] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            self._thresholds().scaled(0.0)

    def test_contains_and_as_array(self):
        mt = self._thresholds()
        assert "cpi" in mt
        assert "ghost" not in mt
        assert mt.as_array(["bus", "cpi"])[0] == pytest.approx(2.0)
