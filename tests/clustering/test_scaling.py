"""Tests for the standard scaler."""

import numpy as np
import pytest

from repro.clustering.scaling import StandardScaler


class TestStandardScaler:
    def test_fit_transform_standardises(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=[10.0, -3.0], scale=[2.0, 0.5], size=(200, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_transform_single_vector(self):
        scaler = StandardScaler().fit(np.array([[0.0, 0.0], [2.0, 4.0]]))
        out = scaler.transform(np.array([1.0, 2.0]))
        assert out.shape == (2,)
        assert np.allclose(out, 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(0, 5, size=(50, 3))
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_dimension_does_not_blow_up(self):
        data = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.zeros((2, 2)))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.empty((0, 3)))
