"""Regression: EM clustering is deterministic under a fixed seed.

The vectorization refactor must never silently change cluster
assignments — the warning thresholds MT, the acceptance regions and
every downstream decision derive from the fitted mixture.  These tests
pin bit-identical refits under a fixed seed for the plain EM, the
constrained EM, and the full repository fit.
"""

import numpy as np

from repro.clustering.constraints import (
    CannotLinkConstraints,
    ConstrainedGaussianMixtureEM,
)
from repro.clustering.em import GaussianMixtureEM
from repro.core.repository import BehaviorRepository
from repro.metrics.sample import WARNING_METRICS, MetricVector


def _two_cluster_data(seed: int = 5, n_per_cluster: int = 40) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.3, size=(n_per_cluster, 4))
    b = rng.normal(5.0, 0.3, size=(n_per_cluster, 4))
    return np.vstack([a, b])


def _assert_models_identical(m1, m2):
    assert m1.n_components == m2.n_components
    assert np.array_equal(m1.weights, m2.weights)
    assert np.array_equal(m1.means, m2.means)
    assert np.array_equal(m1.variances, m2.variances)
    assert m1.log_likelihood == m2.log_likelihood
    assert m1.n_iter == m2.n_iter


class TestEMDeterminism:
    def test_same_seed_produces_bitwise_identical_fit(self):
        data = _two_cluster_data()
        m1 = GaussianMixtureEM(max_components=4, seed=17).fit(data)
        m2 = GaussianMixtureEM(max_components=4, seed=17).fit(data)
        _assert_models_identical(m1, m2)
        assert np.array_equal(m1.predict(data), m2.predict(data))

    def test_fixed_seed_recovers_the_two_planted_clusters(self):
        data = _two_cluster_data()
        model = GaussianMixtureEM(max_components=4, seed=17).fit(data)
        labels = model.predict(data)
        assert model.n_components == 2
        # Every point of a planted cluster gets the same label, and the
        # two planted clusters get different labels.
        first, second = labels[:40], labels[40:]
        assert len(set(first.tolist())) == 1
        assert len(set(second.tolist())) == 1
        assert first[0] != second[0]

    def test_constrained_em_is_deterministic(self):
        data = _two_cluster_data(seed=9)
        constraints = CannotLinkConstraints()
        constraints.add(np.full(4, 2.5))
        fits = [
            ConstrainedGaussianMixtureEM(
                max_components=4, acceptance_sigma=3.0, seed=31
            ).fit(data, constraints)
            for _ in range(2)
        ]
        _assert_models_identical(fits[0], fits[1])


class TestRepositoryFitDeterminism:
    def _populated_repository(self) -> BehaviorRepository:
        repository = BehaviorRepository(min_normal_behaviors=8, seed=3)
        rng = np.random.default_rng(1234)
        for scale in (1.0, 4.0):
            for _ in range(16):
                values = {
                    name: float(v)
                    for name, v in zip(
                        WARNING_METRICS,
                        np.abs(rng.normal(1.0, 0.05, len(WARNING_METRICS)))
                        * scale,
                    )
                }
                repository.add_normal(
                    "app", MetricVector(values=values, label="app"), refit=False
                )
        return repository

    def test_repository_fit_is_reproducible(self):
        entries = []
        for _ in range(2):
            repository = self._populated_repository()
            repository.fit("app")
            entries.append(repository.entry("app"))
        m1, m2 = entries[0].model, entries[1].model
        _assert_models_identical(m1, m2)
        t1, t2 = entries[0].thresholds, entries[1].thresholds
        assert t1.thresholds == t2.thresholds
        d1 = entries[0].scaler.mean_
        d2 = entries[1].scaler.mean_
        assert np.array_equal(d1, d2)

    def test_refit_on_same_vectors_is_stable(self):
        repository = self._populated_repository()
        repository.fit("app")
        before = repository.entry("app").model
        repository.fit("app")
        after = repository.entry("app").model
        _assert_models_identical(before, after)
