"""Tests for machine and architecture specifications."""

import pytest

from repro.hardware.specs import (
    CORE_I7_E5640,
    XEON_X5472,
    available_machine_specs,
    get_machine_spec,
)


class TestSpecs:
    def test_xeon_matches_paper_description(self):
        arch = XEON_X5472.architecture
        assert arch.cores == 8
        assert arch.frequency_hz == pytest.approx(3.0e9)
        assert arch.shared_cache_mb == pytest.approx(12.0)
        assert arch.cores_per_cache_domain == 2
        assert arch.front_side_bus is True
        assert XEON_X5472.dram_gb == pytest.approx(8.0)
        assert XEON_X5472.disk.count == 2
        assert XEON_X5472.nic.bandwidth_mbps == pytest.approx(1000.0)

    def test_i7_matches_paper_description(self):
        arch = CORE_I7_E5640.architecture
        assert arch.cores == 8
        assert arch.frequency_hz == pytest.approx(2.67e9)
        assert arch.front_side_bus is False
        assert arch.sockets == 2

    def test_cache_domains(self):
        assert XEON_X5472.architecture.cache_domains == 4
        assert CORE_I7_E5640.architecture.cache_domains == 2

    def test_get_machine_spec(self):
        assert get_machine_spec("xeon_x5472") is XEON_X5472
        assert get_machine_spec("core_i7") is CORE_I7_E5640
        with pytest.raises(KeyError):
            get_machine_spec("m1-ultra")

    def test_available_machine_specs(self):
        assert set(available_machine_specs()) == {"xeon_x5472", "core_i7"}

    def test_with_nic_bandwidth(self):
        slower = XEON_X5472.with_nic_bandwidth(100.0)
        assert slower.nic.bandwidth_mbps == pytest.approx(100.0)
        assert XEON_X5472.nic.bandwidth_mbps == pytest.approx(1000.0)
        assert slower.architecture is XEON_X5472.architecture

    def test_name_property(self):
        assert XEON_X5472.name == "xeon_x5472"
