"""Tests for the memory-interconnect contention model."""

import pytest

from repro.hardware.membus import MemoryBusModel
from repro.hardware.specs import CORE_I7_E5640, XEON_X5472


@pytest.fixture
def fsb():
    return MemoryBusModel(XEON_X5472.architecture)


@pytest.fixture
def qpi():
    return MemoryBusModel(CORE_I7_E5640.architecture)


class TestMemoryBusModel:
    def test_uncontended_latency_is_base_latency(self, fsb):
        assert fsb.contended_latency(0.0) == pytest.approx(
            XEON_X5472.architecture.memory_cycles
        )

    def test_latency_increases_with_utilization(self, fsb):
        assert fsb.contended_latency(0.8) > fsb.contended_latency(0.3)

    def test_latency_clamped_at_max_utilization(self, fsb):
        assert fsb.contended_latency(5.0) == pytest.approx(
            fsb.contended_latency(MemoryBusModel.MAX_UTILIZATION)
        )

    def test_fsb_degrades_faster_than_qpi(self, fsb, qpi):
        fsb_inflation = fsb.contended_latency(0.8) / fsb.contended_latency(0.0)
        qpi_inflation = qpi.contended_latency(0.8) / qpi.contended_latency(0.0)
        assert fsb_inflation > qpi_inflation

    def test_resolve_under_capacity_grants_everything(self, fsb):
        outcomes = fsb.resolve({"a": 100.0}, {"a": 10.0}, {"a": 5.0}, epoch_seconds=1.0)
        assert outcomes["a"].granted_mb == pytest.approx(115.0)
        assert outcomes["a"].bandwidth_share == pytest.approx(1.0)

    def test_resolve_over_capacity_shares_proportionally(self, fsb):
        capacity = XEON_X5472.architecture.memory_bandwidth_mbps
        outcomes = fsb.resolve(
            {"a": capacity, "b": capacity * 3},
            {"a": 0.0, "b": 0.0},
            {"a": 0.0, "b": 0.0},
            epoch_seconds=1.0,
        )
        total_granted = outcomes["a"].granted_mb + outcomes["b"].granted_mb
        assert total_granted == pytest.approx(capacity, rel=1e-6)
        assert outcomes["b"].granted_mb == pytest.approx(outcomes["a"].granted_mb * 3)
        assert outcomes["a"].bandwidth_share < 1.0

    def test_utilization_shared_across_vms(self, fsb):
        outcomes = fsb.resolve({"a": 1000.0, "b": 2000.0}, {}, {}, epoch_seconds=1.0)
        assert outcomes["a"].utilization == outcomes["b"].utilization

    def test_bandwidth_share_of_idle_vm(self, fsb):
        outcomes = fsb.resolve({"a": 0.0}, {}, {}, epoch_seconds=1.0)
        assert outcomes["a"].bandwidth_share == 1.0

    def test_bandwidth_share_helper(self, fsb):
        capacity = XEON_X5472.architecture.memory_bandwidth_mbps
        assert fsb.bandwidth_share_mb(100.0, 200.0, 1.0) == pytest.approx(100.0)
        share = fsb.bandwidth_share_mb(capacity, capacity * 2, 1.0)
        assert share == pytest.approx(capacity / 2)
