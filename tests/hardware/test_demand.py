"""Tests for resource demands."""

import pytest

from repro.hardware.demand import ResourceDemand


class TestResourceDemand:
    def test_scaled_preserves_per_instruction_character(self):
        demand = ResourceDemand(instructions=1e9, disk_mb=10.0, network_mbit=20.0,
                                l1_miss_pki=25.0, working_set_mb=32.0)
        double = demand.scaled(2.0)
        assert double.instructions == pytest.approx(2e9)
        assert double.disk_mb == pytest.approx(20.0)
        assert double.network_mbit == pytest.approx(40.0)
        # per-instruction characteristics untouched
        assert double.l1_miss_pki == demand.l1_miss_pki
        assert double.working_set_mb == demand.working_set_mb

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceDemand(instructions=1.0).scaled(-1.0)

    def test_validate_accepts_reasonable_demand(self):
        ResourceDemand(instructions=1e9).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"instructions": -1.0},
            {"instructions": 1.0, "vcpus": 0},
            {"instructions": 1.0, "locality": 1.5},
            {"instructions": 1.0, "branch_mispredict_rate": -0.1},
            {"instructions": 1.0, "disk_sequential_fraction": 2.0},
            {"instructions": 1.0, "working_set_mb": -5.0},
            {"instructions": 1.0, "network_mbit": -1.0},
        ],
    )
    def test_validate_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ResourceDemand(**kwargs).validate()

    def test_idle_demand(self):
        idle = ResourceDemand.idle()
        idle.validate()
        assert idle.instructions == 0.0
        assert idle.disk_mb == 0.0
        assert idle.network_mbit == 0.0

    def test_as_dict_contains_all_knobs(self):
        d = ResourceDemand(instructions=1e9).as_dict()
        for key in ("instructions", "working_set_mb", "locality", "disk_mb",
                    "network_mbit", "vcpus", "write_fraction"):
            assert key in d
