"""Tests for the shared-cache contention model."""

import pytest

from repro.hardware.cache import SharedCacheModel
from repro.hardware.demand import ResourceDemand
from repro.hardware.specs import XEON_X5472


@pytest.fixture
def cache_model():
    return SharedCacheModel(XEON_X5472.architecture)


def _demand(ws=8.0, miss_pki=30.0, locality=0.7, inst=1e9):
    return ResourceDemand(
        instructions=inst, working_set_mb=ws, l1_miss_pki=miss_pki, locality=locality
    )


class TestSharedCacheModel:
    def test_fitting_working_set_has_low_miss_ratio(self, cache_model):
        outcome = cache_model.isolation_outcome(_demand(ws=4.0))
        assert outcome.miss_ratio <= 0.05

    def test_oversized_working_set_misses(self, cache_model):
        outcome = cache_model.isolation_outcome(_demand(ws=200.0, locality=0.1))
        assert outcome.miss_ratio > 0.4

    def test_locality_reduces_misses(self, cache_model):
        streaming = cache_model.isolation_outcome(_demand(ws=100.0, locality=0.0))
        friendly = cache_model.isolation_outcome(_demand(ws=100.0, locality=0.9))
        assert friendly.miss_ratio < streaming.miss_ratio

    def test_colocated_victim_misses_more_than_alone(self, cache_model):
        """The paper's motivating example: two VMs thrash together but fit alone."""
        victim = _demand(ws=8.0)
        alone = cache_model.isolation_outcome(victim)
        shared = cache_model.resolve({
            "victim": victim,
            "polluter": _demand(ws=11.0, miss_pki=120.0, locality=0.9),
        })["victim"]
        assert shared.miss_ratio > alone.miss_ratio

    def test_occupancy_bounded_by_working_set_and_cache(self, cache_model):
        outcomes = cache_model.resolve({
            "small": _demand(ws=2.0),
            "large": _demand(ws=400.0),
        })
        assert outcomes["small"].occupancy_mb <= 2.0 + 1e-9
        total = sum(o.occupancy_mb for o in outcomes.values())
        assert total <= cache_model.size_mb + 1e-9

    def test_idle_vm_gets_compulsory_misses_only(self, cache_model):
        outcome = cache_model.resolve({"idle": ResourceDemand.idle()})["idle"]
        assert outcome.llc_accesses == 0.0
        assert outcome.occupancy_mb == 0.0

    def test_accesses_scale_with_instructions(self, cache_model):
        small = cache_model.isolation_outcome(_demand(inst=1e8))
        large = cache_model.isolation_outcome(_demand(inst=1e9))
        assert large.llc_accesses == pytest.approx(small.llc_accesses * 10, rel=1e-6)

    def test_miss_ratio_between_zero_and_one(self, cache_model):
        for ws in (0.5, 8.0, 64.0, 1024.0):
            outcome = cache_model.isolation_outcome(_demand(ws=ws))
            assert 0.0 <= outcome.miss_ratio <= 1.0
