"""Tests for the physical-machine contention model."""

import pytest

from repro.hardware.demand import ResourceDemand
from repro.hardware.machine import PhysicalMachine


class TestRunEpochBasics:
    def test_empty_epoch(self, machine):
        result = machine.run_epoch({})
        assert result.per_vm == {}

    def test_invalid_epoch_length(self, machine, cpu_demand):
        with pytest.raises(ValueError):
            machine.run_epoch({"vm": cpu_demand}, epoch_seconds=0.0)

    def test_counters_scale_with_work(self, machine, cpu_demand):
        outcome = machine.run_in_isolation(cpu_demand)
        sample = outcome.counters
        assert sample.inst_retired > 0
        assert sample.cpu_unhalted > sample.inst_retired * 0.5
        assert sample.l1d_repl == pytest.approx(
            sample.inst_retired * cpu_demand.l1_miss_pki / 1000.0, rel=0.05
        )

    def test_idle_demand_produces_zero_counters(self, machine):
        outcome = machine.run_in_isolation(ResourceDemand.idle())
        assert outcome.instructions_retired == 0.0
        assert outcome.counters.cpu_unhalted == 0.0
        assert outcome.progress == 1.0

    def test_light_demand_completes(self, machine, cpu_demand):
        outcome = machine.run_in_isolation(cpu_demand)
        assert outcome.progress == pytest.approx(1.0)
        assert outcome.instructions_retired == pytest.approx(
            cpu_demand.instructions, rel=0.02
        )

    def test_excessive_demand_is_capacity_limited(self, machine, cpu_demand):
        heavy = cpu_demand.scaled(50.0)
        outcome = machine.run_in_isolation(heavy)
        assert outcome.progress < 1.0
        assert outcome.instructions_retired < heavy.instructions
        assert outcome.instructions_attainable == pytest.approx(
            outcome.instructions_retired, rel=1e-6
        )

    def test_attainable_at_least_retired(self, machine, cpu_demand, io_demand):
        for demand in (cpu_demand, io_demand):
            outcome = machine.run_in_isolation(demand)
            assert (
                outcome.instructions_attainable >= outcome.instructions_retired - 1e-6
            )

    def test_missing_core_assignment_rejected(self, machine, cpu_demand):
        with pytest.raises(ValueError):
            machine.run_epoch({"vm": cpu_demand}, core_assignment={"vm": []})

    def test_cpu_cap_limits_retirement(self, machine, cpu_demand):
        heavy = cpu_demand.scaled(50.0)
        uncapped = machine.run_in_isolation(heavy, cpu_cap=1.0)
        capped = machine.run_in_isolation(heavy, cpu_cap=0.5)
        assert capped.instructions_retired < uncapped.instructions_retired

    def test_determinism_with_same_seed(self, cpu_demand):
        a = PhysicalMachine(noise=0.02, seed=42).run_in_isolation(cpu_demand)
        b = PhysicalMachine(noise=0.02, seed=42).run_in_isolation(cpu_demand)
        assert a.counters.inst_retired == pytest.approx(b.counters.inst_retired)
        assert a.counters.l1d_repl == pytest.approx(b.counters.l1d_repl)

    def test_noise_perturbs_counters(self, cpu_demand):
        quiet = PhysicalMachine(noise=0.0, seed=1).run_in_isolation(cpu_demand)
        noisy = PhysicalMachine(noise=0.05, seed=1).run_in_isolation(cpu_demand)
        assert noisy.counters.l1d_repl != pytest.approx(
            quiet.counters.l1d_repl, rel=1e-6
        )

    def test_counters_validate(self, noisy_machine, memory_demand, io_demand):
        result = noisy_machine.run_epoch({"mem": memory_demand, "io": io_demand})
        for outcome in result.per_vm.values():
            outcome.counters.validate()


class TestInterferenceEffects:
    def test_memory_stress_slows_colocated_victim(
        self, machine, cpu_demand, memory_demand
    ):
        alone = machine.run_in_isolation(cpu_demand.scaled(3.0))
        together = machine.run_epoch(
            {"victim": cpu_demand.scaled(3.0), "stress": memory_demand.scaled(3.0)}
        )
        victim = together.per_vm["victim"]
        assert victim.cpi > alone.cpi
        assert victim.instructions_attainable < alone.instructions_attainable

    def test_cache_domain_sharing_increases_misses(self, machine, cpu_demand):
        polluter = ResourceDemand(
            instructions=2e9, working_set_mb=11.0, l1_miss_pki=120.0, locality=0.9
        )
        separate = machine.run_epoch(
            {"victim": cpu_demand, "polluter": polluter},
            core_assignment={"victim": [0, 1], "polluter": [2, 3]},
        )
        shared = machine.run_epoch(
            {"victim": cpu_demand, "polluter": polluter},
            core_assignment={"victim": [0, 1], "polluter": [1, 3]},
        )
        miss_rate_shared = (
            shared.per_vm["victim"].counters.l2_lines_in
            / max(shared.per_vm["victim"].counters.inst_retired, 1.0)
        )
        miss_rate_separate = (
            separate.per_vm["victim"].counters.l2_lines_in
            / max(separate.per_vm["victim"].counters.inst_retired, 1.0)
        )
        assert miss_rate_shared > miss_rate_separate

    @staticmethod
    def _per_inst(sample, counter):
        return sample[counter] / max(sample.inst_retired, 1.0)

    def test_disk_contention_creates_disk_stalls(self, machine, io_demand):
        stressor = ResourceDemand(
            instructions=1e8, disk_mb=60.0, disk_sequential_fraction=0.1
        )
        alone = machine.run_in_isolation(io_demand)
        together = machine.run_epoch({"victim": io_demand, "stress": stressor})
        victim = together.per_vm["victim"].counters
        assert self._per_inst(victim, "disk_stall_cycles") > self._per_inst(
            alone.counters, "disk_stall_cycles"
        )
        assert (
            together.per_vm["victim"].instructions_retired < alone.instructions_retired
        )

    def test_network_contention_creates_net_stalls(self, machine):
        victim = ResourceDemand(instructions=5e8, network_mbit=300.0)
        iperf = ResourceDemand(instructions=1e8, network_mbit=1400.0)
        alone = machine.run_in_isolation(victim)
        together = machine.run_epoch({"victim": victim, "iperf": iperf})
        victim_counters = together.per_vm["victim"].counters
        assert self._per_inst(victim_counters, "net_stall_cycles") > self._per_inst(
            alone.counters, "net_stall_cycles"
        )

    def test_bus_utilization_reported(self, machine, memory_demand):
        result = machine.run_epoch({"mem": memory_demand})
        assert 0.0 < result.bus_utilization <= 1.0

    def test_default_core_assignment_covers_all_vms(self, machine, cpu_demand):
        demands = {f"vm{i}": cpu_demand for i in range(3)}
        assignment = machine.default_core_assignment(demands)
        assert set(assignment) == set(demands)
        for cores in assignment.values():
            assert len(cores) == cpu_demand.vcpus
