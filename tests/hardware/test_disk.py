"""Tests for the disk contention model."""

import pytest

from repro.hardware.demand import ResourceDemand
from repro.hardware.disk import DiskModel
from repro.hardware.specs import DiskSpec


@pytest.fixture
def disk():
    return DiskModel(DiskSpec(count=2, sequential_mbps=100.0, random_efficiency=0.06))


def _demand(mb=10.0, seq=0.8):
    return ResourceDemand(instructions=1e8, disk_mb=mb, disk_sequential_fraction=seq)


class TestDiskModel:
    def test_sequential_bandwidth_exceeds_random(self, disk):
        assert disk.aggregate_bandwidth_mbps(1.0) > disk.aggregate_bandwidth_mbps(0.0)

    def test_random_bandwidth_matches_efficiency(self, disk):
        assert disk.aggregate_bandwidth_mbps(0.0) == pytest.approx(2 * 100.0 * 0.06)

    def test_small_demand_fully_served(self, disk):
        outcome = disk.isolation_outcome(_demand(mb=5.0), epoch_seconds=1.0)
        assert outcome.transferred_mb == pytest.approx(5.0)
        assert outcome.satisfaction == pytest.approx(1.0)
        assert outcome.wait_seconds < 0.2

    def test_oversubscribed_demand_partially_served(self, disk):
        outcome = disk.isolation_outcome(_demand(mb=1000.0), epoch_seconds=1.0)
        assert outcome.transferred_mb < 1000.0
        assert outcome.satisfaction < 1.0
        assert outcome.wait_seconds > 0.5

    def test_two_sequential_streams_interfere(self, disk):
        """The paper's example: two sequential streams become random together."""
        alone = disk.isolation_outcome(_demand(mb=40.0, seq=0.9), epoch_seconds=1.0)
        together = disk.resolve(
            {"a": _demand(mb=40.0, seq=0.9), "b": _demand(mb=40.0, seq=0.9)},
            epoch_seconds=1.0,
        )["a"]
        assert together.wait_seconds > alone.wait_seconds
        assert together.transferred_mb <= alone.transferred_mb + 1e-9

    def test_idle_vm_untouched(self, disk):
        outcomes = disk.resolve(
            {"busy": _demand(mb=50.0), "idle": ResourceDemand.idle()},
            epoch_seconds=1.0,
        )
        assert outcomes["idle"].transferred_mb == 0.0
        assert outcomes["idle"].wait_seconds == 0.0
        assert outcomes["idle"].satisfaction == 1.0

    def test_sharing_is_proportional_when_saturated(self, disk):
        outcomes = disk.resolve(
            {"small": _demand(mb=100.0, seq=0.2), "big": _demand(mb=300.0, seq=0.2)},
            epoch_seconds=1.0,
        )
        ratio = outcomes["big"].transferred_mb / max(
            outcomes["small"].transferred_mb, 1e-9
        )
        assert ratio == pytest.approx(3.0, rel=0.01)

    def test_wait_never_exceeds_epoch(self, disk):
        outcome = disk.isolation_outcome(_demand(mb=1e6, seq=0.0), epoch_seconds=1.0)
        assert outcome.wait_seconds <= 1.0
