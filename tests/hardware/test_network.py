"""Tests for the NIC contention model."""

import pytest

from repro.hardware.demand import ResourceDemand
from repro.hardware.network import NicModel
from repro.hardware.specs import NicSpec


@pytest.fixture
def nic():
    return NicModel(NicSpec(count=1, bandwidth_mbps=1000.0))


def _demand(mbit=100.0):
    return ResourceDemand(instructions=1e8, network_mbit=mbit)


class TestNicModel:
    def test_capacity(self, nic):
        assert nic.capacity_mbps == pytest.approx(1000.0)

    def test_light_demand_fully_served(self, nic):
        outcome = nic.isolation_outcome(_demand(100.0), epoch_seconds=1.0)
        assert outcome.transferred_mbit == pytest.approx(100.0)
        assert outcome.satisfaction == pytest.approx(1.0)
        assert outcome.wait_seconds < 0.05

    def test_oversubscription_limits_throughput(self, nic):
        outcomes = nic.resolve(
            {"victim": _demand(400.0), "iperf": _demand(1400.0)}, epoch_seconds=1.0
        )
        total = sum(o.transferred_mbit for o in outcomes.values())
        assert total == pytest.approx(1000.0, rel=1e-6)
        assert outcomes["victim"].satisfaction < 1.0
        assert outcomes["victim"].wait_seconds > 0.1

    def test_queueing_delay_grows_with_utilization(self, nic):
        light = nic.resolve({"v": _demand(100.0)}, epoch_seconds=1.0)["v"]
        heavy = nic.resolve(
            {"v": _demand(100.0), "iperf": _demand(850.0)}, epoch_seconds=1.0
        )["v"]
        assert heavy.wait_seconds > light.wait_seconds

    def test_idle_vm_untouched(self, nic):
        outcomes = nic.resolve(
            {"busy": _demand(500.0), "idle": ResourceDemand.idle()}, epoch_seconds=1.0
        )
        assert outcomes["idle"].transferred_mbit == 0.0
        assert outcomes["idle"].wait_seconds == 0.0

    def test_wait_bounded_by_epoch(self, nic):
        outcome = nic.isolation_outcome(_demand(1e6), epoch_seconds=1.0)
        assert outcome.wait_seconds <= 1.0

    def test_proportional_sharing(self, nic):
        outcomes = nic.resolve(
            {"a": _demand(1000.0), "b": _demand(3000.0)}, epoch_seconds=1.0
        )
        ratio = outcomes["b"].transferred_mbit / outcomes["a"].transferred_mbit
        assert ratio == pytest.approx(3.0, rel=0.01)
