"""Tests for the interference analyzer (Algorithm 2)."""

import pytest

from repro.core.analyzer import AnalysisVerdict, InterferenceAnalyzer
from repro.core.repository import BehaviorRepository
from repro.metrics.cpi import Resource
from repro.virt.sandbox import SandboxEnvironment
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host
from repro.workloads.stress import MemoryStressWorkload


@pytest.fixture
def analyzer(fast_config):
    sandbox = SandboxEnvironment(num_hosts=1, profile_epochs=5, noise=0.0, seed=2)
    return InterferenceAnalyzer(sandbox, BehaviorRepository(), fast_config)


def _production_samples(vm, load, epochs=5, stress=None, stress_load=1.0, seed=4):
    host = Host(name="prod", noise=0.0, seed=seed)
    host.add_vm(vm.clone("prod-copy"), load=load, cores=[0, 1])
    if stress is not None:
        host.add_vm(stress, load=stress_load, cores=[2, 3])
    samples = []
    for _ in range(epochs):
        results = host.step()
        samples.append(results["prod-copy"].counters)
    return samples


class TestBootstrap:
    def test_bootstrap_populates_repository(self, analyzer, data_serving_vm):
        vectors = analyzer.bootstrap(data_serving_vm)
        assert len(vectors) > 0
        assert analyzer.repository.has_model(data_serving_vm.app_id)
        assert analyzer.bootstraps == 1
        assert analyzer.total_profiling_seconds > 0

    def test_bootstrap_custom_levels(self, analyzer, data_serving_vm):
        analyzer.bootstrap(data_serving_vm, load_levels=[0.5, 1.0])
        count = analyzer.repository.normal_count(data_serving_vm.app_id)
        assert count == 2 * analyzer.config.bootstrap_epochs_per_level


class TestAnalysis:
    def test_requires_samples_and_loads(self, analyzer, data_serving_vm):
        with pytest.raises(ValueError):
            analyzer.analyze(data_serving_vm, [], [1.0])
        with pytest.raises(ValueError):
            analyzer.analyze(
                data_serving_vm,
                _production_samples(data_serving_vm, 0.5),
                [],
            )

    def test_false_alarm_extends_normal_set(self, analyzer, data_serving_vm):
        samples = _production_samples(data_serving_vm, load=0.6)
        before = analyzer.repository.normal_count(data_serving_vm.app_id)
        result = analyzer.analyze(data_serving_vm, samples, [0.6] * len(samples))
        assert result.verdict is AnalysisVerdict.NO_INTERFERENCE
        assert not result.confirmed
        assert result.degradation < analyzer.config.performance_threshold
        assert result.culprit is None
        assert analyzer.repository.normal_count(data_serving_vm.app_id) == before + 1

    def test_interference_confirmed_and_attributed(self, analyzer, data_serving_vm):
        stress = VirtualMachine(
            "stress", MemoryStressWorkload(working_set_mb=256.0), vcpus=2, memory_gb=1.0
        )
        samples = _production_samples(data_serving_vm, load=1.1, stress=stress)
        result = analyzer.analyze(data_serving_vm, samples, [1.1] * len(samples))
        assert result.verdict is AnalysisVerdict.INTERFERENCE
        assert result.confirmed
        assert result.degradation > analyzer.config.performance_threshold
        assert result.culprit in (Resource.MEMORY_BUS, Resource.CACHE)
        assert result.factors[result.culprit] > 0
        # The behaviour is recorded as an interference constraint.
        entry = analyzer.repository.entry(data_serving_vm.app_id)
        assert len(entry.interference_vectors) == 1
        assert analyzer.invocations == 1
        assert result.profiling_seconds > 0

    def test_custom_threshold_changes_verdict(self, analyzer, data_serving_vm):
        stress = VirtualMachine(
            "stress", MemoryStressWorkload(working_set_mb=256.0), vcpus=2, memory_gb=1.0
        )
        samples = _production_samples(data_serving_vm, load=1.1, stress=stress)
        lenient = analyzer.analyze(
            data_serving_vm, samples, [1.1] * len(samples), performance_threshold=0.99
        )
        assert lenient.verdict is AnalysisVerdict.NO_INTERFERENCE

    def test_estimate_degradation_helper(self, analyzer, data_serving_vm):
        quiet = _production_samples(data_serving_vm, load=1.1)
        stress = VirtualMachine(
            "stress", MemoryStressWorkload(working_set_mb=256.0), vcpus=2, memory_gb=1.0
        )
        noisy = _production_samples(data_serving_vm, load=1.1, stress=stress)
        degradation = analyzer.estimate_degradation(noisy, quiet)
        assert degradation > 0.2
