"""Tests for the warning system (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository
from repro.core.warning import WarningAction, WarningSystem
from repro.metrics.counters import CounterSample
from repro.metrics.sample import MetricVector


def _vector(scale=1.0, cpi=2.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    inst = 1e9
    sample = CounterSample(
        cpu_unhalted=cpi * inst * (1 + noise * rng.normal()),
        inst_retired=inst,
        l1d_repl=0.02 * inst * scale * (1 + noise * rng.normal()),
        l2_lines_in=0.005 * inst * scale,
        mem_load=0.3 * inst,
        resource_stalls=1.0 * inst * scale,
        bus_tran_any=0.008 * inst * scale,
        br_miss_pred=0.004 * inst,
        disk_stall_cycles=0.1 * inst,
        net_stall_cycles=0.02 * inst,
    )
    return MetricVector.from_sample(sample)


@pytest.fixture
def warning_system():
    repo = BehaviorRepository()
    rng = np.random.default_rng(0)
    repo.add_normal_batch(
        "app", [_vector(noise=0.02, seed=int(rng.integers(1e6))) for _ in range(20)]
    )
    return WarningSystem(repo, DeepDiveConfig())


class TestConservativeMode:
    def test_unknown_app_triggers_analyzer(self):
        system = WarningSystem(BehaviorRepository(), DeepDiveConfig())
        decision = system.evaluate("vm0", "new-app", _vector())
        assert decision.action is WarningAction.ANALYZE
        assert decision.conservative
        assert decision.should_analyze


class TestLocalCheck:
    def test_normal_behaviour_matches(self, warning_system):
        decision = warning_system.evaluate("vm0", "app", _vector(noise=0.02, seed=7))
        assert decision.action is WarningAction.NORMAL
        assert not decision.should_analyze
        assert decision.distance < warning_system.repository.acceptance_radius()

    def test_interference_behaviour_fires(self, warning_system):
        decision = warning_system.evaluate("vm0", "app", _vector(scale=4.0, cpi=6.0))
        assert decision.action is WarningAction.ANALYZE
        assert decision.distance > warning_system.repository.acceptance_radius()
        assert len(decision.violated_dimensions) > 0

    def test_known_interference_shortcut(self, warning_system):
        bad = _vector(scale=4.0, cpi=6.0)
        warning_system.repository.add_interference("app", bad)
        decision = warning_system.evaluate("vm0", "app", bad)
        assert decision.action is WarningAction.KNOWN_INTERFERENCE
        assert decision.flags_interference
        assert not decision.should_analyze

    def test_evaluation_counter(self, warning_system):
        warning_system.evaluate("vm0", "app", _vector())
        warning_system.evaluate("vm1", "app", _vector())
        assert warning_system.evaluations["app"] == 2


class TestGlobalCheck:
    def test_corroborated_deviation_is_workload_change(self, warning_system):
        shifted = _vector(scale=2.5, cpi=3.5, seed=1)
        siblings = {
            f"sibling{i}": _vector(scale=2.5, cpi=3.5, noise=0.01, seed=10 + i)
            for i in range(4)
        }
        decision = warning_system.evaluate("vm0", "app", shifted, siblings)
        assert decision.action is WarningAction.WORKLOAD_CHANGE
        assert decision.siblings_consulted == 4
        assert decision.siblings_agreeing >= 3

    def test_uncorroborated_deviation_triggers_analyzer(self, warning_system):
        shifted = _vector(scale=4.0, cpi=6.0)
        siblings = {
            f"sibling{i}": _vector(noise=0.02, seed=20 + i) for i in range(4)
        }
        decision = warning_system.evaluate("vm0", "app", shifted, siblings)
        assert decision.action is WarningAction.ANALYZE
        assert decision.siblings_agreeing == 0

    def test_single_vm_case_ignores_global(self, warning_system):
        shifted = _vector(scale=4.0, cpi=6.0)
        decision = warning_system.evaluate("vm0", "app", shifted, sibling_vectors={})
        assert decision.action is WarningAction.ANALYZE
        assert decision.siblings_consulted == 0

    def test_own_vm_excluded_from_siblings(self, warning_system):
        shifted = _vector(scale=4.0, cpi=6.0)
        decision = warning_system.evaluate(
            "vm0", "app", shifted, sibling_vectors={"vm0": shifted}
        )
        assert decision.siblings_consulted == 0

    def test_learn_workload_change_extends_repository(self, warning_system):
        before = warning_system.repository.normal_count("app")
        warning_system.learn_workload_change("app", _vector(scale=1.3))
        assert warning_system.repository.normal_count("app") == before + 1
