"""Tests for the threshold baselines (Figure 12 comparison)."""

import pytest

from repro.core.baselines import ThresholdBaseline
from repro.metrics.counters import CounterSample


def _sample(rate):
    return CounterSample(inst_retired=rate, cpu_unhalted=2 * rate, epoch_seconds=1.0)


class TestThresholdBaseline:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdBaseline(threshold=0.0)
        with pytest.raises(ValueError):
            ThresholdBaseline(threshold=1.0)
        with pytest.raises(ValueError):
            ThresholdBaseline(threshold=0.1, reference_alpha=0.0)

    def test_no_trigger_on_stable_rate(self):
        baseline = ThresholdBaseline(threshold=0.1)
        for _ in range(20):
            decision = baseline.observe(_sample(1e9))
        assert baseline.triggers == 0
        assert not decision.trigger

    def test_trigger_on_large_change_after_warmup(self):
        baseline = ThresholdBaseline(threshold=0.1, warmup_epochs=3)
        for _ in range(5):
            baseline.observe(_sample(1e9))
        decision = baseline.observe(_sample(0.5e9))
        assert decision.trigger
        assert baseline.triggers == 1
        assert decision.relative_change > 0.1

    def test_warmup_suppresses_early_triggers(self):
        baseline = ThresholdBaseline(threshold=0.1, warmup_epochs=10)
        baseline.observe(_sample(1e9))
        decision = baseline.observe(_sample(0.3e9))
        assert not decision.trigger

    def test_lower_threshold_triggers_more(self):
        rates = [1e9, 0.92e9, 1.05e9, 0.9e9, 1.1e9, 0.88e9, 1e9, 0.85e9] * 5
        tight = ThresholdBaseline(threshold=0.05, warmup_epochs=2)
        loose = ThresholdBaseline(threshold=0.2, warmup_epochs=2)
        for rate in rates:
            tight.observe(_sample(rate))
            loose.observe(_sample(rate))
        assert tight.triggers > loose.triggers

    def test_reference_reanchors_after_trigger(self):
        baseline = ThresholdBaseline(threshold=0.1, warmup_epochs=1)
        for _ in range(3):
            baseline.observe(_sample(1e9))
        baseline.observe(_sample(0.5e9))  # triggers and re-anchors
        decision = baseline.observe(_sample(0.5e9))
        assert not decision.trigger

    def test_reset(self):
        baseline = ThresholdBaseline(threshold=0.1)
        baseline.observe(_sample(1e9))
        baseline.reset()
        assert baseline.triggers == 0
        assert baseline.decisions == []
