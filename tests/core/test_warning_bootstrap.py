"""Tests for the warning system's conservative bootstrap mode.

Shortly after a VM's deployment the metric space is empty, so every
deviation escalates to the analyzer; the analyzer's answers populate the
repository and the warning system leaves conservative mode.  These tests
check that the learning actually converges: the number of escalations
per epoch drops as behaviours accumulate, and the bootstrap sweep
immediately covers the whole load range.
"""

import pytest

from repro.core.analyzer import InterferenceAnalyzer
from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository
from repro.core.warning import WarningAction, WarningSystem
from repro.metrics.sample import MetricVector
from repro.virt.sandbox import SandboxEnvironment


@pytest.fixture
def config():
    return DeepDiveConfig(
        profile_epochs=5,
        bootstrap_load_levels=5,
        bootstrap_epochs_per_level=4,
        min_normal_behaviors=8,
    )


def _production_vector(host, vm, load):
    host.set_load(vm.name, load)
    results = host.step()
    return MetricVector.from_sample(results[vm.name].counters, label=vm.app_id)


class TestConservativeBootstrap:
    def test_everything_escalates_before_any_learning(
        self, config, data_serving_vm, host
    ):
        repository = BehaviorRepository()
        warning = WarningSystem(repository, config)
        host.add_vm(data_serving_vm, load=0.5)
        for _ in range(3):
            vector = _production_vector(host, data_serving_vm, 0.5)
            decision = warning.evaluate(
                data_serving_vm.name, data_serving_vm.app_id, vector
            )
            assert decision.action is WarningAction.ANALYZE
            assert decision.conservative

    def test_bootstrap_sweep_covers_the_load_range(self, config, data_serving_vm, host):
        repository = BehaviorRepository()
        warning = WarningSystem(repository, config)
        sandbox = SandboxEnvironment(num_hosts=1, profile_epochs=5, noise=0.005, seed=9)
        analyzer = InterferenceAnalyzer(sandbox, repository, config)
        analyzer.bootstrap(data_serving_vm)

        host.add_vm(data_serving_vm, load=0.3)
        # After the sweep, production behaviour at any load in the swept
        # range matches without further analyzer help.
        for load in (0.25, 0.5, 0.75, 0.95):
            vector = _production_vector(host, data_serving_vm, load)
            decision = warning.evaluate(
                data_serving_vm.name, data_serving_vm.app_id, vector
            )
            assert decision.action is WarningAction.NORMAL, load
            assert not decision.conservative

    def test_incremental_learning_reduces_escalations(
        self, config, data_serving_vm, host
    ):
        """Without a bootstrap sweep, analyzing-and-certifying each new
        behaviour (the paper's false-positive learning loop) still makes
        the escalation rate drop over time."""
        repository = BehaviorRepository(min_normal_behaviors=8, refit_every=4)
        warning = WarningSystem(repository, config)
        host.add_vm(data_serving_vm, load=0.5)

        def escalations(epochs, loads):
            count = 0
            for i in range(epochs):
                load = loads[i % len(loads)]
                vector = _production_vector(host, data_serving_vm, load)
                decision = warning.evaluate(
                    data_serving_vm.name, data_serving_vm.app_id, vector
                )
                if decision.should_analyze:
                    count += 1
                    # Emulate the analyzer certifying the behaviour as normal.
                    repository.add_normal(data_serving_vm.app_id, vector, refit=True)
            return count

        first_phase = escalations(10, [0.4, 0.6, 0.8])
        second_phase = escalations(10, [0.4, 0.6, 0.8])
        assert first_phase > 0
        assert second_phase < first_phase
        assert second_phase <= 2
