"""Tests for the DeepDive configuration."""

import pytest

from repro.core.config import DeepDiveConfig


class TestDeepDiveConfig:
    def test_defaults_match_paper(self):
        config = DeepDiveConfig()
        assert config.performance_threshold == pytest.approx(0.20)
        assert config.warning_sigma == pytest.approx(3.0)
        assert config.epoch_seconds > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"performance_threshold": 0.0},
            {"performance_threshold": 1.5},
            {"warning_sigma": 0.0},
            {"global_quorum": 0.0},
            {"global_quorum": 1.5},
            {"profile_epochs": 0},
            {"placement_eval_epochs": 0},
            {"epoch_seconds": 0.0},
            {"smoothing_epochs": 0},
            {"min_normal_behaviors": 1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeepDiveConfig(**kwargs)

    def test_custom_values_kept(self):
        config = DeepDiveConfig(performance_threshold=0.3, profile_epochs=42)
        assert config.performance_threshold == pytest.approx(0.3)
        assert config.profile_epochs == 42
