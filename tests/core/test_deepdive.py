"""Tests for the DeepDive orchestrator."""

import pytest

from repro.core.deepdive import DeepDive
from repro.core.warning import WarningAction
from repro.virt.cluster import Cluster
from repro.virt.vm import VirtualMachine
from repro.workloads.cloud import DataServingWorkload
from repro.workloads.stress import MemoryStressWorkload


@pytest.fixture
def deployment(fast_config):
    """A two-host cluster with one monitored VM and an idle stressor."""
    cluster = Cluster(num_hosts=2, seed=21, noise=0.01)
    victim = VirtualMachine("victim", DataServingWorkload(), vcpus=2, memory_gb=2.0)
    cluster.place_vm(victim, "pm0", load=0.6)
    stress = VirtualMachine(
        "stress", MemoryStressWorkload(working_set_mb=192.0), vcpus=2, memory_gb=1.0
    )
    cluster.place_vm(stress, "pm0", load=0.0)
    deepdive = DeepDive(cluster, config=fast_config)
    return cluster, deepdive, victim, stress


def _run_epochs(cluster, deepdive, victim, count, load=0.6):
    reports = []
    for _ in range(count):
        cluster.step(loads={victim.name: load})
        reports.append(deepdive.observe_epoch(loads={victim.name: load}))
    return reports


class TestBootstrapAndMonitoring:
    def test_bootstrap_unknown_vm(self, deployment):
        _, deepdive, _, _ = deployment
        with pytest.raises(KeyError):
            deepdive.bootstrap_vm("ghost")

    def test_conservative_mode_before_bootstrap(self, deployment):
        cluster, deepdive, victim, _ = deployment
        reports = _run_epochs(cluster, deepdive, victim, 1)
        observation = reports[0].observations[victim.name]
        assert observation.warning.conservative
        # Conservative mode invoked the analyzer, which found no interference
        # and started populating the repository.
        assert observation.analysis is not None
        assert not observation.analysis.confirmed

    def test_normal_operation_after_bootstrap(self, deployment):
        cluster, deepdive, victim, _ = deployment
        deepdive.bootstrap_vm(victim.name)
        reports = _run_epochs(cluster, deepdive, victim, 4)
        actions = [r.observations[victim.name].warning.action for r in reports]
        assert all(a is WarningAction.NORMAL for a in actions)
        assert deepdive.analyzer_invocations() == 0

    def test_epoch_report_helpers(self, deployment):
        cluster, deepdive, victim, _ = deployment
        deepdive.bootstrap_vm(victim.name)
        report = _run_epochs(cluster, deepdive, victim, 1)[0]
        assert report.analyzer_invocations() == 0
        assert report.confirmed_interference() == []

    def test_proxy_records_loads(self, deployment):
        _, deepdive, victim, _ = deployment
        deepdive.observe_load(victim.name, 0.7)
        assert deepdive.proxies[victim.name].latest_load() == pytest.approx(0.7)


class TestDetectionFlow:
    def test_detects_injected_interference(self, deployment):
        cluster, deepdive, victim, stress = deployment
        deepdive.bootstrap_vm(victim.name)
        _run_epochs(cluster, deepdive, victim, 3)
        # Switch the co-located stressor on.
        cluster.get_host("pm0").set_load(stress.name, 1.0)
        reports = _run_epochs(cluster, deepdive, victim, 3, load=0.6)
        confirmed = [
            r.observations[victim.name].interference_confirmed for r in reports
        ]
        assert any(confirmed)
        assert len(deepdive.events.detections()) >= 1
        assert deepdive.analyzer_invocations() >= 1
        assert deepdive.total_profiling_seconds() > 0

    def test_known_interference_avoids_reprofiling(self, deployment):
        cluster, deepdive, victim, stress = deployment

        def victim_invocations():
            return sum(
                1
                for e in deepdive.events.analyzer_invocations()
                if e.vm_name == victim.name
            )

        deepdive.bootstrap_vm(victim.name)
        _run_epochs(cluster, deepdive, victim, 2)
        cluster.get_host("pm0").set_load(stress.name, 1.0)
        _run_epochs(cluster, deepdive, victim, 5)
        invocations_mid = victim_invocations()
        _run_epochs(cluster, deepdive, victim, 3)
        # The signature is known: detection of the victim's interference
        # continues without paying for new profiling runs.
        assert victim_invocations() == invocations_mid
        assert len(deepdive.events.detections()) >= 4

    def test_recovers_after_interference_ends(self, deployment):
        cluster, deepdive, victim, stress = deployment
        deepdive.bootstrap_vm(victim.name)
        _run_epochs(cluster, deepdive, victim, 2)
        cluster.get_host("pm0").set_load(stress.name, 1.0)
        _run_epochs(cluster, deepdive, victim, 3)
        cluster.get_host("pm0").set_load(stress.name, 0.0)
        reports = _run_epochs(cluster, deepdive, victim, 3)
        final = reports[-1].observations[victim.name]
        assert final.warning.action is WarningAction.NORMAL

    def test_analyze_flag_disables_analyzer(self, deployment):
        cluster, deepdive, victim, stress = deployment
        deepdive.bootstrap_vm(victim.name)
        cluster.get_host("pm0").set_load(stress.name, 1.0)
        cluster.step(loads={victim.name: 0.6})
        report = deepdive.observe_epoch(loads={victim.name: 0.6}, analyze=False)
        observation = report.observations[victim.name]
        assert observation.warning.should_analyze
        assert observation.analysis is None
        assert deepdive.analyzer_invocations() == 0

    def test_repository_size_stays_small(self, deployment):
        cluster, deepdive, victim, stress = deployment
        deepdive.bootstrap_vm(victim.name)
        _run_epochs(cluster, deepdive, victim, 5)
        cluster.get_host("pm0").set_load(stress.name, 1.0)
        _run_epochs(cluster, deepdive, victim, 5)
        # The paper's claim: per-VM behaviour storage is a few KB.
        assert deepdive.repository_size_bytes() < 64 * 1024


class TestMitigation:
    def test_confirmed_interference_triggers_migration(self, fast_config):
        cluster = Cluster(num_hosts=3, seed=33, noise=0.01)
        victim = VirtualMachine("victim", DataServingWorkload(), vcpus=2, memory_gb=2.0)
        stress = VirtualMachine(
            "aggressor",
            MemoryStressWorkload(working_set_mb=256.0),
            vcpus=2,
            memory_gb=1.0,
        )
        cluster.place_vm(victim, "pm0", load=1.0)
        cluster.place_vm(stress, "pm0", load=1.0)
        deepdive = DeepDive(cluster, config=fast_config, mitigate=True)
        deepdive.bootstrap_vm(victim.name)
        for _ in range(3):
            cluster.step(loads={victim.name: 1.0})
            deepdive.observe_epoch(loads={victim.name: 1.0})
            if deepdive.events.migrations():
                break
        migrations = deepdive.events.migrations()
        assert len(migrations) >= 1
        # The aggressor (most aggressive user of the culprit resource) moved.
        assert migrations[0].vm_name == "aggressor"
        assert cluster.host_of("aggressor") != "pm0"
