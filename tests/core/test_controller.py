"""Tests for the persistence controller (oscillating interference)."""

import pytest

from repro.core.controller import PersistenceController


def _drive(controller, vm, verdicts):
    decisions = []
    for verdict in verdicts:
        decisions.append(controller.observe(vm, verdict))
        controller.advance_epoch()
    return decisions


class TestPersistenceController:
    def test_validation(self):
        with pytest.raises(ValueError):
            PersistenceController(window_epochs=0)
        with pytest.raises(ValueError):
            PersistenceController(window_epochs=3, required_detections=5)
        with pytest.raises(ValueError):
            PersistenceController(cooldown_epochs=-1)

    def test_single_spike_does_not_trigger(self):
        controller = PersistenceController(window_epochs=5, required_detections=3)
        decisions = _drive(controller, "vm0", [False, True, False, False, False])
        assert not any(d.act for d in decisions)

    def test_persistent_interference_triggers(self):
        controller = PersistenceController(window_epochs=5, required_detections=3)
        decisions = _drive(controller, "vm0", [True, True, True])
        assert decisions[-1].act
        assert decisions[-1].detections_in_window == 3
        assert not decisions[0].act and not decisions[1].act

    def test_oscillating_interference_eventually_triggers(self):
        controller = PersistenceController(window_epochs=6, required_detections=3)
        decisions = _drive(controller, "vm0", [True, False, True, False, True])
        assert decisions[-1].act

    def test_cooldown_suppresses_repeat_actions(self):
        controller = PersistenceController(
            window_epochs=3, required_detections=2, cooldown_epochs=5
        )
        decisions = _drive(controller, "vm0", [True, True, True, True])
        acts = [d.act for d in decisions]
        assert acts[1] is True
        assert acts[2] is False and acts[3] is False
        assert "cooldown" in decisions[2].reason

    def test_acts_again_after_cooldown(self):
        controller = PersistenceController(
            window_epochs=3, required_detections=2, cooldown_epochs=3
        )
        decisions = _drive(controller, "vm0", [True, True, False, False, True, True])
        assert decisions[1].act
        assert decisions[-1].act

    def test_vms_tracked_independently(self):
        controller = PersistenceController(window_epochs=3, required_detections=2)
        controller.observe("a", True)
        controller.observe("b", False)
        controller.advance_epoch()
        a = controller.observe("a", True)
        b = controller.observe("b", True)
        assert a.act
        assert not b.act

    def test_reset(self):
        controller = PersistenceController(window_epochs=3, required_detections=2)
        _drive(controller, "vm0", [True, True])
        controller.reset("vm0")
        decision = controller.observe("vm0", True)
        assert not decision.act
        controller.reset()
        assert controller.observe("vm0", True).detections_in_window == 1
