"""Tests for the VM placement manager."""

import pytest

from repro.core.placement import PlacementManager
from repro.metrics.counters import CounterSample
from repro.metrics.cpi import Resource
from repro.virt.sandbox import SandboxEnvironment
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host
from repro.workloads.cloud import DataServingWorkload, WebSearchWorkload
from repro.workloads.stress import MemoryStressWorkload


@pytest.fixture
def manager(fast_config):
    sandbox = SandboxEnvironment(num_hosts=1, profile_epochs=5, noise=0.0, seed=8)
    return PlacementManager(sandbox=sandbox, synthesizer=None, config=fast_config)


def _loaded_host(name, workload, load, seed=0):
    host = Host(name=name, noise=0.0, seed=seed)
    host.add_vm(VirtualMachine(f"{name}-resident", workload, vcpus=2, memory_gb=2.0),
                load=load, cores=[0, 1])
    return host


class TestAggressorSelection:
    def test_selects_heaviest_user_of_culprit_resource(
        self, host, data_serving_vm, stress_vm
    ):
        host.add_vm(data_serving_vm, load=0.8, cores=[0, 1])
        host.add_vm(stress_vm, load=1.0, cores=[2, 3])
        host.step()
        aggressor = PlacementManager(
            SandboxEnvironment(num_hosts=1, profile_epochs=3, seed=1)
        ).select_aggressor(host, Resource.MEMORY_BUS)
        assert aggressor == stress_vm.name

    def test_exclude_list_respected(self, host, data_serving_vm, stress_vm):
        host.add_vm(data_serving_vm, load=0.8, cores=[0, 1])
        host.add_vm(stress_vm, load=1.0, cores=[2, 3])
        host.step()
        manager = PlacementManager(
            SandboxEnvironment(num_hosts=1, profile_epochs=3, seed=1)
        )
        aggressor = manager.select_aggressor(
            host, Resource.MEMORY_BUS, exclude=[stress_vm.name]
        )
        assert aggressor == data_serving_vm.name

    def test_no_counters_returns_none(self, host, data_serving_vm):
        host.add_vm(data_serving_vm)
        manager = PlacementManager(
            SandboxEnvironment(num_hosts=1, profile_epochs=3, seed=1)
        )
        assert manager.select_aggressor(host, Resource.CACHE) is None


class TestSyntheticRepresentation:
    def test_without_synthesizer_falls_back_to_clone(self, manager, stress_vm):
        probe = manager.synthetic_representation(stress_vm, [CounterSample.zeros()])
        assert probe.cloned_from == stress_vm.name

    def test_with_synthesizer_builds_synthetic_vm(
        self, fast_config, stress_vm, machine
    ):
        from repro.regression.training import SyntheticBenchmarkTrainer

        synthesizer = SyntheticBenchmarkTrainer(samples=40, seed=5).train()
        manager = PlacementManager(
            SandboxEnvironment(num_hosts=1, profile_epochs=3, seed=1),
            synthesizer=synthesizer,
            config=fast_config,
        )
        outcome = machine.run_in_isolation(stress_vm.workload.demand(1.0))
        probe = manager.synthetic_representation(stress_vm, [outcome.counters])
        assert probe.workload.name == "synthetic_benchmark"
        assert probe.vcpus == stress_vm.vcpus


class TestDecision:
    def test_decide_prefers_least_loaded_candidate(self, manager, stress_vm, machine):
        # Two candidates: a heavily loaded Data Serving host and a lightly
        # loaded Web Search host; the latter should score better.
        busy = _loaded_host("busy", DataServingWorkload(), load=1.0, seed=11)
        idle = _loaded_host("idle", WebSearchWorkload(), load=0.2, seed=12)
        outcome = machine.run_in_isolation(stress_vm.workload.demand(0.5))
        decision = manager.decide(
            stress_vm,
            source_host="source",
            candidates={"busy": busy, "idle": idle},
            recent_samples=[outcome.counters],
            eval_epochs=4,
        )
        assert decision.destination == "idle"
        assert decision.best().host_name == "idle"
        assert len(decision.evaluations) == 2
        assert decision.evaluations[0].score <= decision.evaluations[1].score

    def test_source_host_excluded(self, manager, stress_vm, machine):
        only = _loaded_host("only", WebSearchWorkload(), load=0.2, seed=13)
        outcome = machine.run_in_isolation(stress_vm.workload.demand(0.5))
        decision = manager.decide(
            stress_vm,
            source_host="only",
            candidates={"only": only},
            recent_samples=[outcome.counters],
            eval_epochs=3,
        )
        assert decision.destination is None
        assert decision.evaluations == []

    def test_full_candidate_skipped(self, manager, machine):
        big_vm = VirtualMachine("huge", MemoryStressWorkload(), vcpus=2, memory_gb=16.0)
        small_host = _loaded_host("small", WebSearchWorkload(), load=0.3, seed=14)
        outcome = machine.run_in_isolation(big_vm.workload.demand(0.5))
        decision = manager.decide(
            big_vm,
            source_host="source",
            candidates={"small": small_host},
            recent_samples=[outcome.counters],
            eval_epochs=3,
        )
        assert decision.destination is None

    def test_decisions_recorded(self, manager, stress_vm, machine):
        idle = _loaded_host("idle", WebSearchWorkload(), load=0.2, seed=15)
        outcome = machine.run_in_isolation(stress_vm.workload.demand(0.5))
        manager.decide(
            stress_vm, "source", {"idle": idle}, [outcome.counters], eval_epochs=3
        )
        assert len(manager.decisions) == 1
