"""Tests for the event log."""

from repro.core.events import (
    AnalyzerInvocationEvent,
    EventLog,
    InterferenceDetectedEvent,
    MigrationEvent,
)
from repro.metrics.cpi import Resource


def _invocation(epoch, confirmed, seconds=30.0):
    return AnalyzerInvocationEvent(
        epoch=epoch,
        vm_name="vm0",
        reason="test",
        confirmed=confirmed,
        degradation=0.3 if confirmed else 0.05,
        profiling_seconds=seconds,
        culprit=Resource.CACHE if confirmed else None,
    )


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(_invocation(1, True))
        log.record(_invocation(2, False))
        log.record(
            InterferenceDetectedEvent(
                epoch=1, vm_name="vm0", degradation=0.3, culprit=Resource.CACHE
            )
        )
        log.record(
            MigrationEvent(
                epoch=3,
                vm_name="vm0",
                source="pm0",
                destination="pm1",
                predicted_degradation=0.02,
            )
        )
        assert len(log) == 4
        assert len(log.analyzer_invocations()) == 2
        assert len(log.detections()) == 1
        assert len(log.migrations()) == 1
        assert len(log.all()) == 4
        assert len(list(iter(log))) == 4

    def test_false_positive_accounting(self):
        log = EventLog()
        log.record(_invocation(1, True))
        log.record(_invocation(2, False))
        log.record(_invocation(3, False))
        assert len(log.false_positive_invocations()) == 2

    def test_profiling_time_sums(self):
        log = EventLog()
        log.record(_invocation(1, True, seconds=10.0))
        log.record(_invocation(2, False, seconds=25.0))
        assert log.total_profiling_seconds() == 35.0

    def test_clear(self):
        log = EventLog()
        log.record(_invocation(1, True))
        log.clear()
        assert len(log) == 0
