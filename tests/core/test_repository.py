"""Tests for the VM behaviour repository."""

import numpy as np
import pytest

from repro.core.repository import BehaviorRepository
from repro.metrics.counters import CounterSample
from repro.metrics.sample import MetricVector


def _vector(scale=1.0, cpi=2.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    inst = 1e9
    sample = CounterSample(
        cpu_unhalted=cpi * inst * (1 + noise * rng.normal()),
        inst_retired=inst,
        l1d_repl=0.02 * inst * scale * (1 + noise * rng.normal()),
        l2_lines_in=0.005 * inst * scale,
        mem_load=0.3 * inst,
        resource_stalls=1.0 * inst * scale,
        bus_tran_any=0.008 * inst * scale,
        br_miss_pred=0.004 * inst,
        disk_stall_cycles=0.1 * inst,
        net_stall_cycles=0.02 * inst,
    )
    return MetricVector.from_sample(sample)


def _populate(repo, app="app", count=20, seed=0):
    rng = np.random.default_rng(seed)
    vectors = [_vector(noise=0.02, seed=int(rng.integers(1e6))) for _ in range(count)]
    repo.add_normal_batch(app, vectors, refit=True)
    return vectors


class TestRepositoryBasics:
    def test_entry_created_lazily(self):
        repo = BehaviorRepository()
        assert repo.known_apps() == []
        repo.entry("app")
        assert repo.known_apps() == ["app"]
        assert repo.normal_count("app") == 0
        assert repo.normal_count("other") == 0

    def test_no_model_before_minimum_behaviours(self):
        repo = BehaviorRepository(min_normal_behaviors=8)
        for _ in range(5):
            repo.add_normal("app", _vector())
        assert not repo.has_model("app")
        assert repo.fit("app") is None
        assert repo.distance("app", _vector()) == float("inf")
        assert not repo.matches("app", _vector())

    def test_model_fits_after_batch(self):
        repo = BehaviorRepository(min_normal_behaviors=8)
        _populate(repo)
        assert repo.has_model("app")
        assert repo.thresholds("app") is not None

    def test_acceptance_radius_grows_with_dimension(self):
        repo = BehaviorRepository(warning_sigma=3.0)
        assert repo.acceptance_radius(1) == pytest.approx(3.0, rel=1e-6)
        assert repo.acceptance_radius(14) > repo.acceptance_radius(4)

    def test_capacity_limit_evicts_oldest(self):
        repo = BehaviorRepository(min_normal_behaviors=2, max_vectors_per_app=10,
                                  refit_every=100)
        for i in range(25):
            repo.add_normal("app", _vector(seed=i), refit=False)
        assert repo.normal_count("app") == 10


class TestMatching:
    def test_normal_vector_matches(self):
        repo = BehaviorRepository()
        _populate(repo)
        assert repo.matches("app", _vector(noise=0.02, seed=999))
        assert (
            repo.distance("app", _vector(noise=0.02, seed=999))
            < repo.acceptance_radius()
        )

    def test_interference_vector_does_not_match(self):
        repo = BehaviorRepository()
        _populate(repo)
        shifted = _vector(scale=4.0, cpi=6.0)
        assert not repo.matches("app", shifted)
        assert repo.distance("app", shifted) > repo.acceptance_radius()

    def test_unknown_app_never_matches(self):
        repo = BehaviorRepository()
        assert not repo.matches("ghost", _vector())

    def test_measurement_noise_floor_prevents_overtight_clusters(self):
        # Behaviours collected with nearly zero spread...
        repo = BehaviorRepository(measurement_noise=0.05)
        repo.add_normal_batch("app", [_vector(noise=0.0, seed=i) for i in range(20)])
        # ...should still accept readings with a few percent of noise.
        assert repo.matches("app", _vector(noise=0.03, seed=123))


class TestInterferenceLabels:
    def test_interference_distance(self):
        repo = BehaviorRepository()
        _populate(repo)
        assert repo.interference_distance("app", _vector()) == float("inf")
        bad = _vector(scale=4.0, cpi=6.0)
        repo.add_interference("app", bad)
        assert repo.matches_interference("app", bad)
        assert not repo.matches_interference("app", _vector())

    def test_constraints_keep_interference_out_of_normal_clusters(self):
        repo = BehaviorRepository()
        _populate(repo)
        bad = _vector(scale=4.0, cpi=6.0)
        repo.add_interference("app", bad)
        repo.fit("app")
        assert not repo.matches("app", bad)

    def test_size_accounting(self):
        repo = BehaviorRepository()
        _populate(repo, count=24)
        size = repo.size_bytes("app")
        assert size > 0
        # The paper's claim: a day of behaviour fits in a few KB.  24
        # behaviours plus the fitted model must stay well under 5 KB.
        assert size < 5 * 1024
        assert repo.size_bytes() >= size
