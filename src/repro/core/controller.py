"""Persistence controller for oscillating interference (Section 4.4).

The paper notes that interference can oscillate over time and suggests
"a simple controller that would react only upon detections that are
persistent across multiple epochs".  :class:`PersistenceController`
implements that filter: it watches the per-VM stream of interference
verdicts and recommends mitigation only when a VM has been flagged in at
least ``required_detections`` of the last ``window_epochs`` epochs, so a
single short-lived spike does not trigger an expensive migration while a
sustained episode still does within a bounded delay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional


@dataclass
class ControllerDecision:
    """The controller's verdict for one VM at one epoch."""

    vm_name: str
    epoch: int
    #: Whether mitigation (placement-manager invocation) is recommended now.
    act: bool
    #: Detections observed within the current window.
    detections_in_window: int
    #: Epochs observed within the current window.
    window_size: int
    reason: str


class PersistenceController:
    """Reacts only to interference that persists across monitoring epochs."""

    def __init__(
        self,
        window_epochs: int = 5,
        required_detections: int = 3,
        cooldown_epochs: int = 10,
    ) -> None:
        """
        Parameters
        ----------
        window_epochs:
            Length of the sliding window of recent verdicts per VM.
        required_detections:
            Number of flagged epochs within the window needed to act.
        cooldown_epochs:
            Epochs to wait after acting before acting again for the same
            VM (a migration needs time to take effect and be re-measured).
        """
        if window_epochs < 1:
            raise ValueError("window_epochs must be positive")
        if not 1 <= required_detections <= window_epochs:
            raise ValueError("required_detections must be in [1, window_epochs]")
        if cooldown_epochs < 0:
            raise ValueError("cooldown_epochs must be non-negative")
        self.window_epochs = window_epochs
        self.required_detections = required_detections
        self.cooldown_epochs = cooldown_epochs
        self._history: Dict[str, Deque[bool]] = {}
        self._last_action_epoch: Dict[str, int] = {}
        self._epoch = 0

    # ------------------------------------------------------------------
    def observe(self, vm_name: str, interference_detected: bool) -> ControllerDecision:
        """Feed one epoch's verdict for one VM; returns the recommendation."""
        window = self._history.setdefault(vm_name, deque(maxlen=self.window_epochs))
        window.append(bool(interference_detected))
        epoch = self._epoch
        detections = sum(window)

        last_action = self._last_action_epoch.get(vm_name)
        in_cooldown = (
            last_action is not None
            and epoch - last_action < self.cooldown_epochs
        )

        if detections >= self.required_detections and not in_cooldown:
            self._last_action_epoch[vm_name] = epoch
            decision = ControllerDecision(
                vm_name=vm_name,
                epoch=epoch,
                act=True,
                detections_in_window=detections,
                window_size=len(window),
                reason=(
                    "interference persisted in "
                    f"{detections}/{len(window)} recent epochs"
                ),
            )
        elif in_cooldown:
            decision = ControllerDecision(
                vm_name=vm_name,
                epoch=epoch,
                act=False,
                detections_in_window=detections,
                window_size=len(window),
                reason="within the post-mitigation cooldown window",
            )
        else:
            decision = ControllerDecision(
                vm_name=vm_name,
                epoch=epoch,
                act=False,
                detections_in_window=detections,
                window_size=len(window),
                reason=(
                    "interference not persistent enough "
                    f"({detections}/{self.required_detections} needed)"
                ),
            )
        return decision

    def advance_epoch(self) -> None:
        """Move the controller's clock forward by one monitoring epoch."""
        self._epoch += 1

    def reset(self, vm_name: Optional[str] = None) -> None:
        """Forget the history of one VM (or of every VM)."""
        if vm_name is None:
            self._history.clear()
            self._last_action_epoch.clear()
        else:
            self._history.pop(vm_name, None)
            self._last_action_epoch.pop(vm_name, None)
