"""The VM behaviour repository.

Stores, per application, the set of normal (interference-free) metric
vectors the analyzer has certified, the interference-labelled vectors
that act as cannot-link constraints, and the fitted interference-free
clustering together with the derived metric thresholds MT.  The paper
notes the repository is tiny — less than 5 KB per VM per day even for a
VM experiencing interference every hour — and the
:meth:`BehaviorRepository.size_bytes` accounting makes that claim
checkable here as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.clustering.constraints import (
    CannotLinkConstraints,
    ConstrainedGaussianMixtureEM,
)
from repro.clustering.em import GaussianMixtureModel
from repro.clustering.scaling import StandardScaler
from repro.clustering.thresholds import MetricThresholds, derive_thresholds
from repro.metrics.sample import WARNING_METRICS, MetricVector, vectors_to_matrix


@dataclass
class AppBehaviorEntry:
    """Everything the repository knows about one application's behaviour."""

    app_id: str
    normal_vectors: List[MetricVector] = field(default_factory=list)
    interference_vectors: List[MetricVector] = field(default_factory=list)
    scaler: Optional[StandardScaler] = None
    model: Optional[GaussianMixtureModel] = None
    thresholds: Optional[MetricThresholds] = None
    #: Number of normal vectors present the last time the model was fitted.
    fitted_on: int = 0

    @property
    def has_model(self) -> bool:
        return self.model is not None and self.scaler is not None


class BehaviorRepository:
    """Per-application store of certified behaviours and fitted clusters."""

    def __init__(
        self,
        warning_sigma: float = 3.0,
        max_clusters: int = 6,
        refit_every: int = 16,
        min_normal_behaviors: int = 8,
        max_vectors_per_app: int = 5000,
        measurement_noise: float = 0.05,
        seed: int = 0,
    ) -> None:
        """
        Parameters
        ----------
        warning_sigma:
            Per-dimension sigma level of the acceptance region; converted
            internally into a chi-square radius so the match test behaves
            consistently regardless of the number of metric dimensions.
        measurement_noise:
            Relative measurement noise assumed on every metric; used as a
            per-dimension variance floor so a cluster learned from very
            quiet samples does not become tighter than the PMU noise and
            fire on every later reading.
        """
        if max_vectors_per_app < min_normal_behaviors:
            raise ValueError("max_vectors_per_app must be >= min_normal_behaviors")
        if measurement_noise < 0:
            raise ValueError("measurement_noise must be non-negative")
        self.warning_sigma = warning_sigma
        self.max_clusters = max_clusters
        self.refit_every = refit_every
        self.min_normal_behaviors = min_normal_behaviors
        self.max_vectors_per_app = max_vectors_per_app
        self.measurement_noise = measurement_noise
        self.seed = seed
        self._entries: Dict[str, AppBehaviorEntry] = {}
        #: Chi-square quantiles are expensive; the radius only depends on
        #: (warning_sigma, dimension count), so memoise it (the hot
        #: monitoring path asks for it for every VM every epoch).
        self._radius_cache: Dict[Tuple[float, int], float] = {}

    # ------------------------------------------------------------------
    # Acceptance radius
    # ------------------------------------------------------------------
    def acceptance_radius(self, n_dims: Optional[int] = None) -> float:
        """Mahalanobis radius of the acceptance region.

        A point drawn from a d-dimensional Gaussian has an expected
        Mahalanobis distance of about sqrt(d), so a fixed per-dimension
        sigma would misfire in high dimension.  The radius is therefore
        the chi-square quantile matching the one-dimensional coverage of
        ``warning_sigma`` (e.g. sigma = 3 -> 99.73% coverage).
        """
        d = n_dims if n_dims is not None else len(WARNING_METRICS)
        key = (self.warning_sigma, d)
        if key not in self._radius_cache:
            coverage = float(stats.chi2.cdf(self.warning_sigma ** 2, df=1))
            self._radius_cache[key] = float(np.sqrt(stats.chi2.ppf(coverage, df=d)))
        return self._radius_cache[key]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def entry(self, app_id: str) -> AppBehaviorEntry:
        """Get (or lazily create) the entry for an application."""
        if app_id not in self._entries:
            self._entries[app_id] = AppBehaviorEntry(app_id=app_id)
        return self._entries[app_id]

    def known_apps(self) -> List[str]:
        return sorted(self._entries)

    def has_model(self, app_id: str) -> bool:
        return app_id in self._entries and self._entries[app_id].has_model

    def normal_count(self, app_id: str) -> int:
        if app_id not in self._entries:
            return 0
        return len(self._entries[app_id].normal_vectors)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_normal(
        self, app_id: str, vector: MetricVector, refit: Optional[bool] = None
    ) -> None:
        """Add a certified interference-free behaviour.

        The clustering is refitted when the entry has accumulated
        ``refit_every`` new vectors since the last fit (or immediately
        when ``refit=True``).
        """
        entry = self.entry(app_id)
        entry.normal_vectors.append(vector.copy())
        if len(entry.normal_vectors) > self.max_vectors_per_app:
            entry.normal_vectors.pop(0)
        should_fit = refit if refit is not None else self._should_refit(entry)
        if should_fit:
            self.fit(app_id)

    def add_normal_batch(
        self, app_id: str, vectors: Sequence[MetricVector], refit: bool = True
    ) -> None:
        """Add a batch of certified behaviours (bootstrap path)."""
        entry = self.entry(app_id)
        for vector in vectors:
            entry.normal_vectors.append(vector.copy())
        overflow = len(entry.normal_vectors) - self.max_vectors_per_app
        if overflow > 0:
            del entry.normal_vectors[:overflow]
        if refit:
            self.fit(app_id)

    def add_interference(self, app_id: str, vector: MetricVector) -> None:
        """Record a behaviour the analyzer diagnosed as interference.

        The vector becomes a cannot-link constraint at the next fit, so
        the normal clusters can never grow to absorb it.
        """
        entry = self.entry(app_id)
        entry.interference_vectors.append(vector.copy())
        if len(entry.interference_vectors) > self.max_vectors_per_app:
            entry.interference_vectors.pop(0)
        if entry.has_model:
            self.fit(app_id)

    def _should_refit(self, entry: AppBehaviorEntry) -> bool:
        n = len(entry.normal_vectors)
        if n < self.min_normal_behaviors:
            return False
        if not entry.has_model:
            return True
        return n - entry.fitted_on >= self.refit_every

    # ------------------------------------------------------------------
    # Fitting and matching
    # ------------------------------------------------------------------
    def fit(self, app_id: str) -> Optional[GaussianMixtureModel]:
        """(Re)fit the interference-free clustering for an application."""
        entry = self.entry(app_id)
        n = len(entry.normal_vectors)
        if n < self.min_normal_behaviors:
            return None
        data = vectors_to_matrix(entry.normal_vectors)
        scaler = StandardScaler().fit(data)
        scaled = scaler.transform(data)

        constraints = CannotLinkConstraints()
        for vec in entry.interference_vectors:
            constraints.add(scaler.transform(vec.as_array()))

        em = ConstrainedGaussianMixtureEM(
            max_components=self.max_clusters,
            acceptance_sigma=self.acceptance_radius(data.shape[1]),
            seed=self.seed,
        )
        model = em.fit(scaled, constraints)
        model = self._apply_variance_floor(model, scaler, data)
        entry.scaler = scaler
        entry.model = model
        entry.fitted_on = n
        entry.thresholds = self._raw_thresholds(scaler, model)
        return model

    def _apply_variance_floor(
        self,
        model: GaussianMixtureModel,
        scaler: StandardScaler,
        raw_data: np.ndarray,
    ) -> GaussianMixtureModel:
        """Floor each cluster's variance at the assumed measurement noise.

        Clusters fitted on behaviours collected in the quiet sandbox can
        be tighter than the PMU noise seen in production; without a floor
        every later production reading would look like a deviation.  The
        floor is ``measurement_noise`` times the typical magnitude of each
        raw dimension, converted to the scaled space.
        """
        if self.measurement_noise <= 0:
            return model
        typical = np.maximum(np.abs(raw_data).mean(axis=0), 1e-12)
        floor_raw_std = self.measurement_noise * typical
        floor_scaled_var = (floor_raw_std / scaler.std_) ** 2
        variances = np.maximum(model.variances, floor_scaled_var[None, :])
        return GaussianMixtureModel(
            weights=model.weights,
            means=model.means,
            variances=variances,
            log_likelihood=model.log_likelihood,
            n_iter=model.n_iter,
            converged=model.converged,
        )

    def _raw_thresholds(
        self, scaler: StandardScaler, model: GaussianMixtureModel
    ) -> MetricThresholds:
        """Express the fitted thresholds in raw metric units."""
        raw_means = scaler.inverse_transform(model.means)
        raw_vars = model.variances * (scaler.std_ ** 2)
        raw_model = GaussianMixtureModel(
            weights=model.weights,
            means=np.atleast_2d(raw_means),
            variances=np.atleast_2d(raw_vars),
            log_likelihood=model.log_likelihood,
            n_iter=model.n_iter,
            converged=model.converged,
        )
        return derive_thresholds(raw_model, WARNING_METRICS, sigma=self.warning_sigma)

    def matches(self, app_id: str, vector: MetricVector) -> bool:
        """Whether ``vector`` falls inside a known interference-free cluster."""
        entry = self._entries.get(app_id)
        if entry is None or not entry.has_model:
            return False
        scaled = entry.scaler.transform(vector.as_array())
        distance = float(entry.model.mahalanobis(scaled[None, :])[0])
        return distance <= self.acceptance_radius(scaled.shape[0])

    def distance(self, app_id: str, vector: MetricVector) -> float:
        """Mahalanobis distance of ``vector`` to the closest normal cluster."""
        entry = self._entries.get(app_id)
        if entry is None or not entry.has_model:
            return float("inf")
        scaled = entry.scaler.transform(vector.as_array())
        return float(entry.model.mahalanobis(scaled[None, :])[0])

    def distance_batch(self, app_id: str, matrix: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`distance` for a whole ``(n, d)`` metric matrix.

        Returns an ``(n,)`` array of Mahalanobis distances to the closest
        normal cluster (``inf`` everywhere when no model is fitted).
        Element-wise identical to calling :meth:`distance` per row.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        entry = self._entries.get(app_id)
        if entry is None or not entry.has_model:
            return np.full(matrix.shape[0], np.inf)
        scaled = entry.scaler.transform(matrix)
        return entry.model.mahalanobis(scaled)

    def interference_distance(self, app_id: str, vector: MetricVector) -> float:
        """Scaled distance of ``vector`` to the closest *interference* behaviour.

        Measured per dimension relative to the assumed measurement noise,
        so the same acceptance radius used for normal clusters applies.
        Returns ``inf`` when no interference behaviour has been recorded.
        """
        entry = self._entries.get(app_id)
        if entry is None or not entry.interference_vectors:
            return float("inf")
        candidate = vector.as_array()
        noise = max(self.measurement_noise, 1e-3)
        best = float("inf")
        for stored in entry.interference_vectors:
            ref = stored.as_array()
            scale = np.maximum(np.abs(ref) * noise, 1e-9)
            dist = float(np.sqrt(np.sum(((candidate - ref) / scale) ** 2)))
            best = min(best, dist)
        return best

    def interference_distance_batch(
        self, app_id: str, matrix: np.ndarray
    ) -> np.ndarray:
        """Row-wise :meth:`interference_distance` for an ``(n, d)`` matrix.

        Element-wise identical to the scalar loop: for every candidate
        row the distance to each stored interference behaviour is scaled
        per dimension by the assumed measurement noise and the minimum is
        taken.  ``inf`` everywhere when no interference is recorded.
        """
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        entry = self._entries.get(app_id)
        if entry is None or not entry.interference_vectors:
            return np.full(matrix.shape[0], np.inf)
        refs = vectors_to_matrix(entry.interference_vectors)  # (m, d)
        noise = max(self.measurement_noise, 1e-3)
        scale = np.maximum(np.abs(refs) * noise, 1e-9)  # (m, d)
        # (n, m, d) broadcast; reduction over the last axis preserves the
        # scalar path's summation order.
        diffs = (matrix[:, None, :] - refs[None, :, :]) / scale[None, :, :]
        dists = np.sqrt(np.sum(diffs * diffs, axis=2))  # (n, m)
        return dists.min(axis=1)

    def matches_interference(self, app_id: str, vector: MetricVector) -> bool:
        """Whether ``vector`` matches a previously diagnosed interference behaviour."""
        return self.interference_distance(app_id, vector) <= self.acceptance_radius()

    def matches_interference_batch(self, app_id: str, matrix: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`matches_interference`: ``(n,)`` booleans."""
        return (
            self.interference_distance_batch(app_id, matrix)
            <= self.acceptance_radius()
        )

    def thresholds(self, app_id: str) -> Optional[MetricThresholds]:
        entry = self._entries.get(app_id)
        return entry.thresholds if entry else None

    def scale_vector(self, app_id: str, vector: MetricVector) -> np.ndarray:
        """Scale a vector using the application's fitted scaler (identity when unfitted)."""
        entry = self._entries.get(app_id)
        if entry is None or entry.scaler is None:
            return vector.as_array()
        return entry.scaler.transform(vector.as_array())

    # ------------------------------------------------------------------
    # Memory accounting (the <5 KB/VM/day claim)
    # ------------------------------------------------------------------
    def size_bytes(self, app_id: Optional[str] = None) -> int:
        """Approximate storage footprint of the repository.

        Each stored behaviour is a dense float64 vector; the fitted model
        adds means/variances/weights.  This mirrors what a compact binary
        serialisation would need.
        """
        entries = (
            [self._entries[app_id]] if app_id is not None and app_id in self._entries
            else list(self._entries.values())
        )
        total = 0
        dims = len(WARNING_METRICS)
        for entry in entries:
            total += (
                8 * dims * (len(entry.normal_vectors) + len(entry.interference_vectors))
            )
            if entry.model is not None:
                k = entry.model.n_components
                total += 8 * (k + 2 * k * dims)
        return total
