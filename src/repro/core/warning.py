"""The warning system (Section 4.1, Algorithm 1).

The warning system runs continuously beside the hypervisor and decides,
for each VM's latest normalised metric vector, one of three things:

* the behaviour matches a known interference-free cluster — nothing to do;
* the behaviour deviates, but most sibling VMs running the same
  application on other physical machines deviate in the same region at
  the same time — a workload change, so the repository is extended and
  no analysis is needed;
* the behaviour deviates and the siblings do not corroborate it — the
  interference analyzer must be invoked.

Before an application has accumulated enough certified behaviours the
system runs in *conservative mode*: any suspicion triggers the analyzer,
which both guarantees no interference slips through early on and
accelerates the learning of the normal-behaviour set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository
from repro.metrics.sample import MetricVector


class WarningAction(str, enum.Enum):
    """Possible outcomes of a warning-system evaluation."""

    #: Behaviour matches a known normal cluster; no action.
    NORMAL = "normal"
    #: Behaviour deviates but siblings deviate too; treat as workload change.
    WORKLOAD_CHANGE = "workload_change"
    #: Behaviour deviates and siblings do not corroborate; analyze.
    ANALYZE = "analyze"
    #: Behaviour matches a previously diagnosed interference signature;
    #: interference is reported without paying another analyzer run.
    KNOWN_INTERFERENCE = "known_interference"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class WarningDecision:
    """The warning system's verdict for one VM at one epoch."""

    action: WarningAction
    vm_name: str
    app_id: str
    #: Mahalanobis distance to the closest normal cluster (inf when no model).
    distance: float
    #: Whether the application is still in conservative (learning) mode.
    conservative: bool
    #: Human-readable explanation.
    reason: str
    #: Names of the metric dimensions that exceeded their thresholds.
    violated_dimensions: Tuple[str, ...] = ()
    #: Number of sibling VMs consulted for the global check.
    siblings_consulted: int = 0
    #: Number of siblings whose deviation matched this VM's.
    siblings_agreeing: int = 0

    @property
    def should_analyze(self) -> bool:
        return self.action is WarningAction.ANALYZE

    @property
    def flags_interference(self) -> bool:
        """True when the decision itself already identifies interference."""
        return self.action is WarningAction.KNOWN_INTERFERENCE


class WarningSystem:
    """Implements Algorithm 1 on top of the behaviour repository."""

    def __init__(
        self,
        repository: BehaviorRepository,
        config: Optional[DeepDiveConfig] = None,
    ) -> None:
        self.repository = repository
        self.config = config or DeepDiveConfig()
        #: Per-application count of evaluations performed (for statistics).
        self.evaluations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def evaluate(
        self,
        vm_name: str,
        app_id: str,
        vector: MetricVector,
        sibling_vectors: Optional[Mapping[str, MetricVector]] = None,
    ) -> WarningDecision:
        """Run Algorithm 1 for one VM.

        Parameters
        ----------
        vm_name:
            The VM whose behaviour is being evaluated.
        app_id:
            The application the VM runs (drives repository lookups and
            the global-information comparison).
        vector:
            The VM's current normalised metric vector.
        sibling_vectors:
            Current metric vectors of other VMs running the same
            application on other machines (may be empty or None for the
            single-VM case).
        """
        self.evaluations[app_id] = self.evaluations.get(app_id, 0) + 1
        siblings = dict(sibling_vectors or {})
        siblings.pop(vm_name, None)

        # Conservative mode: no model yet (or too few behaviours).
        if not self.repository.has_model(app_id):
            return WarningDecision(
                action=WarningAction.ANALYZE,
                vm_name=vm_name,
                app_id=app_id,
                distance=float("inf"),
                conservative=True,
                reason=(
                    "no interference-free model learned yet for this application; "
                    "conservative mode invokes the analyzer"
                ),
                siblings_consulted=len(siblings),
            )

        # ------------------------------------------------------------------
        # Local check: does the behaviour match a known normal cluster?
        # ------------------------------------------------------------------
        distance = self.repository.distance(app_id, vector)
        acceptance_radius = self.repository.acceptance_radius()
        thresholds = self.repository.thresholds(app_id)
        violated: Tuple[str, ...] = ()
        if distance <= acceptance_radius:
            return WarningDecision(
                action=WarningAction.NORMAL,
                vm_name=vm_name,
                app_id=app_id,
                distance=distance,
                conservative=False,
                reason="behaviour matches a known interference-free cluster",
                siblings_consulted=len(siblings),
            )
        if thresholds is not None:
            violated = self._violated_dimensions(app_id, vector)

        # ------------------------------------------------------------------
        # Known-interference check: the analyzer has already diagnosed a
        # behaviour like this one, so re-profiling would be wasted work.
        # ------------------------------------------------------------------
        if self.repository.matches_interference(app_id, vector):
            return WarningDecision(
                action=WarningAction.KNOWN_INTERFERENCE,
                vm_name=vm_name,
                app_id=app_id,
                distance=distance,
                conservative=False,
                reason=(
                    "behaviour matches a previously diagnosed interference "
                    "signature; no re-profiling needed"
                ),
                violated_dimensions=violated,
                siblings_consulted=len(siblings),
            )

        # ------------------------------------------------------------------
        # Global check: are sibling VMs deviating in the same region?
        # ------------------------------------------------------------------
        agreeing = 0
        if siblings:
            agreeing = self._count_agreeing_siblings(app_id, vector, siblings)
            quorum = max(1, int(np.ceil(self.config.global_quorum * len(siblings))))
            if agreeing >= quorum:
                return WarningDecision(
                    action=WarningAction.WORKLOAD_CHANGE,
                    vm_name=vm_name,
                    app_id=app_id,
                    distance=distance,
                    conservative=False,
                    reason=(
                        f"{agreeing}/{len(siblings)} sibling VMs deviate in the "
                        "same region at the same time; treating as a workload change"
                    ),
                    violated_dimensions=violated,
                    siblings_consulted=len(siblings),
                    siblings_agreeing=agreeing,
                )

        return WarningDecision(
            action=WarningAction.ANALYZE,
            vm_name=vm_name,
            app_id=app_id,
            distance=distance,
            conservative=False,
            reason=(
                "behaviour deviates from every known normal cluster and is not "
                "corroborated by sibling VMs"
            ),
            violated_dimensions=violated,
            siblings_consulted=len(siblings),
            siblings_agreeing=agreeing,
        )

    # ------------------------------------------------------------------
    def _violated_dimensions(
        self, app_id: str, vector: MetricVector
    ) -> Tuple[str, ...]:
        """Dimensions that exceeded MT against the closest cluster mean."""
        entry = self.repository.entry(app_id)
        if entry.model is None or entry.scaler is None or entry.thresholds is None:
            return ()
        scaled = entry.scaler.transform(vector.as_array())
        # Closest component by diagonal Mahalanobis distance.
        diffs = scaled[None, :] - entry.model.means
        dists = np.sqrt(np.sum(diffs * diffs / entry.model.variances, axis=1))
        closest = int(np.argmin(dists))
        raw_mean = entry.scaler.inverse_transform(entry.model.means[closest])
        reference = dict(zip(vector.values.keys(), raw_mean))
        return entry.thresholds.violated_dimensions(vector.values, reference)

    def _count_agreeing_siblings(
        self,
        app_id: str,
        vector: MetricVector,
        siblings: Mapping[str, MetricVector],
    ) -> int:
        """Siblings whose current behaviour deviates in the same region.

        A sibling agrees when (a) it also deviates from the normal
        clusters (otherwise the deviation is local to this VM), and (b)
        its scaled metric vector lies close to this VM's scaled vector.
        """
        acceptance_radius = self.repository.acceptance_radius()
        own = vector.as_array()
        noise = max(getattr(self.repository, "measurement_noise", 0.05), 1e-3)
        agreeing = 0
        for sibling_vector in siblings.values():
            sibling_deviates = (
                self.repository.distance(app_id, sibling_vector) > acceptance_radius
            )
            if not sibling_deviates:
                continue
            other = sibling_vector.as_array()
            # Per-dimension difference measured in units of the assumed
            # measurement noise (same convention as the repository's
            # interference-signature matching), RMS-combined across
            # dimensions.  Two VMs undergoing the same workload change
            # end up within a few noise units of each other.
            scale = np.maximum(np.maximum(np.abs(own), np.abs(other)) * noise, 1e-9)
            gap = float(np.sqrt(np.mean(((own - other) / scale) ** 2)))
            if gap <= self.config.global_similarity_distance:
                agreeing += 1
        return agreeing

    # ------------------------------------------------------------------
    def learn_workload_change(self, app_id: str, vector: MetricVector) -> None:
        """Extend the normal-behaviour set after a corroborated workload change."""
        self.repository.add_normal(app_id, vector)
