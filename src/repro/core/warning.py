"""The warning system (Section 4.1, Algorithm 1).

The warning system runs continuously beside the hypervisor and decides,
for each VM's latest normalised metric vector, one of three things:

* the behaviour matches a known interference-free cluster — nothing to do;
* the behaviour deviates, but most sibling VMs running the same
  application on other physical machines deviate in the same region at
  the same time — a workload change, so the repository is extended and
  no analysis is needed;
* the behaviour deviates and the siblings do not corroborate it — the
  interference analyzer must be invoked.

Before an application has accumulated enough certified behaviours the
system runs in *conservative mode*: any suspicion triggers the analyzer,
which both guarantees no interference slips through early on and
accelerates the learning of the normal-behaviour set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository
from repro.metrics.matrix import MetricMatrix
from repro.metrics.sample import WARNING_METRICS, MetricVector

#: Reason strings shared by the scalar and batch evaluation paths, so a
#: batch decision compares equal to its scalar counterpart.
_REASON_CONSERVATIVE = (
    "no interference-free model learned yet for this application; "
    "conservative mode invokes the analyzer"
)
_REASON_NORMAL = "behaviour matches a known interference-free cluster"
_REASON_KNOWN_INTERFERENCE = (
    "behaviour matches a previously diagnosed interference "
    "signature; no re-profiling needed"
)
_REASON_ANALYZE = (
    "behaviour deviates from every known normal cluster and is not "
    "corroborated by sibling VMs"
)


def _reason_workload_change(agreeing: int, siblings: int) -> str:
    return (
        f"{agreeing}/{siblings} sibling VMs deviate in the "
        "same region at the same time; treating as a workload change"
    )


class WarningAction(str, enum.Enum):
    """Possible outcomes of a warning-system evaluation."""

    #: Behaviour matches a known normal cluster; no action.
    NORMAL = "normal"
    #: Behaviour deviates but siblings deviate too; treat as workload change.
    WORKLOAD_CHANGE = "workload_change"
    #: Behaviour deviates and siblings do not corroborate; analyze.
    ANALYZE = "analyze"
    #: Behaviour matches a previously diagnosed interference signature;
    #: interference is reported without paying another analyzer run.
    KNOWN_INTERFERENCE = "known_interference"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class WarningDecision:
    """The warning system's verdict for one VM at one epoch."""

    action: WarningAction
    vm_name: str
    app_id: str
    #: Mahalanobis distance to the closest normal cluster (inf when no model).
    distance: float
    #: Whether the application is still in conservative (learning) mode.
    conservative: bool
    #: Human-readable explanation.
    reason: str
    #: Names of the metric dimensions that exceeded their thresholds.
    violated_dimensions: Tuple[str, ...] = ()
    #: Number of sibling VMs consulted for the global check.
    siblings_consulted: int = 0
    #: Number of siblings whose deviation matched this VM's.
    siblings_agreeing: int = 0

    @property
    def should_analyze(self) -> bool:
        return self.action is WarningAction.ANALYZE

    @property
    def flags_interference(self) -> bool:
        """True when the decision itself already identifies interference."""
        return self.action is WarningAction.KNOWN_INTERFERENCE


class WarningSystem:
    """Implements Algorithm 1 on top of the behaviour repository."""

    def __init__(
        self,
        repository: BehaviorRepository,
        config: Optional[DeepDiveConfig] = None,
    ) -> None:
        self.repository = repository
        self.config = config or DeepDiveConfig()
        #: Per-application count of evaluations performed (for statistics).
        self.evaluations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def evaluate(
        self,
        vm_name: str,
        app_id: str,
        vector: MetricVector,
        sibling_vectors: Optional[Mapping[str, MetricVector]] = None,
    ) -> WarningDecision:
        """Run Algorithm 1 for one VM.

        Parameters
        ----------
        vm_name:
            The VM whose behaviour is being evaluated.
        app_id:
            The application the VM runs (drives repository lookups and
            the global-information comparison).
        vector:
            The VM's current normalised metric vector.
        sibling_vectors:
            Current metric vectors of other VMs running the same
            application on other machines (may be empty or None for the
            single-VM case).
        """
        self.evaluations[app_id] = self.evaluations.get(app_id, 0) + 1
        siblings = dict(sibling_vectors or {})
        siblings.pop(vm_name, None)

        # Conservative mode: no model yet (or too few behaviours).
        if not self.repository.has_model(app_id):
            return WarningDecision(
                action=WarningAction.ANALYZE,
                vm_name=vm_name,
                app_id=app_id,
                distance=float("inf"),
                conservative=True,
                reason=_REASON_CONSERVATIVE,
                siblings_consulted=len(siblings),
            )

        # ------------------------------------------------------------------
        # Local check: does the behaviour match a known normal cluster?
        # ------------------------------------------------------------------
        distance = self.repository.distance(app_id, vector)
        acceptance_radius = self.repository.acceptance_radius()
        thresholds = self.repository.thresholds(app_id)
        violated: Tuple[str, ...] = ()
        if distance <= acceptance_radius:
            return WarningDecision(
                action=WarningAction.NORMAL,
                vm_name=vm_name,
                app_id=app_id,
                distance=distance,
                conservative=False,
                reason=_REASON_NORMAL,
                siblings_consulted=len(siblings),
            )
        if thresholds is not None:
            violated = self._violated_dimensions(app_id, vector)

        # ------------------------------------------------------------------
        # Known-interference check: the analyzer has already diagnosed a
        # behaviour like this one, so re-profiling would be wasted work.
        # ------------------------------------------------------------------
        if self.repository.matches_interference(app_id, vector):
            return WarningDecision(
                action=WarningAction.KNOWN_INTERFERENCE,
                vm_name=vm_name,
                app_id=app_id,
                distance=distance,
                conservative=False,
                reason=_REASON_KNOWN_INTERFERENCE,
                violated_dimensions=violated,
                siblings_consulted=len(siblings),
            )

        # ------------------------------------------------------------------
        # Global check: are sibling VMs deviating in the same region?
        # ------------------------------------------------------------------
        agreeing = 0
        if siblings:
            agreeing = self._count_agreeing_siblings(app_id, vector, siblings)
            quorum = max(1, int(np.ceil(self.config.global_quorum * len(siblings))))
            if agreeing >= quorum:
                return WarningDecision(
                    action=WarningAction.WORKLOAD_CHANGE,
                    vm_name=vm_name,
                    app_id=app_id,
                    distance=distance,
                    conservative=False,
                    reason=_reason_workload_change(agreeing, len(siblings)),
                    violated_dimensions=violated,
                    siblings_consulted=len(siblings),
                    siblings_agreeing=agreeing,
                )

        return WarningDecision(
            action=WarningAction.ANALYZE,
            vm_name=vm_name,
            app_id=app_id,
            distance=distance,
            conservative=False,
            reason=_REASON_ANALYZE,
            violated_dimensions=violated,
            siblings_consulted=len(siblings),
            siblings_agreeing=agreeing,
        )

    # ------------------------------------------------------------------
    # Batch evaluation (the vectorized epoch engine)
    # ------------------------------------------------------------------
    def evaluate_batch(
        self,
        app_id: str,
        own: MetricMatrix,
        sibling_pool: Optional[MetricMatrix] = None,
    ) -> Dict[str, WarningDecision]:
        """Run Algorithm 1 for every VM of one application at once.

        Parameters
        ----------
        app_id:
            The application all rows of ``own`` belong to.
        own:
            The (smoothed) metric matrix of the VMs to evaluate.
        sibling_pool:
            The *latest* metric matrix of every VM running ``app_id``
            (usually a superset of ``own``'s VMs; a VM is never treated
            as its own sibling).

        Returns one :class:`WarningDecision` per row, equal — action,
        distance, violated dimensions, sibling counts and reason — to
        what :meth:`evaluate` returns for the corresponding scalar call.
        """
        decisions: Dict[str, WarningDecision] = {}
        n = len(own)
        if n == 0:
            return decisions
        self.evaluations[app_id] = self.evaluations.get(app_id, 0) + n
        pool = sibling_pool if sibling_pool is not None else MetricMatrix.empty()
        m = len(pool)
        sib_counts = [m - 1 if name in pool else m for name in own.vm_names]

        # Conservative mode: no model yet (or too few behaviours).
        if not self.repository.has_model(app_id):
            for i, name in enumerate(own.vm_names):
                decisions[name] = WarningDecision(
                    action=WarningAction.ANALYZE,
                    vm_name=name,
                    app_id=app_id,
                    distance=float("inf"),
                    conservative=True,
                    reason=_REASON_CONSERVATIVE,
                    siblings_consulted=sib_counts[i],
                )
            return decisions

        # Local check, one matrix op for the whole epoch.
        acceptance_radius = self.repository.acceptance_radius()
        distances = self.repository.distance_batch(app_id, own.array)
        normal = distances <= acceptance_radius
        deviating = np.flatnonzero(~normal)

        # Per-dimension MT violations, only for the deviating rows.
        thresholds = self.repository.thresholds(app_id)
        violated: Dict[int, Tuple[str, ...]] = {}
        if thresholds is not None and deviating.size:
            rows = own.array[deviating]
            for idx, dims in zip(
                deviating, self._violated_dimensions_batch(app_id, rows)
            ):
                violated[int(idx)] = dims

        # Known-interference signatures, batched over the deviating rows.
        known = np.zeros(n, dtype=bool)
        if deviating.size:
            known[deviating] = self.repository.matches_interference_batch(
                app_id, own.array[deviating]
            )

        # Global check: deviating, unknown rows with at least one sibling.
        need_global = [
            int(i)
            for i in deviating
            if not known[i] and sib_counts[i] > 0
        ]
        agreeing_counts = np.zeros(n, dtype=int)
        if need_global and m > 0:
            pool_deviates = (
                self.repository.distance_batch(app_id, pool.array) > acceptance_radius
            )
            agreeing_counts = self._count_agreeing_batch(
                own, pool, need_global, pool_deviates
            )

        for i, name in enumerate(own.vm_names):
            consulted = sib_counts[i]
            if normal[i]:
                decisions[name] = WarningDecision(
                    action=WarningAction.NORMAL,
                    vm_name=name,
                    app_id=app_id,
                    distance=float(distances[i]),
                    conservative=False,
                    reason=_REASON_NORMAL,
                    siblings_consulted=consulted,
                )
                continue
            dims = violated.get(i, ())
            if known[i]:
                decisions[name] = WarningDecision(
                    action=WarningAction.KNOWN_INTERFERENCE,
                    vm_name=name,
                    app_id=app_id,
                    distance=float(distances[i]),
                    conservative=False,
                    reason=_REASON_KNOWN_INTERFERENCE,
                    violated_dimensions=dims,
                    siblings_consulted=consulted,
                )
                continue
            agreeing = int(agreeing_counts[i])
            if consulted > 0:
                quorum = max(1, int(np.ceil(self.config.global_quorum * consulted)))
                if agreeing >= quorum:
                    decisions[name] = WarningDecision(
                        action=WarningAction.WORKLOAD_CHANGE,
                        vm_name=name,
                        app_id=app_id,
                        distance=float(distances[i]),
                        conservative=False,
                        reason=_reason_workload_change(agreeing, consulted),
                        violated_dimensions=dims,
                        siblings_consulted=consulted,
                        siblings_agreeing=agreeing,
                    )
                    continue
            decisions[name] = WarningDecision(
                action=WarningAction.ANALYZE,
                vm_name=name,
                app_id=app_id,
                distance=float(distances[i]),
                conservative=False,
                reason=_REASON_ANALYZE,
                violated_dimensions=dims,
                siblings_consulted=consulted,
                siblings_agreeing=agreeing,
            )
        return decisions

    def _violated_dimensions_batch(
        self, app_id: str, rows: np.ndarray
    ) -> List[Tuple[str, ...]]:
        """Row-wise :meth:`_violated_dimensions` over an ``(n, d)`` matrix."""
        entry = self.repository.entry(app_id)
        if entry.model is None or entry.scaler is None or entry.thresholds is None:
            return [() for _ in range(rows.shape[0])]
        scaled = entry.scaler.transform(rows)
        diffs = scaled[:, None, :] - entry.model.means[None, :, :]
        dists = np.sqrt(
            np.sum(diffs * diffs / entry.model.variances[None, :, :], axis=2)
        )
        closest = np.argmin(dists, axis=1)
        raw_means = entry.scaler.inverse_transform(entry.model.means)
        references = np.atleast_2d(raw_means)[closest]
        mask = entry.thresholds.violation_mask(
            rows, references, dimensions=WARNING_METRICS
        )
        return [
            tuple(name for name, hit in zip(WARNING_METRICS, row) if hit)
            for row in mask
        ]

    def _count_agreeing_batch(
        self,
        own: MetricMatrix,
        pool: MetricMatrix,
        rows: Sequence[int],
        pool_deviates: np.ndarray,
        chunk: int = 64,
    ) -> np.ndarray:
        """Batched :meth:`_count_agreeing_siblings` for selected rows.

        Works on ``(chunk, m, d)`` blocks so fleets of thousands of VMs
        never materialise a cubically sized temporary.
        """
        counts = np.zeros(len(own), dtype=int)
        dev_idx = np.flatnonzero(pool_deviates)
        if dev_idx.size == 0:
            return counts
        deviating_pool = pool.array[dev_idx]  # (m', d)
        pool_abs = np.abs(deviating_pool)
        dev_pos = {pool.vm_names[int(j)]: col for col, j in enumerate(dev_idx)}
        noise = max(getattr(self.repository, "measurement_noise", 0.05), 1e-3)
        limit = self.config.global_similarity_distance
        row_arr = np.asarray(list(rows), dtype=int)
        for start in range(0, row_arr.size, chunk):
            block = row_arr[start:start + chunk]
            S = own.array[block]  # (b, d)
            scale = np.maximum(
                np.maximum(np.abs(S)[:, None, :], pool_abs[None, :, :]) * noise,
                1e-9,
            )
            diffs = (S[:, None, :] - deviating_pool[None, :, :]) / scale
            gaps = np.sqrt(np.mean(diffs * diffs, axis=2))  # (b, m')
            agree = gaps <= limit
            for bi, i in enumerate(block):
                total = int(agree[bi].sum())
                self_col = dev_pos.get(own.vm_names[int(i)])
                if self_col is not None and agree[bi, self_col]:
                    total -= 1  # a VM is never its own sibling
                counts[int(i)] = total
        return counts

    # ------------------------------------------------------------------
    def _violated_dimensions(
        self, app_id: str, vector: MetricVector
    ) -> Tuple[str, ...]:
        """Dimensions that exceeded MT against the closest cluster mean."""
        entry = self.repository.entry(app_id)
        if entry.model is None or entry.scaler is None or entry.thresholds is None:
            return ()
        scaled = entry.scaler.transform(vector.as_array())
        # Closest component by diagonal Mahalanobis distance.
        diffs = scaled[None, :] - entry.model.means
        dists = np.sqrt(np.sum(diffs * diffs / entry.model.variances, axis=1))
        closest = int(np.argmin(dists))
        raw_mean = entry.scaler.inverse_transform(entry.model.means[closest])
        reference = dict(zip(vector.values.keys(), raw_mean))
        return entry.thresholds.violated_dimensions(vector.values, reference)

    def _count_agreeing_siblings(
        self,
        app_id: str,
        vector: MetricVector,
        siblings: Mapping[str, MetricVector],
    ) -> int:
        """Siblings whose current behaviour deviates in the same region.

        A sibling agrees when (a) it also deviates from the normal
        clusters (otherwise the deviation is local to this VM), and (b)
        its scaled metric vector lies close to this VM's scaled vector.
        """
        acceptance_radius = self.repository.acceptance_radius()
        own = vector.as_array()
        noise = max(getattr(self.repository, "measurement_noise", 0.05), 1e-3)
        agreeing = 0
        for sibling_vector in siblings.values():
            sibling_deviates = (
                self.repository.distance(app_id, sibling_vector) > acceptance_radius
            )
            if not sibling_deviates:
                continue
            other = sibling_vector.as_array()
            # Per-dimension difference measured in units of the assumed
            # measurement noise (same convention as the repository's
            # interference-signature matching), RMS-combined across
            # dimensions.  Two VMs undergoing the same workload change
            # end up within a few noise units of each other.
            scale = np.maximum(np.maximum(np.abs(own), np.abs(other)) * noise, 1e-9)
            gap = float(np.sqrt(np.mean(((own - other) / scale) ** 2)))
            if gap <= self.config.global_similarity_distance:
                agreeing += 1
        return agreeing

    # ------------------------------------------------------------------
    def learn_workload_change(self, app_id: str, vector: MetricVector) -> None:
        """Extend the normal-behaviour set after a corroborated workload change."""
        self.repository.add_normal(app_id, vector)
