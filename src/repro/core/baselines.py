"""Baseline detectors used in the overhead comparison (Figure 12).

The paper compares DeepDive's accumulated profiling time against a
baseline that triggers the interference analyzer every time the VM's
performance varies by more than a fixed threshold (5%, 10% or 20%)
from its reference level.  Because such a baseline has no notion of
normal behaviour, it fires on every load fluctuation and its profiling
cost grows without bound, whereas DeepDive's warning system learns the
normal behaviours and stops invoking the analyzer after the first day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.counters import CounterSample


@dataclass
class BaselineDecision:
    """One epoch's verdict from a threshold baseline."""

    epoch: int
    trigger: bool
    relative_change: float


class ThresholdBaseline:
    """Trigger the analyzer whenever performance varies beyond a threshold.

    The baseline watches the same transparent signal DeepDive ultimately
    relies on — the instruction-retirement rate — and keeps an
    exponentially weighted reference of its recent value.  Whenever the
    current rate deviates from the reference by more than
    ``threshold`` (relative), the baseline invokes the analyzer and pays
    the full profiling cost.
    """

    def __init__(
        self,
        threshold: float,
        reference_alpha: float = 0.05,
        warmup_epochs: int = 5,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if not 0.0 < reference_alpha <= 1.0:
            raise ValueError("reference_alpha must be in (0, 1]")
        self.threshold = threshold
        self.reference_alpha = reference_alpha
        self.warmup_epochs = warmup_epochs
        self._reference_rate: Optional[float] = None
        self._epochs_seen = 0
        self.triggers = 0
        self.decisions: List[BaselineDecision] = []

    def observe(self, sample: CounterSample) -> BaselineDecision:
        """Feed one epoch's counters; returns whether the baseline fires."""
        rate = sample.inst_retired / max(sample.epoch_seconds, 1e-9)
        epoch = self._epochs_seen
        self._epochs_seen += 1

        if self._reference_rate is None:
            self._reference_rate = rate
            decision = BaselineDecision(epoch=epoch, trigger=False, relative_change=0.0)
            self.decisions.append(decision)
            return decision

        change = abs(rate - self._reference_rate) / max(self._reference_rate, 1e-9)
        trigger = change > self.threshold and epoch >= self.warmup_epochs
        if trigger:
            self.triggers += 1
            # After an investigation the baseline re-anchors its reference
            # to the current rate (it has no richer model to fall back on).
            self._reference_rate = rate
        else:
            self._reference_rate = (
                (1.0 - self.reference_alpha) * self._reference_rate
                + self.reference_alpha * rate
            )
        decision = BaselineDecision(
            epoch=epoch, trigger=trigger, relative_change=change
        )
        self.decisions.append(decision)
        return decision

    def reset(self) -> None:
        self._reference_rate = None
        self._epochs_seen = 0
        self.triggers = 0
        self.decisions.clear()
