"""DeepDive configuration.

All knobs the paper mentions are collected here: the operator-defined
performance-degradation threshold (the only performance-related input an
operator supplies), the warning system's clustering parameters, the
analyzer's profiling window, and the global-information quorum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class DeepDiveConfig:
    """Configuration for a DeepDive deployment."""

    # ------------------------------------------------------------------
    # Operator-defined policy
    # ------------------------------------------------------------------
    #: Degradation above which the analyzer escalates to the placement
    #: manager (the paper labels EC2 "performance crises" at 20%).
    performance_threshold: float = 0.20

    # ------------------------------------------------------------------
    # Warning system
    # ------------------------------------------------------------------
    #: Mahalanobis acceptance radius around a normal cluster; doubles as
    #: the sigma multiplier when deriving the metric thresholds MT.
    warning_sigma: float = 3.0
    #: Maximum number of mixture components tried during model selection.
    max_clusters: int = 6
    #: Refit the clustering after this many new normal behaviours.
    refit_every: int = 16
    #: Minimum number of normal behaviours before the warning system
    #: leaves conservative (always-analyze-on-deviation) mode.
    min_normal_behaviors: int = 8
    #: Fraction of sibling VMs (same application on other PMs) that must
    #: deviate "in the same region" for the warning system to classify a
    #: deviation as a workload change rather than interference.
    global_quorum: float = 0.6
    #: Scaled distance below which two concurrently observed sibling
    #: deviations count as "the same region".
    global_similarity_distance: float = 2.0

    # ------------------------------------------------------------------
    # Interference analyzer
    # ------------------------------------------------------------------
    #: Number of monitoring epochs the analyzer aggregates on the
    #: production side and replays in the sandbox.
    profile_epochs: int = 20
    #: Number of load levels used when bootstrapping the normal-behaviour
    #: set for a newly seen application.
    bootstrap_load_levels: int = 6
    #: Epochs per bootstrap load level.
    bootstrap_epochs_per_level: int = 10
    #: Seed for the measurement noise of the auto-created sandbox (used
    #: when no explicit :class:`SandboxEnvironment` is supplied).  A
    #: fixed default keeps every experiment reproducible run to run —
    #: an unseeded sandbox made borderline detections flip; set to None
    #: to restore entropy-based noise.
    sandbox_seed: Optional[int] = 0

    # ------------------------------------------------------------------
    # Placement manager
    # ------------------------------------------------------------------
    #: Epochs the synthetic benchmark runs on each candidate PM
    #: (the paper reports runs of "less than a minute").
    placement_eval_epochs: int = 30
    #: Acceptable residual degradation on a destination PM.
    placement_acceptable_degradation: float = 0.05

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    #: Length of one monitoring epoch in seconds.
    epoch_seconds: float = 1.0
    #: Number of recent epochs smoothed together before the warning
    #: system compares against the repository.
    smoothing_epochs: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.performance_threshold < 1.0:
            raise ValueError("performance_threshold must be in (0, 1)")
        if self.warning_sigma <= 0:
            raise ValueError("warning_sigma must be positive")
        if not 0.0 < self.global_quorum <= 1.0:
            raise ValueError("global_quorum must be in (0, 1]")
        if self.profile_epochs < 1:
            raise ValueError("profile_epochs must be positive")
        if self.placement_eval_epochs < 1:
            raise ValueError("placement_eval_epochs must be positive")
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.smoothing_epochs < 1:
            raise ValueError("smoothing_epochs must be at least 1")
        if self.min_normal_behaviors < 2:
            raise ValueError("min_normal_behaviors must be at least 2")
