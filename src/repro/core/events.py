"""Event records and the event log.

DeepDive's evaluation needs an audit trail: when the warning system
fired, when the analyzer ran and what it concluded, when a migration was
issued.  The :class:`EventLog` collects typed event records; the
experiment drivers turn it into the detection-rate, false-positive-rate
and profiling-overhead series of Figures 8 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Type, TypeVar

from repro.metrics.cpi import Resource


@dataclass
class AnalyzerInvocationEvent:
    """The warning system (or a baseline) invoked the interference analyzer."""

    epoch: int
    vm_name: str
    reason: str
    #: True when the analyzer confirmed interference above the threshold.
    confirmed: bool
    degradation: float
    profiling_seconds: float
    culprit: Optional[Resource] = None


@dataclass
class InterferenceDetectedEvent:
    """The analyzer confirmed interference above the operator threshold."""

    epoch: int
    vm_name: str
    degradation: float
    culprit: Resource
    factors: Dict[Resource, float] = field(default_factory=dict)


@dataclass
class MigrationEvent:
    """The placement manager migrated a VM."""

    epoch: int
    vm_name: str
    source: str
    destination: str
    predicted_degradation: float


E = TypeVar("E")


class EventLog:
    """Chronological, typed event collection."""

    def __init__(self) -> None:
        self._events: List[object] = []

    def record(self, event: object) -> None:
        self._events.append(event)

    def all(self) -> List[object]:
        return list(self._events)

    def of_type(self, event_type: Type[E]) -> List[E]:
        return [e for e in self._events if isinstance(e, event_type)]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[object]:
        return iter(self._events)

    # ------------------------------------------------------------------
    # Aggregates used by the evaluation
    # ------------------------------------------------------------------
    def analyzer_invocations(self) -> List[AnalyzerInvocationEvent]:
        return self.of_type(AnalyzerInvocationEvent)

    def detections(self) -> List[InterferenceDetectedEvent]:
        return self.of_type(InterferenceDetectedEvent)

    def migrations(self) -> List[MigrationEvent]:
        return self.of_type(MigrationEvent)

    def total_profiling_seconds(self) -> float:
        return sum(e.profiling_seconds for e in self.analyzer_invocations())

    def false_positive_invocations(self) -> List[AnalyzerInvocationEvent]:
        """Analyzer invocations that turned out to be false alarms."""
        return [e for e in self.analyzer_invocations() if not e.confirmed]

    def clear(self) -> None:
        self._events.clear()
