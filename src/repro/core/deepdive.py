"""The DeepDive orchestrator.

Ties the pieces together: every monitoring epoch, it reads the raw
counters the hypervisors expose for every VM, normalises them, runs the
warning system (feeding it the sibling VMs' behaviour as global
information), invokes the interference analyzer when the warning system
says so, and hands confirmed interference to the placement manager.

The orchestrator never reads application-level performance: its only
inputs are the Table 1 counters and the proxy-observed load streams,
exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.analyzer import AnalysisResult, InterferenceAnalyzer
from repro.core.config import DeepDiveConfig
from repro.core.events import (
    AnalyzerInvocationEvent,
    EventLog,
    InterferenceDetectedEvent,
    MigrationEvent,
)
from repro.core.placement import PlacementDecision, PlacementManager
from repro.core.repository import BehaviorRepository
from repro.core.warning import WarningAction, WarningDecision, WarningSystem
from repro.metrics.counters import COUNTER_NAMES, CounterSample
from repro.metrics.cpi import CPIStackModel
from repro.metrics.matrix import MetricMatrix
from repro.metrics.normalization import aggregate_samples, normalize_counter_matrix
from repro.metrics.sample import MetricVector
from repro.regression.training import TrainedSynthesizer
from repro.virt.cluster import Cluster, CounterWindowView
from repro.virt.proxy import RequestProxy
from repro.virt.sandbox import SandboxEnvironment
from repro.virt.vm import VirtualMachine

#: Column of ``inst_retired`` in raw counter matrices (Table-1 order).
_INST_RETIRED_COL = COUNTER_NAMES.index("inst_retired")


@dataclass
class VMObservation:
    """One VM's state as seen by DeepDive in one epoch."""

    vm_name: str
    app_id: str
    warning: WarningDecision
    analysis: Optional[AnalysisResult] = None
    placement: Optional[PlacementDecision] = None
    #: True when interference was reported from a previously diagnosed
    #: signature without re-running the analyzer.
    known_interference: bool = False

    @property
    def interference_confirmed(self) -> bool:
        if self.known_interference:
            return True
        return self.analysis is not None and self.analysis.confirmed


@dataclass
class EpochReport:
    """Everything DeepDive did in one monitoring epoch."""

    epoch: int
    observations: Dict[str, VMObservation] = field(default_factory=dict)

    def analyzer_invocations(self) -> int:
        return sum(1 for o in self.observations.values() if o.analysis is not None)

    def confirmed_interference(self) -> List[str]:
        return [
            name
            for name, o in self.observations.items()
            if o.interference_confirmed
        ]


class DeepDive:
    """Transparent interference identification and management."""

    def __init__(
        self,
        cluster: Cluster,
        sandbox: Optional[SandboxEnvironment] = None,
        config: Optional[DeepDiveConfig] = None,
        synthesizer: Optional[TrainedSynthesizer] = None,
        mitigate: bool = False,
        engine: str = "batch",
    ) -> None:
        """
        Parameters
        ----------
        cluster:
            The production cluster DeepDive watches.
        sandbox:
            The profiling environment; a single-host sandbox matching the
            cluster's machine spec is created when omitted.
        config:
            DeepDive configuration (operator threshold, clustering knobs, ...).
        synthesizer:
            Optional trained synthetic-benchmark synthesizer used by the
            placement manager; without it the manager clones the real VM.
        mitigate:
            Whether confirmed interference triggers the placement manager
            (experiments that only measure detection leave this off).
        engine:
            ``"batch"`` evaluates every VM of an epoch through the
            vectorized :class:`MetricMatrix` path; ``"scalar"`` keeps the
            per-VM reference loop.  Both produce identical warning
            decisions (pinned by the property test suite); scalar exists
            as the executable specification and benchmark baseline.
        """
        if engine not in ("batch", "scalar"):
            raise ValueError(f"unknown epoch engine {engine!r}")
        self.engine = engine
        self.cluster = cluster
        self.config = config or DeepDiveConfig()
        spec = next(iter(cluster.hosts.values())).machine.spec
        self.sandbox = sandbox or SandboxEnvironment(
            num_hosts=1,
            spec=spec,
            epoch_seconds=self.config.epoch_seconds,
            profile_epochs=self.config.profile_epochs,
            seed=self.config.sandbox_seed,
        )
        self.repository = BehaviorRepository(
            warning_sigma=self.config.warning_sigma,
            max_clusters=self.config.max_clusters,
            refit_every=self.config.refit_every,
            min_normal_behaviors=self.config.min_normal_behaviors,
        )
        self.warning_system = WarningSystem(self.repository, self.config)
        self.analyzer = InterferenceAnalyzer(
            sandbox=self.sandbox,
            repository=self.repository,
            config=self.config,
            cpi_model=CPIStackModel.for_architecture(spec.architecture.name),
        )
        self.placement_manager = PlacementManager(
            sandbox=self.sandbox,
            synthesizer=synthesizer,
            config=self.config,
        )
        self.mitigate = mitigate
        self.events = EventLog()
        self.proxies: Dict[str, RequestProxy] = {}
        self.current_epoch = 0
        #: VMs whose application has been bootstrapped already.
        self._bootstrapped_apps: set = set()
        #: Last confirmed analysis per application (reused when a known
        #: interference signature reappears).
        self._last_confirmed: Dict[str, AnalysisResult] = {}
        #: Epoch of the last executed migration per source host.  One
        #: interference episode often confirms on several co-located
        #: victims in the same epoch (they all observed the same stale
        #: window); once the first mitigation has moved the aggressor
        #: away, further migrations from that host in the same epoch
        #: would evict innocent VMs, so they are rate-limited.
        self._host_migration_epoch: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Monitoring plumbing
    # ------------------------------------------------------------------
    def register_vm(self, vm_name: str) -> RequestProxy:
        """Create (or return) the request proxy for a production VM."""
        if vm_name not in self.proxies:
            self.proxies[vm_name] = RequestProxy(vm_name)
        return self.proxies[vm_name]

    def observe_load(self, vm_name: str, load: float) -> None:
        """Record the load the proxy forwarded to a VM this epoch."""
        self.register_vm(vm_name).observe(load)

    def bootstrap_vm(
        self, vm_name: str, load_levels: Optional[Sequence[float]] = None
    ) -> None:
        """Run the analyzer's bootstrap sweep for a VM's application."""
        placement = self.cluster.all_vms()
        if vm_name not in placement:
            raise KeyError(f"VM {vm_name!r} not placed in the cluster")
        _, vm = placement[vm_name]
        self.analyzer.bootstrap(vm, load_levels=load_levels)
        self._bootstrapped_apps.add(vm.app_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def observe_epoch(
        self,
        loads: Optional[Mapping[str, float]] = None,
        analyze: bool = True,
    ) -> EpochReport:
        """Process the newest counters of every VM in the cluster.

        Thin wrapper over :meth:`run_epoch` using the engine selected at
        construction time; kept for backwards compatibility with the
        experiment drivers.
        """
        return self.run_epoch(loads=loads, analyze=analyze)

    def run_epoch(
        self,
        loads: Optional[Mapping[str, float]] = None,
        analyze: bool = True,
        engine: Optional[str] = None,
        learn: bool = True,
    ) -> EpochReport:
        """Process the newest counters of every VM in the cluster.

        The epoch is split into two phases:

        1. **Evaluation** — every eligible VM's warning decision is
           computed against a frozen repository snapshot (batched per
           application in the ``"batch"`` engine, per-VM in the
           ``"scalar"`` engine; both produce identical decisions).
        2. **Actions** — workload-change learning, known-interference
           bookkeeping, analyzer invocations and mitigations run in
           deterministic placement order.  Before paying an analyzer
           run, the suspicion is re-checked against the *live*
           repository: an analysis earlier in the same epoch may already
           have certified the behaviour as normal (false alarm) or
           registered a matching interference signature.

        Parameters
        ----------
        loads:
            The per-VM loads the proxies observed this epoch (fractions
            of nominal).  VMs not listed reuse their last observed load.
        analyze:
            When False, only the warning system runs (used by experiments
            that count would-be analyzer invocations without paying them).
        engine:
            Optional engine override for this epoch (defaults to the
            instance's engine).
        learn:
            When False, corroborated workload changes are reported but
            not added to the repository — an observe-only pass with no
            side effects on the learned models (used by benchmarks that
            re-time the identical epoch).
        """
        engine = engine or self.engine
        if engine not in ("batch", "scalar"):
            raise ValueError(f"unknown epoch engine {engine!r}")
        report = EpochReport(epoch=self.current_epoch)
        if loads:
            for vm_name, load in loads.items():
                self.observe_load(vm_name, load)

        placement = self.cluster.all_vms()
        # ------------------------------------------------------------------
        # Phase 1: evaluate every eligible VM against a frozen repository.
        # An (almost) idle VM produces no meaningful metric vector; there
        # is nothing to suffer interference yet.
        # ------------------------------------------------------------------
        if engine == "batch":
            # One columnar read serves the whole epoch: the cluster hands
            # back every VM's newest counters and smoothing-window sum as
            # two raw matrices (served directly from the batch substrate's
            # per-epoch counter blocks when available).
            view = self.cluster.counter_window_view(self.config.smoothing_epochs)
            latest_inst = view.latest[:, _INST_RETIRED_COL]
            eligible = [
                vm_name
                for vm_name in placement
                if vm_name in view.index
                and latest_inst[view.index[vm_name]] >= 1e3
            ]
            decisions, vectors = self._evaluate_epoch_batch(
                placement, eligible, view
            )
        else:
            windows = self.cluster.counter_windows(self.config.smoothing_epochs)
            latest_samples: Dict[str, CounterSample] = {
                vm_name: window[-1] for vm_name, window in windows.items()
            }
            eligible = [
                vm_name
                for vm_name in placement
                if vm_name in latest_samples
                and latest_samples[vm_name].inst_retired >= 1e3
            ]
            decisions, vectors = self._evaluate_epoch_scalar(
                placement, latest_samples, eligible
            )

        # ------------------------------------------------------------------
        # Phase 2: act on the decisions in deterministic placement order.
        # ------------------------------------------------------------------
        for vm_name in eligible:
            host_name, vm = placement[vm_name]
            decision = decisions[vm_name]
            vector = vectors[vm_name]
            observation = VMObservation(
                vm_name=vm_name, app_id=vm.app_id, warning=decision
            )

            if decision.action is WarningAction.WORKLOAD_CHANGE:
                if learn:
                    self.warning_system.learn_workload_change(vm.app_id, vector)
            elif decision.flags_interference:
                observation.known_interference = True
                self._record_known_interference(vm_name, vm.app_id)
            elif decision.should_analyze and analyze:
                if self.repository.matches(vm.app_id, vector):
                    # An analysis earlier this epoch certified this very
                    # behaviour as interference-free; nothing to do.
                    pass
                elif self.repository.matches_interference(vm.app_id, vector):
                    # An analysis earlier this epoch registered a matching
                    # interference signature; report without re-profiling.
                    observation.known_interference = True
                    self._record_known_interference(vm_name, vm.app_id)
                else:
                    observation.analysis = self._run_analyzer(
                        host_name, vm_name, vm, decision, triggering_vector=vector
                    )
                    if (
                        observation.analysis is not None
                        and observation.analysis.confirmed
                        and self.mitigate
                    ):
                        observation.placement = self._mitigate(
                            host_name, observation.analysis
                        )
            report.observations[vm_name] = observation

        self.current_epoch += 1
        return report

    # ------------------------------------------------------------------
    # Epoch engines
    # ------------------------------------------------------------------
    def _evaluate_epoch_scalar(
        self,
        placement: Mapping[str, tuple],
        latest_samples: Mapping[str, CounterSample],
        eligible: Sequence[str],
    ) -> tuple:
        """The per-VM reference loop: one dict-driven evaluation per VM."""
        latest_vectors: Dict[str, MetricVector] = {
            vm_name: MetricVector.from_sample(
                latest_samples[vm_name], label=placement[vm_name][1].app_id
            )
            for vm_name in placement
            if vm_name in latest_samples
        }
        decisions: Dict[str, WarningDecision] = {}
        vectors: Dict[str, MetricVector] = {}
        for vm_name in eligible:
            host_name, vm = placement[vm_name]
            vector = self._smoothed_vector(host_name, vm_name, vm.app_id)
            siblings = {
                other: latest_vectors[other]
                for other, (_, other_vm) in placement.items()
                if other != vm_name
                and other_vm.app_id == vm.app_id
                and other in latest_vectors
            }
            decisions[vm_name] = self.warning_system.evaluate(
                vm_name=vm_name,
                app_id=vm.app_id,
                vector=vector,
                sibling_vectors=siblings,
            )
            vectors[vm_name] = vector
        return decisions, vectors

    def _evaluate_epoch_batch(
        self,
        placement: Mapping[str, tuple],
        eligible: Sequence[str],
        view: CounterWindowView,
    ) -> tuple:
        """The vectorized engine: a handful of array ops per application.

        Consumes the cluster's columnar counter view directly — the raw
        window sums and latest samples are already matrices, so each
        application's metric matrices are a row-gather plus one batch
        normalisation, with no per-VM sample handling.
        """
        by_app: Dict[str, List[str]] = {}
        for vm_name in eligible:
            by_app.setdefault(placement[vm_name][1].app_id, []).append(vm_name)
        # Sibling pools, grouped in one pass over the placement (pool
        # order = placement order, matching the scalar sibling dicts).
        pool_by_app: Dict[str, List[str]] = {}
        for vm_name, (_, vm) in placement.items():
            if vm_name in view.index:
                pool_by_app.setdefault(vm.app_id, []).append(vm_name)

        decisions: Dict[str, WarningDecision] = {}
        vectors: Dict[str, MetricVector] = {}
        for app_id, vm_names in by_app.items():
            own_rows = [view.index[vm_name] for vm_name in vm_names]
            own = MetricMatrix(
                array=normalize_counter_matrix(view.window_sum[own_rows]),
                vm_names=tuple(vm_names),
                labels=tuple(app_id for _ in vm_names),
            )
            pool_names = pool_by_app.get(app_id, [])
            pool_rows = [view.index[vm_name] for vm_name in pool_names]
            pool = MetricMatrix(
                array=normalize_counter_matrix(view.latest[pool_rows]),
                vm_names=tuple(pool_names),
                labels=tuple(app_id for _ in pool_names),
            )
            decisions.update(self.warning_system.evaluate_batch(app_id, own, pool))
            # Materialise the scalar vectors only for rows that may need
            # them in the action phase (learning / analyzer triggering).
            for vm_name in vm_names:
                if decisions[vm_name].action is not WarningAction.NORMAL:
                    vectors[vm_name] = own.vector(vm_name)
                else:
                    vectors[vm_name] = None  # never consumed for NORMAL rows
        return decisions, vectors

    # ------------------------------------------------------------------
    def _smoothed_vector(
        self, host_name: str, vm_name: str, app_id: str
    ) -> MetricVector:
        """One VM's smoothed metric vector (the scalar engine's path).

        ``counter_history`` is a lazy view over the host's columnar
        counter store, so slicing the window materialises exactly the
        ``smoothing_epochs`` samples it aggregates — no per-epoch
        eager materialisation happens anywhere upstream.
        """
        history = self.cluster.hosts[host_name].counter_history.get(vm_name, [])
        window = history[-self.config.smoothing_epochs:]
        aggregate = aggregate_samples(
            window, context=f"VM {vm_name!r} smoothing window on host {host_name!r}"
        )
        return MetricVector.from_sample(aggregate, label=app_id)

    def _recent_window(
        self, host_name: str, vm_name: str
    ) -> List[CounterSample]:
        """The production samples the analyzer compares against the sandbox.

        The window matches the smoothing window that triggered the
        warning, so the degradation estimate reflects the *current*
        conditions rather than a stale mix of epochs before and after an
        interference episode started.  Slicing the lazy history
        materialises the window's samples on demand — only VMs that
        actually reach the analyzer pay for sample objects.
        """
        history = self.cluster.hosts[host_name].counter_history.get(vm_name, [])
        return history[-self.config.smoothing_epochs:]

    def _replay_loads(self, vm_name: str, epochs: int) -> List[float]:
        proxy = self.proxies.get(vm_name)
        if proxy is None or proxy.latest_load() is None:
            return [1.0] * epochs
        # Replay the most recent load level for the whole window; the
        # normalisation by instructions retired makes the exact intra-
        # window shape irrelevant.
        return [float(proxy.latest_load())] * epochs

    def _run_analyzer(
        self,
        host_name: str,
        vm_name: str,
        vm: VirtualMachine,
        decision: WarningDecision,
        triggering_vector: Optional[MetricVector] = None,
    ) -> Optional[AnalysisResult]:
        production = self._recent_window(host_name, vm_name)
        if not production:
            return None
        replay = self._replay_loads(vm_name, len(production))
        result = self.analyzer.analyze(
            vm, production, replay, triggering_vector=triggering_vector
        )
        self.events.record(
            AnalyzerInvocationEvent(
                epoch=self.current_epoch,
                vm_name=vm_name,
                reason=decision.reason,
                confirmed=result.confirmed,
                degradation=result.degradation,
                profiling_seconds=result.profiling_seconds,
                culprit=result.culprit,
            )
        )
        if result.confirmed:
            self._last_confirmed[vm.app_id] = result
            self.events.record(
                InterferenceDetectedEvent(
                    epoch=self.current_epoch,
                    vm_name=vm_name,
                    degradation=result.degradation,
                    culprit=result.culprit,
                    factors=result.factors,
                )
            )
        return result

    def _record_known_interference(self, vm_name: str, app_id: str) -> None:
        """Record a detection that reused a previously diagnosed signature."""
        previous = self._last_confirmed.get(app_id)
        if previous is None or previous.culprit is None:
            return
        self.events.record(
            InterferenceDetectedEvent(
                epoch=self.current_epoch,
                vm_name=vm_name,
                degradation=previous.degradation,
                culprit=previous.culprit,
                factors=previous.factors,
            )
        )

    def _mitigate(
        self, host_name: str, analysis: AnalysisResult
    ) -> Optional[PlacementDecision]:
        if self._host_migration_epoch.get(host_name) == self.current_epoch:
            # A migration already left this host this epoch; give the
            # remaining VMs an epoch to observe the new conditions before
            # moving anything else.
            return None
        decision = self.placement_manager.resolve_interference(
            cluster=self.cluster,
            analysis=analysis,
            victim_host=host_name,
        )
        if decision is not None and decision.destination is not None:
            migrated = not decision.no_acceptable_destination
            if migrated:
                self._host_migration_epoch[host_name] = self.current_epoch
                self.events.record(
                    MigrationEvent(
                        epoch=self.current_epoch,
                        vm_name=decision.vm_name,
                        source=decision.source_host,
                        destination=decision.destination,
                        predicted_degradation=decision.best().score
                        if decision.best()
                        else 0.0,
                    )
                )
        return decision

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_profiling_seconds(self) -> float:
        """Total profiling time DeepDive has spent (bootstraps + analyses)."""
        return self.analyzer.total_profiling_seconds

    def analyzer_invocations(self) -> int:
        return self.analyzer.invocations

    def repository_size_bytes(self) -> int:
        return self.repository.size_bytes()
