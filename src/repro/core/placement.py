"""The VM-placement manager (Section 4.3).

Once the analyzer has confirmed interference and blamed a resource, the
placement manager:

1. selects which VM to migrate — by default the VM that uses the culprit
   resource most aggressively (the paper's simple interference-mitigating
   policy);
2. builds a synthetic representation of that VM (a synthetic benchmark
   whose inputs were regression-trained to reproduce the VM's metric
   vector);
3. runs the synthetic representation on every candidate destination PM
   concurrently, co-located with whatever those PMs are already running,
   and measures the interference that would result;
4. migrates the VM to the candidate with the least predicted
   interference — or reports that no acceptable destination exists.

This avoids speculative migrations entirely: "we can entirely eliminate
expensive and yet worthless (for placement) VM migration that could
cause performance degradation elsewhere."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.analyzer import AnalysisResult
from repro.core.config import DeepDiveConfig
from repro.metrics.counters import CounterSample
from repro.metrics.cpi import Resource
from repro.metrics.normalization import aggregate_samples
from repro.metrics.sample import MetricVector
from repro.regression.training import TrainedSynthesizer
from repro.virt.cluster import Cluster
from repro.virt.sandbox import SandboxEnvironment
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host
from repro.workloads.synthetic import SyntheticBenchmark


#: Which counter identifies the most aggressive user of each resource.
_AGGRESSIVENESS_COUNTER: Dict[Resource, str] = {
    Resource.CACHE: "l2_lines_in",
    Resource.MEMORY_BUS: "bus_tran_any",
    Resource.DISK: "disk_stall_cycles",
    Resource.NETWORK: "net_stall_cycles",
    Resource.CORE: "cpu_unhalted",
}


def contention_scores(pressure: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """Predicted degradation per host from resource overcommit.

    ``pressure`` and ``capacity`` are ``(n_hosts, n_resources)`` arrays
    (same resource columns in both).  Under proportional sharing a
    resource at utilisation ``u > 1`` grants each demand only ``1/u`` of
    what it asked for, so the predicted degradation is
    ``max(0, 1 - 1/u)``; a host's score is its *worst* resource —
    mirroring the manager's ``max(background, vm)`` scoring rule.  The
    fleet lifecycle engine's interference-aware admission ranks
    candidate hosts with this model (demand-derived, so scores are
    identical across hardware substrates); the sandbox-profiled
    :meth:`PlacementManager.evaluate_candidate` remains the
    high-fidelity path for confirmed-interference mitigation.
    """
    if pressure.shape != capacity.shape:
        raise ValueError("pressure and capacity must have matching shapes")
    util = pressure / np.maximum(capacity, 1e-12)
    degradation = np.maximum(0.0, 1.0 - 1.0 / np.maximum(util, 1e-12))
    return degradation.max(axis=1)


@dataclass
class CandidateEvaluation:
    """Predicted outcome of migrating the VM to one candidate host."""

    host_name: str
    #: Average degradation the candidate's resident VMs would suffer.
    predicted_background_degradation: float
    #: Degradation the migrated (synthetic) VM itself would suffer.
    predicted_vm_degradation: float
    #: Combined score used for ranking (lower is better).
    score: float


@dataclass
class PlacementDecision:
    """The placement manager's final recommendation."""

    vm_name: str
    source_host: str
    destination: Optional[str]
    evaluations: List[CandidateEvaluation]
    #: True when no candidate met the acceptable-degradation bound.
    no_acceptable_destination: bool = False

    def best(self) -> Optional[CandidateEvaluation]:
        if not self.evaluations:
            return None
        return min(self.evaluations, key=lambda e: e.score)


class PlacementManager:
    """Synthetic-benchmark-driven destination selection and migration."""

    def __init__(
        self,
        sandbox: SandboxEnvironment,
        synthesizer: Optional[TrainedSynthesizer] = None,
        config: Optional[DeepDiveConfig] = None,
    ) -> None:
        self.sandbox = sandbox
        self.synthesizer = synthesizer
        self.config = config or DeepDiveConfig()
        self.decisions: List[PlacementDecision] = []

    # ------------------------------------------------------------------
    # Victim / aggressor selection
    # ------------------------------------------------------------------
    def select_aggressor(
        self,
        host: Host,
        culprit: Resource,
        exclude: Sequence[str] = (),
    ) -> Optional[str]:
        """The VM using the culprit resource most aggressively on ``host``.

        ``exclude`` removes VMs from consideration (typically the victim
        whose interference triggered the analysis, when the operator's
        policy is to move the aggressor rather than the victim).
        """
        counter_name = _AGGRESSIVENESS_COUNTER[culprit]
        best_vm: Optional[str] = None
        best_value = -1.0
        for vm_name in host.vm_names():
            if vm_name in exclude:
                continue
            sample = host.latest_counters(vm_name)
            if sample is None:
                continue
            value = sample[counter_name]
            if value > best_value:
                best_value = value
                best_vm = vm_name
        return best_vm

    # ------------------------------------------------------------------
    # Synthetic representation
    # ------------------------------------------------------------------
    def synthetic_representation(
        self,
        vm: VirtualMachine,
        recent_samples: Sequence[CounterSample],
    ) -> VirtualMachine:
        """A VM running the synthetic benchmark that mimics ``vm``.

        Requires a trained synthesizer; when none is available the
        manager falls back to cloning the VM itself (correct but more
        expensive, and used in tests that do not train a synthesizer).
        """
        if self.synthesizer is None:
            return vm.clone(f"{vm.name}-proxyclone")
        aggregate = aggregate_samples(recent_samples)
        target = MetricVector.from_sample(aggregate, label=vm.app_id)
        target_rate = aggregate.inst_retired / max(aggregate.epoch_seconds, 1e-9)
        benchmark: SyntheticBenchmark = self.synthesizer.synthesize(
            target, target_inst_rate=target_rate
        )
        return VirtualMachine(
            name=f"{vm.name}-synthetic",
            workload=benchmark,
            vcpus=vm.vcpus,
            memory_gb=min(vm.memory_gb, 1.0),
            app_id=f"synthetic:{vm.app_id}",
        )

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def evaluate_candidate(
        self,
        candidate: Host,
        probe_vm: VirtualMachine,
        eval_epochs: Optional[int] = None,
    ) -> CandidateEvaluation:
        """Predict the interference of placing ``probe_vm`` on ``candidate``.

        The probe (the synthetic representation) runs in the sandbox
        co-located with clones of the candidate's resident VMs at their
        current loads; the resulting degradations are measured against
        isolation baselines obtained the same way.
        """
        epochs = eval_epochs or self.config.placement_eval_epochs
        background: Dict[VirtualMachine, float] = {}
        for vm_name, vm in candidate.vms.items():
            background[vm] = candidate.get_load(vm_name)

        # Isolation baselines: each background VM alone, and the probe alone.
        background_baselines: Dict[str, float] = {}
        for vm, load in background.items():
            solo = self.sandbox.profile(
                vm, loads=[load] * epochs, profile_epochs=epochs
            )
            background_baselines[vm.name] = solo.counters.inst_retired / max(
                solo.counters.epoch_seconds, 1e-9
            )
        probe_solo = self.sandbox.profile(
            probe_vm, loads=[1.0] * epochs, profile_epochs=epochs
        )
        probe_baseline_rate = probe_solo.counters.inst_retired / max(
            probe_solo.counters.epoch_seconds, 1e-9
        )

        # Co-located run: probe + all background VMs on one sandbox host.
        host = self.sandbox.hosts[0]
        probe_clone = probe_vm.clone(f"{probe_vm.name}-eval-{candidate.name}")
        host.add_vm(probe_clone, load=1.0)
        bg_clones: Dict[str, Tuple[VirtualMachine, str]] = {}
        for vm, load in background.items():
            clone = vm.clone(f"{vm.name}-eval-{candidate.name}")
            host.add_vm(clone, load=load)
            bg_clones[vm.name] = (clone, vm.name)

        probe_samples: List[CounterSample] = []
        bg_samples: Dict[str, List[CounterSample]] = {name: [] for name in bg_clones}
        try:
            for _ in range(epochs):
                results = host.step()
                probe_samples.append(results[probe_clone.name].counters)
                for original_name, (clone, _) in bg_clones.items():
                    bg_samples[original_name].append(results[clone.name].counters)
        finally:
            for name in list(host.vms):
                host.remove_vm(name)

        # Degradations relative to the isolation baselines.
        bg_degradations: List[float] = []
        for original_name, samples in bg_samples.items():
            agg = aggregate_samples(samples)
            rate = agg.inst_retired / max(agg.epoch_seconds, 1e-9)
            baseline = background_baselines[original_name]
            if baseline > 0:
                bg_degradations.append(max(0.0, 1.0 - rate / baseline))
        probe_agg = aggregate_samples(probe_samples)
        probe_rate = probe_agg.inst_retired / max(probe_agg.epoch_seconds, 1e-9)
        probe_degradation = (
            max(0.0, 1.0 - probe_rate / probe_baseline_rate)
            if probe_baseline_rate > 0
            else 0.0
        )
        background_degradation = (
            float(np.mean(bg_degradations)) if bg_degradations else 0.0
        )

        score = max(background_degradation, probe_degradation)
        return CandidateEvaluation(
            host_name=candidate.name,
            predicted_background_degradation=background_degradation,
            predicted_vm_degradation=probe_degradation,
            score=score,
        )

    # ------------------------------------------------------------------
    # Full decision
    # ------------------------------------------------------------------
    def decide(
        self,
        vm: VirtualMachine,
        source_host: str,
        candidates: Mapping[str, Host],
        recent_samples: Sequence[CounterSample],
        eval_epochs: Optional[int] = None,
    ) -> PlacementDecision:
        """Pick the destination PM with the least predicted interference."""
        probe = self.synthetic_representation(vm, recent_samples)
        evaluations: List[CandidateEvaluation] = []
        for name, host in candidates.items():
            if name == source_host:
                continue
            if not host.can_fit(vm):
                continue
            evaluations.append(
                self.evaluate_candidate(host, probe, eval_epochs=eval_epochs)
            )
        evaluations.sort(key=lambda e: e.score)
        destination: Optional[str] = None
        no_acceptable = True
        if evaluations:
            best = evaluations[0]
            destination = best.host_name
            no_acceptable = best.score > self.config.placement_acceptable_degradation
        decision = PlacementDecision(
            vm_name=vm.name,
            source_host=source_host,
            destination=destination,
            evaluations=evaluations,
            no_acceptable_destination=no_acceptable,
        )
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    def resolve_interference(
        self,
        cluster: Cluster,
        analysis: AnalysisResult,
        victim_host: str,
        prefer_aggressor: bool = True,
        eval_epochs: Optional[int] = None,
    ) -> Optional[PlacementDecision]:
        """End-to-end mitigation: pick a VM, vet destinations, migrate.

        Returns the decision, or None when no VM could be selected.  The
        migration is only executed when an acceptable destination exists.
        """
        host = cluster.get_host(victim_host)
        target_vm_name: Optional[str]
        if prefer_aggressor and analysis.culprit is not None:
            target_vm_name = self.select_aggressor(
                host, analysis.culprit, exclude=[]
            )
        else:
            target_vm_name = analysis.vm_name
        if target_vm_name is None or not host.has_vm(target_vm_name):
            return None
        vm = host.get_vm(target_vm_name)
        samples = host.counter_history.get(target_vm_name, [])
        recent = samples[-self.config.profile_epochs:] if samples else []
        if not recent:
            recent = [CounterSample.zeros()]
        candidates = {
            name: h
            for name, h in cluster.hosts.items()
            if name != victim_host and name not in cluster.drained_hosts
        }
        decision = self.decide(
            vm,
            source_host=victim_host,
            candidates=candidates,
            recent_samples=recent,
            eval_epochs=eval_epochs,
        )
        if decision.destination is not None and not decision.no_acceptable_destination:
            cluster.migrate_vm(target_vm_name, decision.destination)
        return decision
