"""The interference analyzer (Section 4.2, Algorithm 2).

When the warning system suspects interference, the analyzer obtains the
ground truth: it clones the VM into the sandbox, replays the same client
load through the request-duplicating proxy, and compares the
instruction-retirement rates in production and in isolation.  If the
estimated degradation stays below the operator-defined performance
threshold, the suspicion was a false alarm and the new behaviour is
added to the repository's normal set.  Otherwise the analyzer builds the
I/O-augmented CPI stack for both environments, ranks the per-resource
degradation factors, and hands the result to the placement manager.

The analyzer also implements the *bootstrap* path: the first time an
application is seen, a sweep over load levels in the sandbox seeds the
repository with interference-free behaviours and lets the clustering
derive the metric thresholds MT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository
from repro.metrics.counters import CounterSample
from repro.metrics.cpi import (
    CPIStack,
    CPIStackModel,
    Resource,
    degradation_from_instructions,
)
from repro.metrics.normalization import aggregate_samples
from repro.metrics.sample import MetricVector
from repro.virt.sandbox import SandboxEnvironment, SandboxRun
from repro.virt.vm import VirtualMachine


class AnalysisVerdict(str, enum.Enum):
    """Outcome of one analyzer invocation."""

    #: Degradation below the operator threshold: false alarm / benign.
    NO_INTERFERENCE = "no_interference"
    #: Degradation above the threshold: interference confirmed.
    INTERFERENCE = "interference"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class AnalysisResult:
    """Everything the analyzer learned from one invocation."""

    vm_name: str
    app_id: str
    verdict: AnalysisVerdict
    #: Estimated degradation (0 = none, 0.3 = 30% slower than isolation).
    degradation: float
    #: The resource blamed for the degradation (None when no interference).
    culprit: Optional[Resource]
    #: Per-resource degradation factors from the CPI-stack comparison.
    factors: Dict[Resource, float]
    #: The production-vs-isolation CPI stack (for reporting / plots).
    cpi_stack: Optional[CPIStack]
    #: Aggregate production counters the analysis used.
    production_counters: CounterSample
    #: Aggregate isolation counters from the sandbox run.
    isolation_counters: CounterSample
    #: Sandbox run bookkeeping (profiling cost).
    sandbox_run: Optional[SandboxRun]
    #: Seconds of profiling this invocation cost.
    profiling_seconds: float

    @property
    def confirmed(self) -> bool:
        return self.verdict is AnalysisVerdict.INTERFERENCE


class InterferenceAnalyzer:
    """VM cloning + workload duplication + CPI-stack attribution."""

    def __init__(
        self,
        sandbox: SandboxEnvironment,
        repository: BehaviorRepository,
        config: Optional[DeepDiveConfig] = None,
        cpi_model: Optional[CPIStackModel] = None,
    ) -> None:
        self.sandbox = sandbox
        self.repository = repository
        self.config = config or DeepDiveConfig()
        self.cpi_model = cpi_model or CPIStackModel.for_architecture(
            sandbox.spec.architecture.name
        )
        #: Number of analyzer invocations (excluding bootstraps).
        self.invocations = 0
        #: Number of bootstrap sweeps performed.
        self.bootstraps = 0
        #: Total profiling seconds consumed (invocations + bootstraps).
        self.total_profiling_seconds = 0.0

    # ------------------------------------------------------------------
    # Bootstrap: learn the ground-truth normal behaviours in isolation
    # ------------------------------------------------------------------
    def bootstrap(
        self,
        vm: VirtualMachine,
        load_levels: Optional[Sequence[float]] = None,
    ) -> List[MetricVector]:
        """Profile a newly seen application across load levels in isolation.

        Returns the metric vectors added to the repository.  The sweep
        spans the load range the application is expected to see, so later
        quantitative load changes fall inside the learned clusters.
        """
        if load_levels is None:
            levels = np.linspace(0.2, 1.0, self.config.bootstrap_load_levels)
        else:
            levels = np.asarray(list(load_levels), dtype=float)
        vectors: List[MetricVector] = []
        profiling = 0.0
        for level in levels:
            run = self.sandbox.profile(
                vm,
                loads=[float(level)] * self.config.bootstrap_epochs_per_level,
                profile_epochs=self.config.bootstrap_epochs_per_level,
            )
            profiling += run.total_seconds
            for sample in run.epoch_counters:
                vectors.append(MetricVector.from_sample(sample, label=vm.app_id))
        self.repository.add_normal_batch(vm.app_id, vectors, refit=True)
        self.bootstraps += 1
        self.total_profiling_seconds += profiling
        return vectors

    # ------------------------------------------------------------------
    # Algorithm 2: production vs isolation comparison
    # ------------------------------------------------------------------
    def analyze(
        self,
        vm: VirtualMachine,
        production_samples: Sequence[CounterSample],
        replay_loads: Sequence[float],
        performance_threshold: Optional[float] = None,
        triggering_vector: Optional[MetricVector] = None,
    ) -> AnalysisResult:
        """Confirm or reject an interference suspicion for one VM.

        Parameters
        ----------
        vm:
            The production VM under suspicion (it will be cloned).
        production_samples:
            The recent per-epoch counter samples collected in production
            (the window the warning system found suspicious).
        replay_loads:
            The offered-load stream (fractions of nominal) the proxy
            recorded over that window; replayed to the sandbox clone.
        performance_threshold:
            Override of the operator threshold (defaults to the config).
        triggering_vector:
            The normalised metric vector that made the warning system
            fire.  When provided it is the behaviour recorded in the
            repository (as a new normal behaviour on a false alarm, or as
            an interference signature on a confirmation); the aggregated
            window is used otherwise.
        """
        if not production_samples:
            raise ValueError("analyze needs at least one production sample")
        if not replay_loads:
            raise ValueError("analyze needs the replayed load stream")
        threshold = (
            performance_threshold
            if performance_threshold is not None
            else self.config.performance_threshold
        )

        production = aggregate_samples(production_samples)
        run = self.sandbox.profile(
            vm,
            loads=list(replay_loads),
            profile_epochs=len(replay_loads),
        )
        isolation = run.counters

        degradation = degradation_from_instructions(production, isolation)
        stack = self.cpi_model.compare(production, isolation)
        factors = stack.factors()

        self.invocations += 1
        self.total_profiling_seconds += run.total_seconds

        label_vector = triggering_vector or MetricVector.from_sample(
            production, label=vm.app_id
        )
        if degradation < threshold:
            # False alarm: certify the production behaviour as normal so
            # the warning system will not fire on it again.
            self.repository.add_normal(vm.app_id, label_vector, refit=True)
            return AnalysisResult(
                vm_name=vm.name,
                app_id=vm.app_id,
                verdict=AnalysisVerdict.NO_INTERFERENCE,
                degradation=degradation,
                culprit=None,
                factors=factors,
                cpi_stack=stack,
                production_counters=production,
                isolation_counters=isolation,
                sandbox_run=run,
                profiling_seconds=run.total_seconds,
            )

        # Interference confirmed: label the behaviour so the clustering
        # can never absorb it, identify the culprit, escalate.
        self.repository.add_interference(vm.app_id, label_vector)
        culprit = self._culprit(stack)
        return AnalysisResult(
            vm_name=vm.name,
            app_id=vm.app_id,
            verdict=AnalysisVerdict.INTERFERENCE,
            degradation=degradation,
            culprit=culprit,
            factors=factors,
            cpi_stack=stack,
            production_counters=production,
            isolation_counters=isolation,
            sandbox_run=run,
            profiling_seconds=run.total_seconds,
        )

    # ------------------------------------------------------------------
    def _culprit(self, stack: CPIStack) -> Resource:
        """Pick the culprit among the non-core resources.

        The core component is excluded from the vote: extra "core" time
        per instruction reflects the victim's own computation, while
        interference by definition comes from a *shared* resource (cache,
        interconnect, disk, network).
        """
        factors = stack.factors()
        shared = {r: f for r, f in factors.items() if r is not Resource.CORE}
        return max(shared, key=lambda r: shared[r])

    # ------------------------------------------------------------------
    def estimate_degradation(
        self,
        production_samples: Sequence[CounterSample],
        isolation_samples: Sequence[CounterSample],
    ) -> float:
        """Degradation estimate from two already-collected sample sets."""
        production = aggregate_samples(production_samples)
        isolation = aggregate_samples(isolation_samples)
        return degradation_from_instructions(production, isolation)
