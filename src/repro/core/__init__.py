"""DeepDive proper.

The paper's primary contribution: the warning system that cheaply spots
suspicious behaviour, the interference analyzer that confirms it and
pinpoints the culprit resource, the behaviour repository both rely on,
the VM placement manager that resolves confirmed interference by
migrating the aggressor to a vetted destination, the threshold baselines
used in the overhead comparison, and the :class:`DeepDive` orchestrator
that wires everything together.
"""

from repro.core.config import DeepDiveConfig
from repro.core.repository import BehaviorRepository, AppBehaviorEntry
from repro.core.warning import WarningSystem, WarningDecision, WarningAction
from repro.core.analyzer import InterferenceAnalyzer, AnalysisResult, AnalysisVerdict
from repro.core.placement import (
    PlacementManager,
    PlacementDecision,
    CandidateEvaluation,
)
from repro.core.baselines import ThresholdBaseline, BaselineDecision
from repro.core.controller import PersistenceController, ControllerDecision
from repro.core.deepdive import DeepDive, VMObservation, EpochReport
from repro.core.events import (
    AnalyzerInvocationEvent,
    InterferenceDetectedEvent,
    MigrationEvent,
    EventLog,
)

__all__ = [
    "DeepDiveConfig",
    "BehaviorRepository",
    "AppBehaviorEntry",
    "WarningSystem",
    "WarningDecision",
    "WarningAction",
    "InterferenceAnalyzer",
    "AnalysisResult",
    "AnalysisVerdict",
    "PlacementManager",
    "PlacementDecision",
    "CandidateEvaluation",
    "ThresholdBaseline",
    "BaselineDecision",
    "PersistenceController",
    "ControllerDecision",
    "DeepDive",
    "VMObservation",
    "EpochReport",
    "AnalyzerInvocationEvent",
    "InterferenceDetectedEvent",
    "MigrationEvent",
    "EventLog",
]
