"""Per-epoch resource demands.

:class:`ResourceDemand` is the interface between the workload models and
the hardware substrate: a workload, given its current load intensity,
describes *what it would like to do* during the next epoch (instructions
to retire, cache/memory access intensity, disk and network traffic), and
the :class:`~repro.hardware.machine.PhysicalMachine` resolves contention
among the co-located demands to decide *what actually happened* and what
the performance counters read.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass
class ResourceDemand:
    """What one VM would like to do during one epoch, absent contention.

    Rates are expressed per 1000 instructions ("pki") wherever the
    quantity scales with the amount of work, so scaling ``instructions``
    up or down (a load change) leaves the per-instruction character of
    the workload unchanged — which is exactly the property the paper's
    normalisation relies on.
    """

    #: Instructions the workload wants to retire this epoch.
    instructions: float
    #: Number of vCPUs the instructions are spread across.
    vcpus: int = 1
    #: Working-set size in MB competing for the shared cache.
    working_set_mb: float = 4.0
    #: Loads retired per 1000 instructions.
    loads_pki: float = 300.0
    #: L1 data-cache misses (lines allocated) per 1000 instructions.
    l1_miss_pki: float = 20.0
    #: Instruction-fetch accesses reaching the shared cache per 1000 instructions.
    ifetch_pki: float = 2.0
    #: Branches per 1000 instructions.
    branches_pki: float = 150.0
    #: Fraction of branches mispredicted.
    branch_mispredict_rate: float = 0.03
    #: Temporal locality knob in [0, 1]: 1 means the working set is reused
    #: so effectively that shared-cache misses are mostly compulsory, 0
    #: means streaming access with no reuse.
    locality: float = 0.7
    #: Desired disk traffic in MB for the epoch (reads + writes).
    disk_mb: float = 0.0
    #: Fraction of the disk traffic that is sequential.
    disk_sequential_fraction: float = 0.8
    #: Desired network traffic in Mbit for the epoch (in + out).
    network_mbit: float = 0.0
    #: Dirty ratio of memory traffic (write-backs add bus transactions).
    write_fraction: float = 0.3

    def scaled(self, load_factor: float) -> "ResourceDemand":
        """Scale the *amount of work* by ``load_factor``.

        Per-instruction characteristics (pki rates, locality, working
        set) are preserved; only the instruction count and the I/O
        volumes scale, mimicking a quantitative load change.
        """
        if load_factor < 0:
            raise ValueError("load_factor must be non-negative")
        return replace(
            self,
            instructions=self.instructions * load_factor,
            disk_mb=self.disk_mb * load_factor,
            network_mbit=self.network_mbit * load_factor,
        )

    def validate(self) -> None:
        """Raise :class:`ValueError` on physically meaningless demands."""
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")
        if self.vcpus < 1:
            raise ValueError("a demand needs at least one vCPU")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        if not 0.0 <= self.branch_mispredict_rate <= 1.0:
            raise ValueError("branch_mispredict_rate must be in [0, 1]")
        if not 0.0 <= self.disk_sequential_fraction <= 1.0:
            raise ValueError("disk_sequential_fraction must be in [0, 1]")
        for name in ("working_set_mb", "loads_pki", "l1_miss_pki", "ifetch_pki",
                     "branches_pki", "disk_mb", "network_mbit"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view (used by the synthetic-benchmark trainer)."""
        return {
            "instructions": self.instructions,
            "vcpus": float(self.vcpus),
            "working_set_mb": self.working_set_mb,
            "loads_pki": self.loads_pki,
            "l1_miss_pki": self.l1_miss_pki,
            "ifetch_pki": self.ifetch_pki,
            "branches_pki": self.branches_pki,
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "locality": self.locality,
            "disk_mb": self.disk_mb,
            "disk_sequential_fraction": self.disk_sequential_fraction,
            "network_mbit": self.network_mbit,
            "write_fraction": self.write_fraction,
        }

    @classmethod
    def idle(cls) -> "ResourceDemand":
        """An idle VM: no work at all."""
        return cls(instructions=0.0, working_set_mb=0.0, disk_mb=0.0,
                   network_mbit=0.0, l1_miss_pki=0.0, loads_pki=0.0)
