"""NIC contention model.

The NIC is a simple shared link: when the sum of the co-located VMs'
traffic demands exceeds the port bandwidth, each VM gets a proportional
share and the unmet portion of its demand becomes send/receive-queue
wait time, reported by the hypervisor as ``net_stall_cycles`` (the
netstat-style metric from Table 1).  This is how iperf-style network
interference (the paper's Scenario C and the Figure 5 experiment)
reaches the victims' counter vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.hardware.demand import ResourceDemand
from repro.hardware.specs import NicSpec


@dataclass
class NicOutcome:
    """Result of the NIC model for one VM in one epoch."""

    #: Mbit the VM actually transferred this epoch.
    transferred_mbit: float
    #: Mbit the VM wanted to transfer this epoch.
    demanded_mbit: float
    #: Seconds the VM spent with packets waiting in the Snd/Rcv queues.
    wait_seconds: float
    #: Effective throughput granted to the VM in Mbps.
    granted_mbps: float

    @property
    def satisfaction(self) -> float:
        """Fraction of the demand that was served (1.0 when idle)."""
        if self.demanded_mbit <= 0:
            return 1.0
        return self.transferred_mbit / self.demanded_mbit


class NicModel:
    """Bandwidth-sharing model of the machine's network interface(s)."""

    def __init__(self, spec: NicSpec) -> None:
        self._spec = spec

    @property
    def capacity_mbps(self) -> float:
        """Aggregate NIC capacity in Mbps.

        Contention is modelled on a single shared pool equal to the port
        bandwidth: a full-duplex port can carry the line rate in each
        direction, but the dominant direction is what saturates first and
        the paper's iperf stressor pushes both directions at once, so a
        directionless pool of one line rate captures the contention the
        victims actually see.
        """
        return self._spec.bandwidth_mbps * self._spec.count

    def resolve(
        self, demands: Mapping[str, ResourceDemand], epoch_seconds: float
    ) -> Dict[str, NicOutcome]:
        """Resolve NIC contention among the co-located demands."""
        active = {n: d for n, d in demands.items() if d.network_mbit > 0}
        outcomes: Dict[str, NicOutcome] = {
            n: NicOutcome(0.0, 0.0, 0.0, 0.0) for n in demands if n not in active
        }
        if not active:
            return outcomes

        capacity_mbit = self.capacity_mbps * epoch_seconds
        total_demand = sum(d.network_mbit for d in active.values())
        for name, d in active.items():
            if total_demand <= capacity_mbit:
                transferred = d.network_mbit
            else:
                transferred = d.network_mbit * capacity_mbit / total_demand
            granted_mbps = transferred / max(epoch_seconds, 1e-9)
            # Queueing delay grows with link utilisation even before the
            # link saturates; once demand exceeds the capacity the VM is
            # additionally blocked for the fraction of its traffic that
            # could not be served this epoch.
            utilization = min(0.99, total_demand / max(capacity_mbit, 1e-9))
            queue_wait = epoch_seconds * 0.2 * (utilization ** 3)
            unmet_fraction = 1.0 - transferred / max(d.network_mbit, 1e-9)
            backlog_seconds = epoch_seconds * max(0.0, unmet_fraction)
            wait = min(epoch_seconds, queue_wait + backlog_seconds)
            outcomes[name] = NicOutcome(
                transferred_mbit=transferred,
                demanded_mbit=d.network_mbit,
                wait_seconds=wait,
                granted_mbps=granted_mbps,
            )
        return outcomes

    def resolve_batch(
        self,
        network_mbit: np.ndarray,
        host_ids: np.ndarray,
        n_hosts: int,
        epoch_seconds: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`resolve` over many NICs at once.

        Rows are VMs; ``host_ids`` segments them into independent NICs.
        Returns ``(transferred_mbit, wait_seconds, granted_mbps)`` arrays
        mirroring :class:`NicOutcome`.
        """
        active = network_mbit > 0
        capacity_mbit = self.capacity_mbps * epoch_seconds
        total_demand = np.bincount(
            host_ids, weights=np.where(active, network_mbit, 0.0), minlength=n_hosts
        )
        total_rows = total_demand[host_ids]
        transferred = np.where(
            total_rows <= capacity_mbit,
            network_mbit,
            network_mbit * capacity_mbit / np.maximum(total_rows, 1e-30),
        )
        granted_mbps = transferred / max(epoch_seconds, 1e-9)
        utilization = np.minimum(0.99, total_rows / max(capacity_mbit, 1e-9))
        queue_wait = epoch_seconds * 0.2 * (utilization ** 3)
        unmet_fraction = 1.0 - transferred / np.maximum(network_mbit, 1e-9)
        backlog_seconds = epoch_seconds * np.maximum(0.0, unmet_fraction)
        wait = np.minimum(epoch_seconds, queue_wait + backlog_seconds)
        return (
            np.where(active, transferred, 0.0),
            np.where(active, wait, 0.0),
            np.where(active, granted_mbps, 0.0),
        )

    def isolation_outcome(
        self, demand: ResourceDemand, epoch_seconds: float
    ) -> NicOutcome:
        """Outcome when the VM is alone on the NIC."""
        return self.resolve({"_solo": demand}, epoch_seconds)["_solo"]
