"""Shared last-level-cache contention model.

Co-located VMs whose vCPUs are pinned to cores in the same cache domain
compete for the shared cache.  The model captures the two effects the
paper's interference scenarios rely on:

* a VM whose working set fits the cache in isolation can start missing
  when a co-runner occupies part of the cache ("two VMs may thrash in
  the shared hardware cache when running together, but fit nicely in it
  when each is running in isolation");
* the magnitude of the effect depends on the co-runners' access
  intensity — an idle co-runner with a large but cold working set
  steals little cache.

The model allocates effective cache space proportionally to each VM's
miss-weighted access pressure (an approximation of LRU steady state used
widely in analytical cache models), then converts the ratio of working
set to effective space into a miss probability, modulated by the
workload's temporal locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.hardware.demand import ResourceDemand
from repro.hardware.specs import ArchitectureSpec


@dataclass
class CacheOutcome:
    """Result of the shared-cache model for one VM in one epoch."""

    #: Accesses that reached the shared cache (private-cache misses).
    llc_accesses: float
    #: Accesses that missed the shared cache and went to memory.
    llc_misses: float
    #: Effective cache space occupied by the VM, in MB.
    occupancy_mb: float
    #: Shared-cache miss ratio (misses / accesses), 0 when no accesses.
    miss_ratio: float


class SharedCacheModel:
    """Analytical model of one shared cache domain."""

    #: Minimum (compulsory) miss ratio even for tiny working sets.
    COMPULSORY_MISS_RATIO = 0.02

    def __init__(self, spec: ArchitectureSpec) -> None:
        self._spec = spec
        self._size_mb = spec.shared_cache_mb

    @property
    def size_mb(self) -> float:
        return self._size_mb

    def resolve(
        self, demands: Mapping[str, ResourceDemand]
    ) -> Dict[str, CacheOutcome]:
        """Resolve contention among all demands sharing this cache domain.

        Parameters
        ----------
        demands:
            Mapping from VM name to its demand for this epoch.  Only the
            cache-related fields are used.

        Returns
        -------
        dict
            Mapping from VM name to its :class:`CacheOutcome`.
        """
        names: List[str] = list(demands)
        accesses: Dict[str, float] = {}
        pressure: Dict[str, float] = {}
        for name in names:
            d = demands[name]
            acc = d.instructions * d.l1_miss_pki / 1000.0
            acc += d.instructions * d.ifetch_pki / 1000.0
            accesses[name] = acc
            # Access pressure weights cache occupancy: a VM that touches
            # its working set frequently defends more of the cache.  The
            # sqrt keeps a low-intensity large-footprint VM from being
            # starved entirely (matches the "square-root rule" used in
            # analytical LRU-sharing models).
            intensity = acc / max(d.instructions, 1.0) if d.instructions > 0 else 0.0
            pressure[name] = d.working_set_mb * (0.25 + (intensity * 1000.0) ** 0.5)

        total_pressure = sum(pressure.values())
        outcomes: Dict[str, CacheOutcome] = {}
        for name in names:
            d = demands[name]
            if accesses[name] <= 0 or d.working_set_mb <= 0:
                outcomes[name] = CacheOutcome(
                    llc_accesses=accesses[name],
                    llc_misses=accesses[name] * self.COMPULSORY_MISS_RATIO,
                    occupancy_mb=0.0,
                    miss_ratio=self.COMPULSORY_MISS_RATIO,
                )
                continue
            if total_pressure > 0:
                share = self._size_mb * pressure[name] / total_pressure
            else:
                share = self._size_mb
            # A VM never occupies more cache than its working set.
            occupancy = min(share, d.working_set_mb)
            miss_ratio = self._miss_ratio(d, occupancy)
            misses = accesses[name] * miss_ratio
            outcomes[name] = CacheOutcome(
                llc_accesses=accesses[name],
                llc_misses=misses,
                occupancy_mb=occupancy,
                miss_ratio=miss_ratio,
            )
        return outcomes

    def resolve_batch(
        self,
        instructions: np.ndarray,
        l1_miss_pki: np.ndarray,
        ifetch_pki: np.ndarray,
        working_set_mb: np.ndarray,
        locality: np.ndarray,
        domain_ids: np.ndarray,
        n_domains: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`resolve` over many cache domains at once.

        Rows are (VM, domain) membership pairs — ``instructions`` is the
        VM's instruction demand already scaled by its access share of the
        domain, exactly like the scalar path's ``demand.scaled(w)``.
        ``domain_ids`` segments the rows into independent cache domains
        (all of the same size, this model's ``size_mb``).

        Returns ``(llc_accesses, llc_misses, occupancy_mb, miss_ratio)``
        arrays, one entry per row, mirroring :class:`CacheOutcome`.  The
        arithmetic replays the scalar model operation for operation; the
        only difference is the float-summation order of the per-domain
        pressure total, which matches the scalar insertion-order sum
        because rows are grouped VM-major.
        """
        accesses = (
            instructions * l1_miss_pki / 1000.0
            + instructions * ifetch_pki / 1000.0
        )
        intensity = np.where(
            instructions > 0,
            accesses / np.maximum(instructions, 1.0),
            0.0,
        )
        pressure = working_set_mb * (0.25 + np.sqrt(intensity * 1000.0))
        total_pressure = np.bincount(
            domain_ids, weights=pressure, minlength=n_domains
        )[domain_ids]
        share = np.where(
            total_pressure > 0,
            self._size_mb
            * pressure
            / np.where(total_pressure > 0, total_pressure, 1.0),
            self._size_mb,
        )
        occupancy = np.minimum(share, working_set_mb)
        ws_safe = np.where(working_set_mb > 0, working_set_mb, 1.0)
        fit = np.minimum(1.0, occupancy / ws_safe)
        overflow = 1.0 - fit
        ceiling = 1.0 - locality * 0.9
        ratio = self.COMPULSORY_MISS_RATIO + overflow * ceiling
        ratio = np.minimum(1.0, np.maximum(self.COMPULSORY_MISS_RATIO, ratio))
        # A VM with no cache accesses (or no working set) only pays the
        # compulsory floor and occupies no space, as in the scalar model.
        inactive = (accesses <= 0) | (working_set_mb <= 0)
        ratio = np.where(inactive, self.COMPULSORY_MISS_RATIO, ratio)
        occupancy = np.where(inactive, 0.0, occupancy)
        misses = accesses * ratio
        return accesses, misses, occupancy, ratio

    def _miss_ratio(self, demand: ResourceDemand, occupancy_mb: float) -> float:
        """Miss ratio given the effective cache space granted to the VM.

        When the working set fits in the granted space the miss ratio is
        the compulsory floor; as the working set overflows the space the
        miss ratio rises toward ``1 - locality`` (a perfectly local
        workload re-references recently touched lines and keeps hitting
        even when only part of its footprint is cached, a streaming
        workload misses on everything it cannot hold).
        """
        ws = demand.working_set_mb
        if ws <= 0:
            return self.COMPULSORY_MISS_RATIO
        fit = min(1.0, occupancy_mb / ws)
        # Fraction of accesses falling outside the cached portion.
        overflow = 1.0 - fit
        ceiling = 1.0 - demand.locality * 0.9
        ratio = self.COMPULSORY_MISS_RATIO + overflow * ceiling
        return min(1.0, max(self.COMPULSORY_MISS_RATIO, ratio))

    def isolation_outcome(self, demand: ResourceDemand) -> CacheOutcome:
        """Outcome when the VM has the whole cache domain to itself."""
        return self.resolve({"_solo": demand})["_solo"]
