"""The vectorized hardware-contention substrate.

The scalar substrate (:meth:`~repro.hardware.machine.PhysicalMachine.run_epoch`)
resolves contention one Python object at a time: per-VM dictionaries flow
through the cache, bus, disk and NIC models and every counter is touched
individually.  That is the executable specification — readable, and
exercised directly by the unit tests — but at fleet scale it is >90% of
wall-clock time.

This module is the batch equivalent: the demands of **all VMs on all
hosts of a cluster** are packed into one columnar :class:`DemandMatrix`,
the per-resource models' ``resolve_batch`` APIs resolve contention with a
handful of NumPy operations over host-segmented arrays, and the result
comes back as a columnar :class:`BatchEpochResult` whose rows can feed
:class:`~repro.metrics.matrix.MetricMatrix` directly.

Equivalence contract
--------------------
``simulate_epoch_batch`` mirrors the scalar substrate operation for
operation: same formulas, same operand order, and the same per-host
measurement-noise draws (one :func:`numpy.random.Generator.normal` per
counter per active VM, in VM placement order).  Counters therefore match
the scalar substrate bit-for-bit in the common case; the only tolerated
deviation is float-summation order in cross-VM reductions (documented
tolerance ``1e-9`` relative), which cannot change any warning decision.
``tests/property/test_substrate_equivalence.py`` pins this contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hardware.cache import SharedCacheModel
from repro.hardware.demand import ResourceDemand
from repro.hardware.disk import DiskModel
from repro.hardware.membus import CACHE_LINE_BYTES, MemoryBusModel
from repro.hardware.network import NicModel
from repro.hardware.specs import MachineSpec
from repro.metrics.counters import COUNTER_NAMES, N_COUNTERS, CounterSample

#: Column index of ``inst_retired`` in the batch counter matrix.
INST_RETIRED_COL = COUNTER_NAMES.index("inst_retired")

#: The scalar :class:`ResourceDemand` fields packed into a DemandMatrix,
#: in column order.
DEMAND_FIELDS: Tuple[str, ...] = (
    "instructions",
    "working_set_mb",
    "loads_pki",
    "l1_miss_pki",
    "ifetch_pki",
    "branches_pki",
    "branch_mispredict_rate",
    "locality",
    "disk_mb",
    "disk_sequential_fraction",
    "network_mbit",
    "write_fraction",
)

#: Column index per packed demand field — for consumers (admission
#: scoring, diagnostics) that read individual columns out of packed
#: demand rows without materialising :class:`ResourceDemand` objects.
DEMAND_FIELD_INDEX: Dict[str, int] = {
    name: i for i, name in enumerate(DEMAND_FIELDS)
}


def pack_demand(demand: ResourceDemand) -> Tuple[float, ...]:
    """One VM's demand as a flat row tuple (see :data:`DEMAND_FIELDS`)."""
    return (
        demand.instructions,
        demand.working_set_mb,
        demand.loads_pki,
        demand.l1_miss_pki,
        demand.ifetch_pki,
        demand.branches_pki,
        demand.branch_mispredict_rate,
        demand.locality,
        demand.disk_mb,
        demand.disk_sequential_fraction,
        demand.network_mbit,
        demand.write_fraction,
    )


@dataclass
class DemandMatrix:
    """Columnar view of many VMs' :class:`ResourceDemand` objects."""

    instructions: np.ndarray
    working_set_mb: np.ndarray
    loads_pki: np.ndarray
    l1_miss_pki: np.ndarray
    ifetch_pki: np.ndarray
    branches_pki: np.ndarray
    branch_mispredict_rate: np.ndarray
    locality: np.ndarray
    disk_mb: np.ndarray
    disk_sequential_fraction: np.ndarray
    network_mbit: np.ndarray
    write_fraction: np.ndarray

    def __len__(self) -> int:
        return int(self.instructions.shape[0])

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[float, ...]]) -> "DemandMatrix":
        """Build from pre-packed rows (see :func:`pack_demand`)."""
        if rows:
            table = np.asarray(rows, dtype=float)
        else:
            table = np.empty((0, len(DEMAND_FIELDS)), dtype=float)
        return cls.from_table(table)

    @classmethod
    def from_table(cls, table: np.ndarray) -> "DemandMatrix":
        """Columnar view over an ``(n, len(DEMAND_FIELDS))`` row matrix.

        The zero-copy entry point for callers that already hold packed
        demand rows (the hosts' columnar demand layer); columns are
        slices of ``table``.
        """
        if table.ndim != 2 or table.shape[1] != len(DEMAND_FIELDS):
            raise ValueError(
                f"expected an (n, {len(DEMAND_FIELDS)}) demand table, "
                f"got shape {table.shape}"
            )
        return cls(**{name: table[:, j] for j, name in enumerate(DEMAND_FIELDS)})

    @classmethod
    def from_demands(cls, demands: Sequence[ResourceDemand]) -> "DemandMatrix":
        """Pack demand objects; callers validate demands beforehand."""
        return cls.from_rows([pack_demand(d) for d in demands])


@dataclass
class HostBatchPlan:
    """The placement-dependent layout of one host's VM rows.

    Produced by :meth:`~repro.hardware.machine.PhysicalMachine.batch_plan`
    and cached by the hypervisor between placement changes: it only
    depends on the VM name order, their vCPU counts and any explicit
    core pinning — not on the per-epoch demand values.
    """

    #: Number of VMs the plan covers (rows, in demand insertion order).
    n_vms: int
    #: Cores assigned to each VM (``len(cores)`` of the scalar path).
    n_cores: np.ndarray
    #: (VM, cache-domain) membership pairs: local VM row per pair.
    pair_vm: np.ndarray
    #: Local cache-domain id per pair.
    pair_domain: np.ndarray
    #: Share of the VM's accesses hitting the pair's domain.
    pair_weight: np.ndarray


@dataclass
class ClusterLayout:
    """Host-segmented layout of all VM rows of one batch epoch."""

    #: Host index of every VM row.
    host_of_vm: np.ndarray
    #: Cores assigned per VM row.
    n_cores: np.ndarray
    #: Global (VM, cache-domain) membership pairs.
    pair_vm: np.ndarray
    pair_domain: np.ndarray
    pair_weight: np.ndarray
    n_hosts: int
    n_domains: int

    @classmethod
    def assemble(
        cls, plans: Sequence[HostBatchPlan], cache_domains: int
    ) -> "ClusterLayout":
        """Concatenate per-host plans into one cluster-wide layout.

        ``plans[h]`` describes host ``h``; global cache-domain ids are
        ``h * cache_domains + local_domain`` so domains never alias
        across hosts.
        """
        host_ids: List[np.ndarray] = []
        n_cores: List[np.ndarray] = []
        pair_vm: List[np.ndarray] = []
        pair_domain: List[np.ndarray] = []
        pair_weight: List[np.ndarray] = []
        offset = 0
        for h, plan in enumerate(plans):
            host_ids.append(np.full(plan.n_vms, h, dtype=np.intp))
            n_cores.append(plan.n_cores)
            pair_vm.append(plan.pair_vm + offset)
            pair_domain.append(plan.pair_domain + h * cache_domains)
            pair_weight.append(plan.pair_weight)
            offset += plan.n_vms
        concat = lambda parts, dtype: (  # noqa: E731 - local helper
            np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
        )
        return cls(
            host_of_vm=concat(host_ids, np.intp),
            n_cores=concat(n_cores, float),
            pair_vm=concat(pair_vm, np.intp),
            pair_domain=concat(pair_domain, np.intp),
            pair_weight=concat(pair_weight, float),
            n_hosts=len(plans),
            n_domains=len(plans) * cache_domains,
        )


@dataclass
class BatchEpochResult:
    """Columnar result of one batch epoch over many hosts.

    ``counters`` rows follow :data:`~repro.metrics.counters.COUNTER_NAMES`
    column order — the same layout `MetricMatrix` consumes — so the
    monitoring pipeline can use them without materialising per-VM
    dictionaries.  :meth:`sample` materialises one row as a scalar-path
    :class:`CounterSample` for interop.
    """

    #: ``(n, N_COUNTERS)`` raw counter matrix (noise applied).
    counters: np.ndarray
    instructions_demanded: np.ndarray
    instructions_retired: np.ndarray
    instructions_attainable: np.ndarray
    progress: np.ndarray
    disk_mbps: np.ndarray
    network_mbps: np.ndarray
    cpi: np.ndarray
    #: Memory-interconnect utilisation per host.
    host_bus_utilization: np.ndarray
    epoch_seconds: float

    def __len__(self) -> int:
        return int(self.counters.shape[0])

    def sample(self, row: int) -> CounterSample:
        """Materialise one row as a :class:`CounterSample`."""
        return CounterSample(
            *self.counters[row].tolist(), epoch_seconds=self.epoch_seconds
        )

    def samples(
        self, start: int = 0, stop: Optional[int] = None
    ) -> List[CounterSample]:
        """Materialise rows ``[start, stop)`` as :class:`CounterSample`\\ s.

        One bulk ``tolist`` conversion instead of one per row — used by
        ground-truth tracking, which materialises per-VM outcomes
        anyway.  The monitoring pipeline no longer calls this: counter
        blocks feed :class:`~repro.metrics.store.HostCounterStore` rings
        directly and samples materialise lazily on access.
        """
        eps = self.epoch_seconds
        return [
            CounterSample(*row, epoch_seconds=eps)
            for row in self.counters[start:stop].tolist()
        ]


class BatchBuffers:
    """Reusable output buffers for :func:`simulate_epoch_batch`.

    Steady placements resolve the same VM-row count epoch after epoch;
    keeping one ``BatchBuffers`` per batch group lets the epoch write
    its counter matrix into a preallocated buffer instead of allocating
    (and copying via ``column_stack``) a fresh one every epoch.

    A result produced with buffers is valid until the **next** epoch
    that reuses them — callers must consume (or copy) the counter block
    within the epoch, which the counter-store ring ingest does.
    """

    def __init__(self) -> None:
        self._counters: Optional[np.ndarray] = None

    def counters(self, n: int) -> np.ndarray:
        """An ``(n, N_COUNTERS)`` float64 buffer (reallocated on resize)."""
        if self._counters is None or self._counters.shape[0] != n:
            self._counters = np.empty((n, N_COUNTERS), dtype=float)
        return self._counters


def simulate_epoch_batch(
    spec: MachineSpec,
    demands: DemandMatrix,
    layout: ClusterLayout,
    epoch_seconds: float,
    cpu_caps: np.ndarray,
    noise_rngs: Sequence[Tuple[float, np.random.Generator]],
    buffers: Optional[BatchBuffers] = None,
) -> BatchEpochResult:
    """Resolve one epoch of contention for all VMs on all hosts at once.

    Parameters
    ----------
    spec:
        The machine spec shared by every host in the batch (callers
        group heterogeneous clusters by spec).
    demands:
        Columnar per-VM demands, host-major (all of host 0's VMs first).
    layout:
        Host segmentation and cache-domain membership of the rows.
    epoch_seconds:
        Epoch length shared by the batch.
    cpu_caps:
        Per-VM CPU caps in (0, 1].
    noise_rngs:
        One ``(noise, generator)`` pair per host, in host index order;
        consumed exactly like the scalar substrate so counter streams
        stay aligned between substrates.
    buffers:
        Optional reusable output buffers (see :class:`BatchBuffers`);
        with them, steady-placement epochs write the counter matrix in
        place instead of allocating a fresh one, and the result is only
        valid until the next epoch that reuses the buffers.
    """
    if epoch_seconds <= 0:
        raise ValueError("epoch_seconds must be positive")
    n = len(demands)
    arch = spec.architecture
    if n == 0:
        empty = np.empty(0, dtype=float)
        return BatchEpochResult(
            counters=np.empty((0, N_COUNTERS), dtype=float),
            instructions_demanded=empty,
            instructions_retired=empty,
            instructions_attainable=empty,
            progress=empty,
            disk_mbps=empty,
            network_mbps=empty,
            cpi=empty,
            host_bus_utilization=np.zeros(layout.n_hosts, dtype=float),
            epoch_seconds=epoch_seconds,
        )

    host = layout.host_of_vm
    n_hosts = layout.n_hosts

    # ------------------------------------------------------------------
    # 1. Shared-cache contention over (VM, domain) membership pairs.
    # ------------------------------------------------------------------
    pv = layout.pair_vm
    scaled_inst = demands.instructions[pv] * layout.pair_weight
    cache_model = SharedCacheModel(arch)
    pair_acc, pair_misses, _occ, _ratio = cache_model.resolve_batch(
        instructions=scaled_inst,
        l1_miss_pki=demands.l1_miss_pki[pv],
        ifetch_pki=demands.ifetch_pki[pv],
        working_set_mb=demands.working_set_mb[pv],
        locality=demands.locality[pv],
        domain_ids=layout.pair_domain,
        n_domains=layout.n_domains,
    )
    llc_accesses = np.bincount(pv, weights=pair_acc, minlength=n)
    llc_misses = np.bincount(pv, weights=pair_misses, minlength=n)
    miss_ratio = llc_misses / np.maximum(llc_accesses, 1e-9)

    # ------------------------------------------------------------------
    # 2. Disk and NIC contention (DMA feeds the bus model below).
    # ------------------------------------------------------------------
    disk_t, disk_wait, disk_granted = DiskModel(spec.disk).resolve_batch(
        demands.disk_mb,
        demands.disk_sequential_fraction,
        host,
        n_hosts,
        epoch_seconds,
    )
    nic_t, nic_wait, nic_granted = NicModel(spec.nic).resolve_batch(
        demands.network_mbit, host, n_hosts, epoch_seconds
    )

    # ------------------------------------------------------------------
    # 3. Memory-interconnect contention.
    # ------------------------------------------------------------------
    miss_traffic = llc_misses * CACHE_LINE_BYTES / 1e6
    writeback_traffic = miss_traffic * demands.write_fraction
    dma_mb = disk_t + nic_t / 8.0
    bus = MemoryBusModel(arch).resolve_batch(
        miss_traffic, writeback_traffic, dma_mb, host, n_hosts, epoch_seconds
    )
    latency = bus.memory_latency_cycles[host]

    # ------------------------------------------------------------------
    # 4. Per-VM CPI composition and instruction retirement.
    # ------------------------------------------------------------------
    inst = demands.instructions
    active = inst > 0
    inst_safe = np.where(active, inst, 1.0)
    mlp = 1.0 + 6.0 * (1.0 - demands.locality)
    llc_hits = np.maximum(llc_accesses - llc_misses, 0.0)
    cache_cpi = llc_hits * arch.llc_hit_cycles / inst_safe
    memory_cpi = llc_misses * latency / (inst_safe * mlp)
    branch_cpi = (
        demands.branches_pki
        / 1000.0
        * demands.branch_mispredict_rate
        * arch.branch_miss_cycles
    )
    compute_cpi = arch.base_cpi + branch_cpi
    cpu_cpi = compute_cpi + cache_cpi + memory_cpi

    cap = np.minimum(np.maximum(cpu_caps, 0.0), 1.0)
    core_cycles = layout.n_cores * arch.frequency_hz * epoch_seconds * cap
    io_wait = np.minimum(
        0.95 * epoch_seconds,
        np.maximum(disk_wait, nic_wait) + 0.25 * np.minimum(disk_wait, nic_wait),
    )
    io_fraction = io_wait / epoch_seconds
    effective_cycles = core_cycles * np.maximum(0.05, 1.0 - io_fraction)

    attainable_cycles = effective_cycles / np.maximum(cpu_cpi, 1e-9)
    attainable_bandwidth = np.where(
        bus.bandwidth_share < 1.0, inst * bus.bandwidth_share, np.inf
    )
    attainable = np.minimum(attainable_cycles, attainable_bandwidth)
    retired = np.minimum(inst, attainable)
    progress = np.where(active, retired / inst_safe, 1.0)

    busy_cycles = retired * cpu_cpi
    stall_cycles = retired * (cache_cpi + memory_cpi)
    work_fraction = progress
    c_llc_misses = llc_misses * work_fraction
    l1_misses = retired * demands.l1_miss_pki / 1000.0
    ifetch = retired * demands.ifetch_pki / 1000.0
    loads = retired * demands.loads_pki / 1000.0
    branches_missed = (
        retired * demands.branches_pki / 1000.0 * demands.branch_mispredict_rate
    )
    bus_transactions = (
        (c_llc_misses * (1.0 + demands.write_fraction))
        + dma_mb * 1e6 / CACHE_LINE_BYTES
    )
    bus_ifetch = ifetch * miss_ratio
    bus_req_out = c_llc_misses * latency * 0.5
    disk_stall = disk_wait * arch.frequency_hz * layout.n_cores * work_fraction
    net_stall = nic_wait * arch.frequency_hz * layout.n_cores * work_fraction

    # Columns in COUNTER_NAMES order, written into the (possibly
    # reused) output buffer — same values ``column_stack`` produced.
    counters = (
        buffers.counters(n)
        if buffers is not None
        else np.empty((n, N_COUNTERS), dtype=float)
    )
    for j, column in enumerate(
        (
            busy_cycles,
            retired,
            l1_misses,
            ifetch,
            c_llc_misses,
            loads,
            stall_cycles,
            bus_transactions,
            bus_ifetch,
            c_llc_misses,  # bus_tran_brd == llc misses attributed to work
            bus_req_out,
            branches_missed,
            disk_stall,
            net_stall,
        )
    ):
        counters[:, j] = column
    counters[~active] = 0.0

    # ------------------------------------------------------------------
    # 5. Measurement noise, one generator per host (scalar-aligned).
    # Rows are host-major, so each host is one contiguous block.
    # ------------------------------------------------------------------
    bounds = np.searchsorted(host, np.arange(n_hosts + 1))
    for h, (noise, rng) in enumerate(noise_rngs):
        if noise <= 0:
            continue
        lo, hi = int(bounds[h]), int(bounds[h + 1])
        if lo == hi:
            continue
        rows = lo + np.nonzero(active[lo:hi])[0]
        if rows.size == 0:
            continue
        factors = 1.0 + rng.normal(0.0, noise, size=(rows.size, N_COUNTERS))
        counters[rows] = np.maximum(0.0, counters[rows] * factors)

    idle_capacity = (
        layout.n_cores * arch.frequency_hz * epoch_seconds / max(arch.base_cpi, 1e-9)
    )
    return BatchEpochResult(
        counters=counters,
        instructions_demanded=np.where(active, inst, 0.0),
        instructions_retired=counters[:, INST_RETIRED_COL],
        instructions_attainable=np.where(active, attainable, idle_capacity),
        progress=progress,
        disk_mbps=disk_granted,
        network_mbps=nic_granted,
        cpi=np.where(active, cpu_cpi, 0.0),
        host_bus_utilization=bus.utilization,
        epoch_seconds=epoch_seconds,
    )
