"""The physical-machine contention model.

:class:`PhysicalMachine` composes the per-resource models (shared cache,
memory interconnect, disk, NIC) into a single epoch-level simulation.
Given the resource demands of the VMs placed on the machine (and the
core assignment decided by the hypervisor), :meth:`PhysicalMachine.run_epoch`
returns, for each VM:

* the raw counter sample (Table 1) the PMU + iostat/netstat would read,
* the number of instructions actually retired (the ground-truth
  measure of progress the paper uses for its degradation definition),
* the achieved disk and network throughput.

The model is deliberately analytical rather than cycle-accurate: the
paper's pipeline consumes counter *vectors*, and what matters for the
reproduction is that contention perturbs the same counters in the same
direction and with a plausible magnitude, not that any individual value
matches a specific silicon part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.hardware.batch import (
    BatchEpochResult,
    ClusterLayout,
    DemandMatrix,
    HostBatchPlan,
    simulate_epoch_batch,
)
from repro.hardware.cache import CacheOutcome, SharedCacheModel
from repro.hardware.demand import ResourceDemand
from repro.hardware.disk import DiskModel, DiskOutcome
from repro.hardware.membus import CACHE_LINE_BYTES, BusOutcome, MemoryBusModel
from repro.hardware.network import NicModel, NicOutcome
from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample


@dataclass
class VMEpochOutcome:
    """Everything the substrate knows about one VM after one epoch."""

    counters: CounterSample
    #: Instructions actually retired (== counters.inst_retired).
    instructions_retired: float
    #: Instructions the workload wanted to retire.
    instructions_demanded: float
    #: Instructions the VM *could* have retired this epoch given its CPI
    #: and I/O waits (its capacity; >= retired when demand-limited).
    instructions_attainable: float
    #: Fraction of the demanded work completed this epoch.
    progress: float
    #: Achieved disk throughput in MB/s.
    disk_mbps: float
    #: Achieved network throughput in Mbps.
    network_mbps: float
    #: The contended CPI the VM experienced.
    cpi: float
    #: Cache, bus, disk and NIC sub-model outcomes (for diagnostics).
    cache: Optional[CacheOutcome] = None
    bus: Optional[BusOutcome] = None
    disk: Optional[DiskOutcome] = None
    nic: Optional[NicOutcome] = None


@dataclass
class EpochResult:
    """Result of one simulated epoch on one physical machine."""

    per_vm: Dict[str, VMEpochOutcome]
    epoch_seconds: float
    #: Memory-interconnect utilisation during the epoch.
    bus_utilization: float = 0.0

    def counters(self, vm_name: str) -> CounterSample:
        return self.per_vm[vm_name].counters

    def __contains__(self, vm_name: str) -> bool:
        return vm_name in self.per_vm


def outcome_from_batch(
    batch: BatchEpochResult, row: int, sample: Optional[CounterSample] = None
) -> VMEpochOutcome:
    """Materialise one batch-substrate row as a scalar :class:`VMEpochOutcome`.

    ``sample`` optionally reuses an already materialised counter sample
    (see :meth:`BatchEpochResult.samples`).  The per-resource sub-model
    outcomes (``cache``/``bus``/``disk``/``nic``) are diagnostics of the
    scalar substrate and stay ``None``.
    """
    return VMEpochOutcome(
        counters=sample if sample is not None else batch.sample(row),
        instructions_retired=float(batch.instructions_retired[row]),
        instructions_demanded=float(batch.instructions_demanded[row]),
        instructions_attainable=float(batch.instructions_attainable[row]),
        progress=float(batch.progress[row]),
        disk_mbps=float(batch.disk_mbps[row]),
        network_mbps=float(batch.network_mbps[row]),
        cpi=float(batch.cpi[row]),
    )


class PhysicalMachine:
    """Epoch-based contention model of one server.

    Parameters
    ----------
    spec:
        The machine description (architecture + DRAM + disks + NIC).
    name:
        Identifier used in logs and placement decisions.
    noise:
        Relative standard deviation of the multiplicative measurement
        noise applied to every counter (models PMU sampling noise and
        OS-level non-determinism; the paper treats such deviations as
        noise the warning system must tolerate).
    seed:
        Seed for the machine's private random generator; two machines
        constructed with the same seed and fed the same demands produce
        identical counter streams, which the tests rely on.
    """

    def __init__(
        self,
        spec: MachineSpec = XEON_X5472,
        name: str = "pm0",
        noise: float = 0.01,
        seed: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.name = name
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        arch = spec.architecture
        self._cache_models = [
            SharedCacheModel(arch) for _ in range(arch.cache_domains)
        ]
        self._bus_model = MemoryBusModel(arch)
        self._disk_model = DiskModel(spec.disk)
        self._nic_model = NicModel(spec.nic)

    # ------------------------------------------------------------------
    # Core assignment helpers
    # ------------------------------------------------------------------
    def default_core_assignment(
        self, demands: Mapping[str, ResourceDemand]
    ) -> Dict[str, List[int]]:
        """Pin each VM's vCPUs to dedicated cores, round-robin across domains.

        Mirrors the paper's testbed configuration: "we configure the VMs
        to run on virtual CPUs that are pinned to separate cores".  When
        there are more vCPUs than cores, cores are time-shared and the
        per-VM cycle budget shrinks accordingly.
        """
        return self.core_assignment_for_vcpus(
            {name: demand.vcpus for name, demand in demands.items()}
        )

    def core_assignment_for_vcpus(
        self, vcpus: Mapping[str, int]
    ) -> Dict[str, List[int]]:
        """:meth:`default_core_assignment` from per-VM vCPU counts alone.

        The assignment depends only on the VM names and vCPU counts, so
        callers that have not materialised demand objects (the columnar
        demand layer) can plan without them.
        """
        assignment: Dict[str, List[int]] = {}
        next_core = 0
        total_cores = self.spec.architecture.cores
        for name in sorted(vcpus):
            count = vcpus[name]
            cores = [(next_core + i) % total_cores for i in range(count)]
            assignment[name] = cores
            next_core = (next_core + count) % total_cores
        return assignment

    def _cache_domain_of_core(self, core: int) -> int:
        return core // self.spec.architecture.cores_per_cache_domain

    # ------------------------------------------------------------------
    # Batch substrate
    # ------------------------------------------------------------------
    def batch_plan(
        self,
        demands: Mapping[str, ResourceDemand],
        core_assignment: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> HostBatchPlan:
        """The batch substrate's layout for this machine's VM set.

        Depends only on the VM name order, vCPU counts and pinning — not
        on per-epoch demand values — so hypervisors cache it between
        placement changes.  Rows follow the iteration order of
        ``demands`` (the order the scalar substrate resolves VMs in).
        """
        return self.batch_plan_for_vcpus(
            {name: demand.vcpus for name, demand in demands.items()},
            core_assignment=core_assignment,
        )

    def batch_plan_for_vcpus(
        self,
        vcpus: Mapping[str, int],
        core_assignment: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> HostBatchPlan:
        """:meth:`batch_plan` from per-VM vCPU counts alone."""
        assignment = (
            {n: list(c) for n, c in core_assignment.items()}
            if core_assignment is not None
            else self.core_assignment_for_vcpus(vcpus)
        )
        n_cores: List[float] = []
        pair_vm: List[int] = []
        pair_domain: List[int] = []
        pair_weight: List[float] = []
        for i, name in enumerate(vcpus):
            cores = assignment.get(name)
            if not cores:
                raise ValueError(f"no cores assigned to VM {name!r}")
            n_cores.append(float(len(cores)))
            weights: Dict[int, float] = {}
            for core in cores:
                dom = self._cache_domain_of_core(core)
                weights[dom] = weights.get(dom, 0.0) + 1.0 / len(cores)
            for dom, w in weights.items():
                pair_vm.append(i)
                pair_domain.append(dom)
                pair_weight.append(w)
        return HostBatchPlan(
            n_vms=len(n_cores),
            n_cores=np.asarray(n_cores, dtype=float),
            pair_vm=np.asarray(pair_vm, dtype=np.intp),
            pair_domain=np.asarray(pair_domain, dtype=np.intp),
            pair_weight=np.asarray(pair_weight, dtype=float),
        )

    def run_epoch_batch(
        self,
        demands: Mapping[str, ResourceDemand],
        epoch_seconds: float = 1.0,
        core_assignment: Optional[Mapping[str, Sequence[int]]] = None,
        cpu_caps: Optional[Mapping[str, float]] = None,
    ) -> EpochResult:
        """:meth:`run_epoch` through the vectorized batch substrate.

        Produces the same :class:`EpochResult` (including the machine's
        noise-generator consumption) with array operations instead of the
        per-VM dance; the per-resource sub-model outcomes on each
        :class:`VMEpochOutcome` are not materialised (``None``).
        """
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        for demand in demands.values():
            demand.validate()
        if not demands:
            return EpochResult(per_vm={}, epoch_seconds=epoch_seconds)
        names = list(demands)
        plan = self.batch_plan(demands, core_assignment=core_assignment)
        layout = ClusterLayout.assemble(
            [plan], self.spec.architecture.cache_domains
        )
        caps = np.asarray(
            [(cpu_caps or {}).get(name, 1.0) for name in names], dtype=float
        )
        batch = simulate_epoch_batch(
            self.spec,
            DemandMatrix.from_demands([demands[name] for name in names]),
            layout,
            epoch_seconds,
            caps,
            noise_rngs=[(self.noise, self._rng)],
        )
        per_vm = {
            name: outcome_from_batch(batch, i) for i, name in enumerate(names)
        }
        return EpochResult(
            per_vm=per_vm,
            epoch_seconds=epoch_seconds,
            bus_utilization=float(batch.host_bus_utilization[0]),
        )

    # ------------------------------------------------------------------
    # Epoch simulation
    # ------------------------------------------------------------------
    def run_epoch(
        self,
        demands: Mapping[str, ResourceDemand],
        epoch_seconds: float = 1.0,
        core_assignment: Optional[Mapping[str, Sequence[int]]] = None,
        cpu_caps: Optional[Mapping[str, float]] = None,
    ) -> EpochResult:
        """Simulate one epoch of co-located execution.

        Parameters
        ----------
        demands:
            Per-VM resource demands for the epoch.
        epoch_seconds:
            Epoch length in seconds.
        core_assignment:
            Optional explicit vCPU-to-core pinning; defaults to
            :meth:`default_core_assignment`.
        cpu_caps:
            Optional per-VM CPU caps in (0, 1]; the sandbox uses
            non-work-conserving caps to control the allocation tightly.
        """
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        for name, demand in demands.items():
            demand.validate()
        if not demands:
            return EpochResult(per_vm={}, epoch_seconds=epoch_seconds)

        arch = self.spec.architecture
        assignment = (
            {n: list(c) for n, c in core_assignment.items()}
            if core_assignment is not None
            else self.default_core_assignment(demands)
        )
        for name in demands:
            if name not in assignment or not assignment[name]:
                raise ValueError(f"no cores assigned to VM {name!r}")

        # ------------------------------------------------------------------
        # 1. Shared-cache contention, per cache domain.
        # ------------------------------------------------------------------
        cache_outcomes: Dict[str, CacheOutcome] = {}
        domain_members: Dict[int, Dict[str, ResourceDemand]] = {}
        vm_domain_weight: Dict[str, Dict[int, float]] = {}
        for name, demand in demands.items():
            cores = assignment[name]
            weights: Dict[int, float] = {}
            for core in cores:
                dom = self._cache_domain_of_core(core)
                weights[dom] = weights.get(dom, 0.0) + 1.0 / len(cores)
            vm_domain_weight[name] = weights
            for dom, w in weights.items():
                # The share of the VM's accesses hitting this domain is w.
                scaled = demand.scaled(w)
                domain_members.setdefault(dom, {})[name] = scaled

        partial: Dict[str, List[CacheOutcome]] = {name: [] for name in demands}
        for dom, members in domain_members.items():
            model = self._cache_models[dom % len(self._cache_models)]
            for name, outcome in model.resolve(members).items():
                partial[name].append(outcome)
        for name, outcomes in partial.items():
            cache_outcomes[name] = CacheOutcome(
                llc_accesses=sum(o.llc_accesses for o in outcomes),
                llc_misses=sum(o.llc_misses for o in outcomes),
                occupancy_mb=sum(o.occupancy_mb for o in outcomes),
                miss_ratio=(
                    sum(o.llc_misses for o in outcomes)
                    / max(sum(o.llc_accesses for o in outcomes), 1e-9)
                ),
            )

        # ------------------------------------------------------------------
        # 2. Disk and NIC contention (needed before the bus, because I/O
        #    traffic also crosses the memory interconnect as DMA).
        # ------------------------------------------------------------------
        disk_outcomes = self._disk_model.resolve(demands, epoch_seconds)
        nic_outcomes = self._nic_model.resolve(demands, epoch_seconds)

        # ------------------------------------------------------------------
        # 3. Memory-interconnect contention.
        # ------------------------------------------------------------------
        miss_traffic = {
            name: cache_outcomes[name].llc_misses * CACHE_LINE_BYTES / 1e6
            for name in demands
        }
        writeback_traffic = {
            name: miss_traffic[name] * demands[name].write_fraction
            for name in demands
        }
        dma_traffic = {
            name: disk_outcomes[name].transferred_mb
            + nic_outcomes[name].transferred_mbit / 8.0
            for name in demands
        }
        bus_outcomes = self._bus_model.resolve(
            miss_traffic, writeback_traffic, dma_traffic, epoch_seconds
        )
        bus_utilization = (
            next(iter(bus_outcomes.values())).utilization if bus_outcomes else 0.0
        )

        # ------------------------------------------------------------------
        # 4. Per-VM CPI and instruction retirement.
        # ------------------------------------------------------------------
        per_vm: Dict[str, VMEpochOutcome] = {}
        for name, demand in demands.items():
            per_vm[name] = self._resolve_vm(
                name=name,
                demand=demand,
                cores=assignment[name],
                cache=cache_outcomes[name],
                bus=bus_outcomes[name],
                disk=disk_outcomes[name],
                nic=nic_outcomes[name],
                epoch_seconds=epoch_seconds,
                cpu_cap=(cpu_caps or {}).get(name, 1.0),
            )
        return EpochResult(
            per_vm=per_vm,
            epoch_seconds=epoch_seconds,
            bus_utilization=bus_utilization,
        )

    # ------------------------------------------------------------------
    def _resolve_vm(
        self,
        name: str,
        demand: ResourceDemand,
        cores: Sequence[int],
        cache: CacheOutcome,
        bus: BusOutcome,
        disk: DiskOutcome,
        nic: NicOutcome,
        epoch_seconds: float,
        cpu_cap: float,
    ) -> VMEpochOutcome:
        arch = self.spec.architecture
        inst_demand = demand.instructions
        if inst_demand <= 0:
            sample = CounterSample.zeros(epoch_seconds=epoch_seconds)
            idle_capacity = (
                len(cores)
                * arch.frequency_hz
                * epoch_seconds
                / max(arch.base_cpi, 1e-9)
            )
            return VMEpochOutcome(
                counters=sample,
                instructions_retired=0.0,
                instructions_demanded=0.0,
                instructions_attainable=idle_capacity,
                progress=1.0,
                disk_mbps=disk.granted_mbps,
                network_mbps=nic.granted_mbps,
                cpi=0.0,
                cache=cache,
                bus=bus,
                disk=disk,
                nic=nic,
            )

        # --- CPI composition -------------------------------------------------
        # Memory-level parallelism: streaming (low-locality) access
        # patterns overlap many outstanding misses (hardware prefetching,
        # independent loads), so the per-miss stall is a fraction of the
        # raw latency; pointer-chasing / high-reuse patterns expose it
        # fully.  This is what makes a memory stressor bandwidth-bound
        # rather than latency-bound, as on real machines.
        mlp = 1.0 + 6.0 * (1.0 - demand.locality)
        llc_hits = max(cache.llc_accesses - cache.llc_misses, 0.0)
        cache_cpi = llc_hits * arch.llc_hit_cycles / inst_demand
        memory_cpi = (
            cache.llc_misses * bus.memory_latency_cycles / (inst_demand * mlp)
        )
        branch_cpi = (
            demand.branches_pki
            / 1000.0
            * demand.branch_mispredict_rate
            * arch.branch_miss_cycles
        )
        compute_cpi = arch.base_cpi + branch_cpi
        cpu_cpi = compute_cpi + cache_cpi + memory_cpi

        # --- Cycle budget -----------------------------------------------------
        cap = min(max(cpu_cap, 0.0), 1.0)
        core_cycles = len(cores) * arch.frequency_hz * epoch_seconds * cap

        # I/O wait removes wall-clock time from the epoch during which
        # the vCPUs sit idle with outstanding requests.  Waits on disk
        # and network can overlap each other only partially; we take the
        # max plus a fraction of the min.  The wait never consumes the
        # whole epoch: even a badly I/O-starved service keeps making some
        # progress on cached / independent work.
        io_wait = min(
            0.95 * epoch_seconds,
            max(disk.wait_seconds, nic.wait_seconds)
            + 0.25 * min(disk.wait_seconds, nic.wait_seconds),
        )
        io_fraction = io_wait / epoch_seconds
        effective_cycles = core_cycles * max(0.05, 1.0 - io_fraction)

        # --- Instruction retirement -------------------------------------------
        # Two limits apply: the cycle budget at the contended CPI, and the
        # VM's fair share of the memory-interconnect bandwidth (a VM whose
        # memory traffic exceeds its share cannot retire instructions
        # faster than the interconnect feeds it).
        attainable_cycles = effective_cycles / max(cpu_cpi, 1e-9)
        share = bus.bandwidth_share
        if share < 1.0:
            # The interconnect cannot carry all of the VM's memory traffic;
            # instruction retirement is capped at the same fraction.
            attainable_bandwidth = inst_demand * share
        else:
            attainable_bandwidth = float("inf")
        attainable = min(attainable_cycles, attainable_bandwidth)
        retired = min(inst_demand, attainable)
        progress = retired / inst_demand

        # Cycles actually consumed while retiring instructions.
        busy_cycles = retired * cpu_cpi
        stall_cycles = retired * (cache_cpi + memory_cpi)

        # Counter events scale with the retired work, not the demand.
        work_fraction = progress
        llc_accesses = cache.llc_accesses * work_fraction
        llc_misses = cache.llc_misses * work_fraction
        l1_misses = retired * demand.l1_miss_pki / 1000.0
        ifetch = retired * demand.ifetch_pki / 1000.0
        loads = retired * demand.loads_pki / 1000.0
        branches_missed = (
            retired * demand.branches_pki / 1000.0 * demand.branch_mispredict_rate
        )
        dma_mb = disk.transferred_mb + nic.transferred_mbit / 8.0
        bus_transactions = (
            (llc_misses * (1.0 + demand.write_fraction))
            + dma_mb * 1e6 / CACHE_LINE_BYTES
        )
        bus_brd = llc_misses
        bus_ifetch = ifetch * cache.miss_ratio
        # Outstanding-request duration grows with the contended latency.
        bus_req_out = llc_misses * bus.memory_latency_cycles * 0.5

        # I/O stall cycles expressed at core frequency over the assigned
        # cores.  Scaled by the achieved work fraction like every other
        # event counter: the application issues I/O for the requests it
        # actually completes, so when progress is limited by a non-I/O
        # resource the per-instruction I/O stall stays representative
        # instead of inflating.
        disk_stall_cycles = (
            disk.wait_seconds * arch.frequency_hz * len(cores) * work_fraction
        )
        net_stall_cycles = (
            nic.wait_seconds * arch.frequency_hz * len(cores) * work_fraction
        )

        sample = CounterSample(
            cpu_unhalted=busy_cycles,
            inst_retired=retired,
            l1d_repl=l1_misses,
            l2_ifetch=ifetch,
            l2_lines_in=llc_misses,
            mem_load=loads,
            resource_stalls=stall_cycles,
            bus_tran_any=bus_transactions,
            bus_trans_ifetch=bus_ifetch,
            bus_tran_brd=bus_brd,
            bus_req_out=bus_req_out,
            br_miss_pred=branches_missed,
            disk_stall_cycles=disk_stall_cycles,
            net_stall_cycles=net_stall_cycles,
            epoch_seconds=epoch_seconds,
        )
        sample = self._apply_noise(sample)

        return VMEpochOutcome(
            counters=sample,
            instructions_retired=sample.inst_retired,
            instructions_demanded=inst_demand,
            instructions_attainable=attainable,
            progress=progress,
            disk_mbps=disk.granted_mbps,
            network_mbps=nic.granted_mbps,
            cpi=cpu_cpi,
            cache=cache,
            bus=bus,
            disk=disk,
            nic=nic,
        )

    def _apply_noise(self, sample: CounterSample) -> CounterSample:
        """Multiplicative lognormal-ish noise on every counter."""
        if self.noise <= 0:
            return sample
        values = {}
        for name, value in sample.as_dict().items():
            factor = 1.0 + self._rng.normal(0.0, self.noise)
            values[name] = max(0.0, value * factor)
        return CounterSample.from_mapping(values, epoch_seconds=sample.epoch_seconds)

    # ------------------------------------------------------------------
    def run_in_isolation(
        self,
        demand: ResourceDemand,
        epoch_seconds: float = 1.0,
        cpu_cap: float = 1.0,
    ) -> VMEpochOutcome:
        """Run a single demand alone on this machine (sandbox semantics)."""
        result = self.run_epoch(
            {"_solo": demand},
            epoch_seconds=epoch_seconds,
            cpu_caps={"_solo": cpu_cap},
        )
        return result.per_vm["_solo"]

    def reseed(self, seed: int) -> None:
        """Reset the measurement-noise generator (used by tests)."""
        self._rng = np.random.default_rng(seed)
