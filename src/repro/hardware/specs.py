"""Architecture and machine specifications.

Two presets mirror the paper's hardware:

* :data:`XEON_X5472` — the main testbed: dual quad-core Xeon X5472
  (8 cores at 3 GHz), 12 MB of L2 shared per pair of cores, a front-side
  bus to memory, 8 GB DRAM, two 250 GB 7200 rpm disks, one 1 Gb NIC.
* :data:`CORE_I7_E5640` — the NUMA port from Section 4.4: two quad-core
  Xeon E5640 (Core-i7 microarchitecture) at 2.67 GHz, 1 MB L2 per core,
  a 12 MB shared L3, integrated memory controllers and QPI.

The spec numbers feed both the contention model and the CPI-stack model,
so the same description drives the "hardware" and its "performance
model" — exactly the coupling the paper exploits when porting DeepDive
to a new server type.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class DiskSpec:
    """A single spindle (or a RAID set treated as one device)."""

    count: int = 2
    sequential_mbps: float = 100.0
    #: Fraction of the sequential bandwidth retained under fully random
    #: access (a 7200 rpm disk sustains only a few MB/s of random I/O).
    random_efficiency: float = 0.06
    #: Average seek+rotate latency in milliseconds for a random request.
    seek_ms: float = 8.0


@dataclass(frozen=True)
class NicSpec:
    """Network interface."""

    count: int = 1
    bandwidth_mbps: float = 1000.0
    duplex: bool = True


@dataclass(frozen=True)
class ArchitectureSpec:
    """CPU / memory-hierarchy description of a server architecture."""

    name: str
    cores: int
    frequency_hz: float
    #: Number of cores sharing one last-level-cache domain.
    cores_per_cache_domain: int
    #: Size of one shared last-level-cache domain in MB.
    shared_cache_mb: float
    #: Private cache size per core in KB (L1 on the Xeon, L1+L2 on the i7).
    private_cache_kb: float
    #: Cycles to access the shared cache on a private-cache miss.
    llc_hit_cycles: float
    #: Cycles to access DRAM on a shared-cache miss (uncontended).
    memory_cycles: float
    #: Aggregate memory-interconnect bandwidth in MB/s (FSB or QPI+IMC).
    memory_bandwidth_mbps: float
    #: Whether the interconnect is a shared front-side bus (True) or
    #: point-to-point QPI with per-socket memory controllers (False).
    front_side_bus: bool
    #: Number of NUMA sockets (1 for the UMA Xeon X5472 board model).
    sockets: int = 1
    #: Base (no-stall) cycles per instruction of the core pipeline.
    base_cpi: float = 0.75
    #: Branch misprediction penalty in cycles.
    branch_miss_cycles: float = 15.0

    @property
    def cache_domains(self) -> int:
        """Number of independent shared-cache domains on the machine."""
        return max(1, self.cores // self.cores_per_cache_domain)

    @property
    def cycles_per_epoch(self) -> float:
        """Cycles one core executes in one second."""
        return self.frequency_hz


@dataclass(frozen=True)
class MachineSpec:
    """Full physical-machine description: CPU architecture + memory + I/O."""

    architecture: ArchitectureSpec
    dram_gb: float = 8.0
    disk: DiskSpec = field(default_factory=DiskSpec)
    nic: NicSpec = field(default_factory=NicSpec)

    @property
    def name(self) -> str:
        return self.architecture.name

    def with_nic_bandwidth(self, mbps: float) -> "MachineSpec":
        """Return a copy with a different NIC bandwidth (for oversubscription studies)."""
        return replace(self, nic=replace(self.nic, bandwidth_mbps=mbps))


#: The paper's main testbed servers (Section 5.1).
XEON_X5472 = MachineSpec(
    architecture=ArchitectureSpec(
        name="xeon_x5472",
        cores=8,
        frequency_hz=3.0e9,
        cores_per_cache_domain=2,
        shared_cache_mb=12.0,
        private_cache_kb=32.0,
        llc_hit_cycles=14.0,
        memory_cycles=250.0,
        memory_bandwidth_mbps=6400.0,
        front_side_bus=True,
        sockets=2,
        base_cpi=0.75,
        branch_miss_cycles=15.0,
    ),
    dram_gb=8.0,
    disk=DiskSpec(count=2, sequential_mbps=100.0, random_efficiency=0.06, seek_ms=8.0),
    nic=NicSpec(count=1, bandwidth_mbps=1000.0),
)

#: The Core-i7 (Xeon E5640) NUMA server DeepDive was ported to (Section 4.4).
CORE_I7_E5640 = MachineSpec(
    architecture=ArchitectureSpec(
        name="core_i7",
        cores=8,
        frequency_hz=2.67e9,
        cores_per_cache_domain=4,
        shared_cache_mb=12.0,
        private_cache_kb=1024.0,
        llc_hit_cycles=38.0,
        memory_cycles=180.0,
        memory_bandwidth_mbps=25600.0,
        front_side_bus=False,
        sockets=2,
        base_cpi=0.65,
        branch_miss_cycles=17.0,
    ),
    dram_gb=48.0,
    disk=DiskSpec(count=2, sequential_mbps=120.0, random_efficiency=0.08, seek_ms=7.0),
    nic=NicSpec(count=1, bandwidth_mbps=1000.0),
)


_MACHINE_SPECS: Dict[str, MachineSpec] = {
    "xeon_x5472": XEON_X5472,
    "core_i7": CORE_I7_E5640,
}


def get_machine_spec(name: str) -> MachineSpec:
    """Look up a machine spec by architecture name."""
    try:
        return _MACHINE_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine spec {name!r}; known: {sorted(_MACHINE_SPECS)}"
        ) from None


def available_machine_specs() -> Tuple[str, ...]:
    """Names of all built-in machine specs."""
    return tuple(sorted(_MACHINE_SPECS))
