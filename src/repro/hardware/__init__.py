"""Physical-machine contention substrate.

The paper's testbed is a cluster of Xen hosts on Intel Xeon X5472
servers; DeepDive itself only ever sees the low-level counters those
hosts produce.  This package provides the substitute substrate: an
epoch-based contention model of a physical machine (cores, shared
caches, memory interconnect, disks, NIC) that converts the resource
*demands* of co-located VMs into the per-VM counter samples and
client-visible performance that the real testbed would produce.
"""

from repro.hardware.specs import (
    ArchitectureSpec,
    DiskSpec,
    MachineSpec,
    NicSpec,
    XEON_X5472,
    CORE_I7_E5640,
    get_machine_spec,
)
from repro.hardware.demand import ResourceDemand
from repro.hardware.cache import SharedCacheModel, CacheOutcome
from repro.hardware.membus import MemoryBusModel, BusOutcome
from repro.hardware.disk import DiskModel, DiskOutcome
from repro.hardware.network import NicModel, NicOutcome
from repro.hardware.machine import (
    PhysicalMachine,
    EpochResult,
    VMEpochOutcome,
    outcome_from_batch,
)
from repro.hardware.batch import (
    BatchEpochResult,
    ClusterLayout,
    DemandMatrix,
    HostBatchPlan,
    simulate_epoch_batch,
)

__all__ = [
    "ArchitectureSpec",
    "DiskSpec",
    "MachineSpec",
    "NicSpec",
    "XEON_X5472",
    "CORE_I7_E5640",
    "get_machine_spec",
    "ResourceDemand",
    "SharedCacheModel",
    "CacheOutcome",
    "MemoryBusModel",
    "BusOutcome",
    "DiskModel",
    "DiskOutcome",
    "NicModel",
    "NicOutcome",
    "PhysicalMachine",
    "EpochResult",
    "VMEpochOutcome",
    "outcome_from_batch",
    "BatchEpochResult",
    "ClusterLayout",
    "DemandMatrix",
    "HostBatchPlan",
    "simulate_epoch_batch",
]
