"""Shared-disk contention model.

Two VMs each performing sequential I/O in isolation can produce a
near-random access pattern when their streams interleave on a shared
spindle — one of the motivating examples in the paper's introduction.
The model captures that by degrading the effective sequentiality (and
hence the effective bandwidth) of every stream as the number of active
streams grows, then shares the resulting bandwidth proportionally to
demand.  The unmet portion of a VM's demand turns into disk-wait time,
which the hypervisor reports as ``disk_stall_cycles`` (the iostat-style
metric from Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.hardware.demand import ResourceDemand
from repro.hardware.specs import DiskSpec


@dataclass
class DiskOutcome:
    """Result of the disk model for one VM in one epoch."""

    #: MB the VM actually transferred this epoch.
    transferred_mb: float
    #: MB the VM wanted to transfer this epoch.
    demanded_mb: float
    #: Seconds the VM spent waiting on outstanding disk requests.
    wait_seconds: float
    #: Effective bandwidth granted to the VM in MB/s.
    granted_mbps: float

    @property
    def satisfaction(self) -> float:
        """Fraction of the demand that was served (1.0 when idle)."""
        if self.demanded_mb <= 0:
            return 1.0
        return self.transferred_mb / self.demanded_mb


class DiskModel:
    """Throughput-sharing model of the machine's disk subsystem."""

    def __init__(self, spec: DiskSpec) -> None:
        self._spec = spec

    def aggregate_bandwidth_mbps(self, effective_sequential: float) -> float:
        """Aggregate bandwidth at a given effective sequentiality in [0, 1]."""
        seq = min(max(effective_sequential, 0.0), 1.0)
        per_disk = self._spec.sequential_mbps * (
            self._spec.random_efficiency + seq * (1.0 - self._spec.random_efficiency)
        )
        return per_disk * self._spec.count

    def resolve(
        self, demands: Mapping[str, ResourceDemand], epoch_seconds: float
    ) -> Dict[str, DiskOutcome]:
        """Resolve disk contention among the co-located demands."""
        active = {n: d for n, d in demands.items() if d.disk_mb > 0}
        outcomes: Dict[str, DiskOutcome] = {
            n: DiskOutcome(0.0, 0.0, 0.0, 0.0)
            for n in demands
            if n not in active
        }
        if not active:
            return outcomes

        # Interleaving penalty: with k active streams, each stream's
        # effective sequentiality is reduced because the head must move
        # between streams.  A single stream keeps its intrinsic pattern.
        k = len(active)
        interleave = 1.0 / (1.0 + 0.6 * (k - 1))
        total_demand = sum(d.disk_mb for d in active.values())
        weighted_seq = sum(
            d.disk_mb * d.disk_sequential_fraction for d in active.values()
        ) / max(total_demand, 1e-9)
        effective_seq = weighted_seq * interleave

        aggregate_mbps = self.aggregate_bandwidth_mbps(effective_seq)
        capacity_mb = aggregate_mbps * epoch_seconds
        utilization = min(0.95, total_demand / max(capacity_mb, 1e-9))
        for name, d in active.items():
            if total_demand <= capacity_mb:
                contended_share = d.disk_mb
            else:
                contended_share = d.disk_mb * capacity_mb / total_demand
            # Contention never serves a stream better than it would be
            # served alone (a random stream does not inherit a sequential
            # neighbour's efficiency), and never makes it wait less.
            solo_rate = self.aggregate_bandwidth_mbps(d.disk_sequential_fraction)
            solo_transferred, solo_wait = self._serve(
                d.disk_mb,
                solo_rate,
                d.disk_mb / max(solo_rate * epoch_seconds, 1e-9),
                epoch_seconds,
            )
            contended_transferred, contended_wait = self._serve(
                min(contended_share, solo_transferred),
                min(aggregate_mbps, solo_rate),
                utilization,
                epoch_seconds,
                demanded_mb=d.disk_mb,
            )
            transferred = min(solo_transferred, contended_transferred)
            wait = min(epoch_seconds, max(solo_wait, contended_wait))
            outcomes[name] = DiskOutcome(
                transferred_mb=transferred,
                demanded_mb=d.disk_mb,
                wait_seconds=wait,
                granted_mbps=transferred / max(epoch_seconds, 1e-9),
            )
        return outcomes

    def resolve_batch(
        self,
        disk_mb: np.ndarray,
        sequential_fraction: np.ndarray,
        host_ids: np.ndarray,
        n_hosts: int,
        epoch_seconds: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`resolve` over many disk subsystems at once.

        Rows are VMs; ``host_ids`` segments them into independent disk
        subsystems.  Returns ``(transferred_mb, wait_seconds,
        granted_mbps)`` arrays mirroring :class:`DiskOutcome`, replaying
        the scalar arithmetic element-wise.
        """
        active = disk_mb > 0
        active_f = active.astype(float)
        k = np.bincount(host_ids, weights=active_f, minlength=n_hosts)
        interleave = 1.0 / (1.0 + 0.6 * (k - 1.0))
        total_demand = np.bincount(
            host_ids, weights=np.where(active, disk_mb, 0.0), minlength=n_hosts
        )
        weighted_seq = np.bincount(
            host_ids,
            weights=np.where(active, disk_mb * sequential_fraction, 0.0),
            minlength=n_hosts,
        ) / np.maximum(total_demand, 1e-9)
        effective_seq = weighted_seq * interleave
        aggregate_mbps = self._aggregate_bandwidth_batch(effective_seq)
        capacity_mb = aggregate_mbps * epoch_seconds
        utilization = np.minimum(0.95, total_demand / np.maximum(capacity_mb, 1e-9))

        contended_share = np.where(
            total_demand[host_ids] <= capacity_mb[host_ids],
            disk_mb,
            disk_mb * capacity_mb[host_ids] / np.maximum(total_demand[host_ids], 1e-30),
        )
        solo_rate = self._aggregate_bandwidth_batch(sequential_fraction)
        solo_transferred, solo_wait = self._serve_batch(
            disk_mb,
            solo_rate,
            disk_mb / np.maximum(solo_rate * epoch_seconds, 1e-9),
            epoch_seconds,
            demanded_mb=disk_mb,
        )
        contended_transferred, contended_wait = self._serve_batch(
            np.minimum(contended_share, solo_transferred),
            np.minimum(aggregate_mbps[host_ids], solo_rate),
            utilization[host_ids],
            epoch_seconds,
            demanded_mb=disk_mb,
        )
        transferred = np.minimum(solo_transferred, contended_transferred)
        wait = np.minimum(epoch_seconds, np.maximum(solo_wait, contended_wait))
        granted = transferred / max(epoch_seconds, 1e-9)
        return (
            np.where(active, transferred, 0.0),
            np.where(active, wait, 0.0),
            np.where(active, granted, 0.0),
        )

    def _aggregate_bandwidth_batch(
        self, effective_sequential: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`aggregate_bandwidth_mbps`."""
        seq = np.minimum(np.maximum(effective_sequential, 0.0), 1.0)
        per_disk = self._spec.sequential_mbps * (
            self._spec.random_efficiency + seq * (1.0 - self._spec.random_efficiency)
        )
        return per_disk * self._spec.count

    def _serve_batch(
        self,
        transfer_mb: np.ndarray,
        rate_mbps: np.ndarray,
        utilization: np.ndarray,
        epoch_seconds: float,
        demanded_mb: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_serve` (same formulas, array operands)."""
        capacity_mb = rate_mbps * epoch_seconds
        transferred = np.minimum(transfer_mb, capacity_mb)
        queue_factor = 1.0 / (
            1.0 - np.minimum(0.95, np.maximum(0.0, utilization))
        )
        busy_seconds = transferred / np.maximum(rate_mbps, 1e-9)
        unmet_fraction = 1.0 - transferred / np.maximum(demanded_mb, 1e-9)
        backlog_seconds = epoch_seconds * np.maximum(0.0, unmet_fraction)
        wait = np.minimum(epoch_seconds, busy_seconds * queue_factor + backlog_seconds)
        return transferred, wait

    def _serve(
        self,
        transfer_mb: float,
        rate_mbps: float,
        utilization: float,
        epoch_seconds: float,
        demanded_mb: float = None,
    ) -> tuple:
        """Transferred MB and wait seconds for one stream at one service rate.

        The wait is the device-busy time for the stream's data inflated by
        an M/M/1-style queueing factor at the given utilisation, plus
        blocked time proportional to the unserved fraction of the demand.
        """
        demanded = demanded_mb if demanded_mb is not None else transfer_mb
        capacity_mb = rate_mbps * epoch_seconds
        transferred = min(transfer_mb, capacity_mb)
        queue_factor = 1.0 / (1.0 - min(0.95, max(0.0, utilization)))
        busy_seconds = transferred / max(rate_mbps, 1e-9)
        unmet_fraction = 1.0 - transferred / max(demanded, 1e-9)
        backlog_seconds = epoch_seconds * max(0.0, unmet_fraction)
        wait = min(epoch_seconds, busy_seconds * queue_factor + backlog_seconds)
        return transferred, wait

    def isolation_outcome(
        self, demand: ResourceDemand, epoch_seconds: float
    ) -> DiskOutcome:
        """Outcome when the VM is alone on the disk subsystem."""
        return self.resolve({"_solo": demand}, epoch_seconds)["_solo"]
