"""Memory-interconnect (front-side bus / QPI) contention model.

Every shared-cache miss travels over the memory interconnect.  On the
Xeon X5472 that interconnect is a single front-side bus shared by all
cores and by DMA traffic from the disk and NIC; on the Core-i7 port it
is QPI plus per-socket integrated memory controllers with much higher
aggregate bandwidth.  The model computes, per epoch:

* each VM's memory traffic (cache-miss refills plus write-backs plus a
  DMA share of its I/O traffic),
* the interconnect utilisation, and
* a latency-inflation factor based on an M/M/1-like queueing curve —
  the uncontended DRAM access cost grows as utilisation approaches 1,
  which is how front-side-bus interference (the paper's Scenario B)
  manifests as extra off-core stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.hardware.specs import ArchitectureSpec

#: Bytes per cache line; both modelled architectures use 64-byte lines.
CACHE_LINE_BYTES = 64.0


@dataclass
class BusOutcome:
    """Result of the memory-interconnect model for one VM in one epoch."""

    #: MB the VM wanted to move over the interconnect this epoch.
    traffic_mb: float
    #: MB the interconnect could actually carry for this VM this epoch
    #: (its fair bandwidth share when the interconnect is oversubscribed).
    granted_mb: float
    #: Effective (contended) memory-access latency in cycles.
    memory_latency_cycles: float
    #: Interconnect utilisation seen by the VM (shared across VMs).
    utilization: float
    #: Number of bus transactions attributed to the VM.
    transactions: float

    @property
    def bandwidth_share(self) -> float:
        """Fraction of the VM's demanded traffic the interconnect can carry."""
        if self.traffic_mb <= 0:
            return 1.0
        return min(1.0, self.granted_mb / self.traffic_mb)


@dataclass
class BusBatchOutcome:
    """Columnar result of :meth:`MemoryBusModel.resolve_batch`.

    Per-VM arrays (``traffic_mb``, ``granted_mb``, ``bandwidth_share``)
    are indexed by row; per-host arrays (``memory_latency_cycles``,
    ``utilization``) are indexed by host id.
    """

    traffic_mb: np.ndarray
    granted_mb: np.ndarray
    bandwidth_share: np.ndarray
    memory_latency_cycles: np.ndarray
    utilization: np.ndarray


class MemoryBusModel:
    """Bandwidth/latency model of the shared memory interconnect."""

    #: Utilisation beyond which the queueing curve is clamped.  Saturation
    #: beyond this point is handled by the bandwidth-share cap (a VM simply
    #: cannot move more bytes than its share), so the latency inflation
    #: stays moderate and finite.
    MAX_UTILIZATION = 0.90

    def __init__(self, spec: ArchitectureSpec) -> None:
        self._spec = spec

    def resolve(
        self,
        miss_traffic_mb: Mapping[str, float],
        writeback_traffic_mb: Mapping[str, float],
        dma_traffic_mb: Mapping[str, float],
        epoch_seconds: float,
    ) -> Dict[str, BusOutcome]:
        """Resolve interconnect contention for one epoch.

        Parameters
        ----------
        miss_traffic_mb:
            Per-VM shared-cache refill traffic (MB).
        writeback_traffic_mb:
            Per-VM dirty-line write-back traffic (MB).
        dma_traffic_mb:
            Per-VM I/O DMA traffic crossing the interconnect (MB).
        epoch_seconds:
            Epoch length, to convert traffic into bandwidth.
        """
        names = set(miss_traffic_mb) | set(writeback_traffic_mb) | set(dma_traffic_mb)
        per_vm_mb: Dict[str, float] = {}
        for name in names:
            per_vm_mb[name] = (
                miss_traffic_mb.get(name, 0.0)
                + writeback_traffic_mb.get(name, 0.0)
                + dma_traffic_mb.get(name, 0.0)
            )
        total_mb = sum(per_vm_mb.values())
        capacity_mb = self._spec.memory_bandwidth_mbps * max(epoch_seconds, 1e-9)
        utilization = min(self.MAX_UTILIZATION, total_mb / max(capacity_mb, 1e-9))

        latency = self.contended_latency(utilization)
        # Fair proportional bandwidth sharing once the interconnect is
        # oversubscribed: each VM can move at most its demand scaled by
        # capacity / total demand.
        scale = 1.0
        if total_mb > capacity_mb and total_mb > 0:
            scale = capacity_mb / total_mb
        outcomes: Dict[str, BusOutcome] = {}
        for name in names:
            mb = per_vm_mb[name]
            granted = mb * scale
            transactions = granted * 1e6 / CACHE_LINE_BYTES
            outcomes[name] = BusOutcome(
                traffic_mb=mb,
                granted_mb=granted,
                memory_latency_cycles=latency,
                utilization=utilization,
                transactions=transactions,
            )
        return outcomes

    def resolve_batch(
        self,
        miss_traffic_mb: np.ndarray,
        writeback_traffic_mb: np.ndarray,
        dma_traffic_mb: np.ndarray,
        host_ids: np.ndarray,
        n_hosts: int,
        epoch_seconds: float,
    ) -> "BusBatchOutcome":
        """Vectorized :meth:`resolve` over many interconnects at once.

        Rows are VMs; ``host_ids`` segments them into independent
        interconnects (one per host).  Mirrors the scalar arithmetic
        element-wise; per-host traffic totals accumulate in row order.
        """
        per_vm_mb = miss_traffic_mb + writeback_traffic_mb + dma_traffic_mb
        total_mb = np.bincount(host_ids, weights=per_vm_mb, minlength=n_hosts)
        capacity_mb = self._spec.memory_bandwidth_mbps * max(epoch_seconds, 1e-9)
        utilization = np.minimum(
            self.MAX_UTILIZATION, total_mb / max(capacity_mb, 1e-9)
        )
        inflation_sensitivity = 0.5 if self._spec.front_side_bus else 0.25
        latency = self._spec.memory_cycles * (
            1.0 + inflation_sensitivity * (utilization / (1.0 - utilization))
        )
        scale = np.where(
            total_mb > capacity_mb,
            capacity_mb / np.where(total_mb > 0, total_mb, 1.0),
            1.0,
        )
        granted_mb = per_vm_mb * scale[host_ids]
        bandwidth_share = np.where(
            per_vm_mb > 0,
            np.minimum(1.0, granted_mb / np.where(per_vm_mb > 0, per_vm_mb, 1.0)),
            1.0,
        )
        return BusBatchOutcome(
            traffic_mb=per_vm_mb,
            granted_mb=granted_mb,
            bandwidth_share=bandwidth_share,
            memory_latency_cycles=latency,
            utilization=utilization,
        )

    def contended_latency(self, utilization: float) -> float:
        """Memory-access latency (cycles) at a given interconnect utilisation.

        Uses the classic ``1 / (1 - rho)`` waiting-time inflation, scaled
        so that a bus-based design (FSB) degrades faster than a
        point-to-point design (QPI), matching the qualitative difference
        the paper observed between the two platforms.
        """
        u = min(max(utilization, 0.0), self.MAX_UTILIZATION)
        sensitivity = 0.5 if self._spec.front_side_bus else 0.25
        inflation = 1.0 + sensitivity * (u / (1.0 - u))
        return self._spec.memory_cycles * inflation

    def bandwidth_share_mb(
        self, demand_mb: float, total_demand_mb: float, epoch_seconds: float
    ) -> float:
        """Fair-share allocation when total demand exceeds the capacity."""
        capacity_mb = self._spec.memory_bandwidth_mbps * max(epoch_seconds, 1e-9)
        if total_demand_mb <= capacity_mb or total_demand_mb <= 0:
            return demand_mb
        return demand_mb * capacity_mb / total_demand_mb
