"""The tunable synthetic benchmark (Section 4.3).

The placement manager never migrates a VM speculatively.  Instead it
runs, on each candidate destination PM, a synthetic benchmark whose
input parameters have been chosen so the benchmark "mimics" the
low-level behaviour of the VM in question, and measures the resulting
interference.  The benchmark is described in the paper as a collection
of loops exercising the different PM resources (working-set size, data
locality, instruction mix, parallelism, disk and network throughput),
whose per-resource iteration counts are *learned* — via a standard
regression algorithm, once per server type — from the metric vectors
the loops produce.

:class:`SyntheticInputs` is the benchmark's input-parameter vector and
:class:`SyntheticBenchmark` is the workload those inputs configure.  The
training machinery that maps an arbitrary target metric vector to inputs
lives in :mod:`repro.regression.training`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.batch import pack_demand
from repro.hardware.demand import ResourceDemand
from repro.workloads.base import ClientModel, RequestServingClientModel, Workload

#: Canonical order of the synthetic benchmark's input knobs.
SYNTHETIC_INPUT_NAMES: Tuple[str, ...] = (
    "compute_iterations",     # instructions per epoch, in billions
    "working_set_mb",
    "pointer_chase_fraction", # 0 = streaming, 1 = dependent loads (poor MLP)
    "locality",
    "load_intensity_pki",
    "l1_stress_pki",
    "branch_intensity_pki",
    "disk_mbps",
    "disk_sequential_fraction",
    "network_mbps",
    "parallelism",
)


@dataclass
class SyntheticInputs:
    """Input-parameter vector of the synthetic benchmark."""

    compute_iterations: float = 2.0     # billions of instructions per epoch
    working_set_mb: float = 16.0
    pointer_chase_fraction: float = 0.3
    locality: float = 0.6
    load_intensity_pki: float = 300.0
    l1_stress_pki: float = 25.0
    branch_intensity_pki: float = 150.0
    disk_mbps: float = 0.0
    disk_sequential_fraction: float = 0.7
    network_mbps: float = 0.0
    parallelism: float = 2.0

    def as_array(self) -> np.ndarray:
        return np.array([getattr(self, n) for n in SYNTHETIC_INPUT_NAMES], dtype=float)

    @classmethod
    def from_array(cls, values: Sequence[float]) -> "SyntheticInputs":
        values = np.asarray(values, dtype=float)
        if values.shape != (len(SYNTHETIC_INPUT_NAMES),):
            raise ValueError(
                f"expected {len(SYNTHETIC_INPUT_NAMES)} values, got {values.shape}"
            )
        kwargs = dict(zip(SYNTHETIC_INPUT_NAMES, values))
        return cls(**kwargs).clipped()

    def clipped(self) -> "SyntheticInputs":
        """Clamp every knob to its physically meaningful range."""
        return SyntheticInputs(
            compute_iterations=float(np.clip(self.compute_iterations, 0.0, 50.0)),
            working_set_mb=float(np.clip(self.working_set_mb, 0.25, 2048.0)),
            pointer_chase_fraction=float(
                np.clip(self.pointer_chase_fraction, 0.0, 1.0)
            ),
            locality=float(np.clip(self.locality, 0.0, 1.0)),
            load_intensity_pki=float(np.clip(self.load_intensity_pki, 0.0, 900.0)),
            l1_stress_pki=float(np.clip(self.l1_stress_pki, 0.0, 300.0)),
            branch_intensity_pki=float(np.clip(self.branch_intensity_pki, 0.0, 400.0)),
            disk_mbps=float(np.clip(self.disk_mbps, 0.0, 500.0)),
            disk_sequential_fraction=float(
                np.clip(self.disk_sequential_fraction, 0.0, 1.0)
            ),
            network_mbps=float(np.clip(self.network_mbps, 0.0, 2000.0)),
            parallelism=float(np.clip(self.parallelism, 1.0, 8.0)),
        )

    def as_dict(self) -> Dict[str, float]:
        return {n: getattr(self, n) for n in SYNTHETIC_INPUT_NAMES}

    @classmethod
    def dimensions(cls) -> int:
        return len(SYNTHETIC_INPUT_NAMES)


class SyntheticBenchmark(Workload):
    """A collection of tunable loops that exercise the PM resources.

    The benchmark's demand depends only on its inputs, never on the
    offered ``load`` — it runs flat out for the short evaluation window
    (the paper's runs take "less than a minute"), which is what makes it
    a faithful stand-in for the VM it mimics.
    """

    name = "synthetic_benchmark"

    def __init__(
        self,
        inputs: Optional[SyntheticInputs] = None,
        app_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(app_id=app_id or self.name, seed=seed)
        self.inputs = (inputs or SyntheticInputs()).clipped()

    @property
    def nominal_load(self) -> float:
        return 1.0

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        p = self.inputs
        instructions = p.compute_iterations * 1e9 * epoch_seconds
        # Pointer chasing reduces memory-level parallelism, which shows
        # up as a larger fraction of loads missing the private cache.
        l1_miss_pki = p.l1_stress_pki * (0.6 + 0.8 * p.pointer_chase_fraction)
        return ResourceDemand(
            instructions=instructions,
            vcpus=max(1, int(round(p.parallelism))),
            working_set_mb=p.working_set_mb,
            loads_pki=p.load_intensity_pki,
            l1_miss_pki=l1_miss_pki,
            ifetch_pki=1.5,
            branches_pki=p.branch_intensity_pki,
            branch_mispredict_rate=0.02,
            locality=p.locality,
            disk_mb=p.disk_mbps * epoch_seconds,
            disk_sequential_fraction=p.disk_sequential_fraction,
            network_mbit=p.network_mbps * epoch_seconds,
            write_fraction=0.4,
        )

    def batch_key(self) -> Hashable:
        return (self.name,) + tuple(self.inputs.as_array().tolist())

    def demand_batch(self, loads, epoch_seconds: float = 1.0) -> np.ndarray:
        # The benchmark ignores the offered load entirely, so the batch
        # is one packed scalar row repeated per VM.
        loads = np.asarray(loads, dtype=float)
        demand = self.demand(0.0, epoch_seconds=epoch_seconds)
        demand.validate()
        row = np.asarray(pack_demand(demand), dtype=float)
        return np.tile(row, (loads.size, 1))

    def client_model(self) -> ClientModel:
        return RequestServingClientModel(
            instructions_per_request=1e6, base_latency_ms=1.0
        )

    def with_inputs(self, inputs: SyntheticInputs) -> "SyntheticBenchmark":
        """Return a new benchmark configured with different inputs."""
        return SyntheticBenchmark(inputs=inputs, app_id=self.app_id, seed=self.seed)
