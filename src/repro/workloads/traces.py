"""Load and interference traces.

The paper drives its workloads with real load-intensity traces
(Microsoft HotMail, September 2009, aggregated over 1-hour periods) and
injects interference at the times where a three-day Amazon EC2 run of
the Data Serving workload showed performance crises of at least 20%.
Neither trace is publicly available, so this module generates synthetic
equivalents:

* :func:`hotmail_like_trace` — a diurnal load pattern with a weekday
  amplitude, hour-level granularity and bounded peak (the paper ensures
  the maximum number of active sessions is within server capacity);
* :func:`ec2_like_interference_schedule` — a set of randomly placed
  interference episodes per day whose intensities are drawn to produce
  degradations roughly in the 20–50% band the paper reports.

Both are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class LoadTrace:
    """A load-intensity time series, one value per epoch.

    Values are expressed as a fraction of the workload's nominal
    (saturating) load, so the same trace can drive any workload.
    """

    values: np.ndarray
    epoch_seconds: float = 1.0
    name: str = "trace"

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1:
            raise ValueError("a load trace must be one-dimensional")
        if np.any(self.values < 0):
            raise ValueError("load values must be non-negative")

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __getitem__(self, epoch: int) -> float:
        return float(self.values[epoch])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values.tolist())

    @property
    def duration_seconds(self) -> float:
        return len(self) * self.epoch_seconds

    def scaled(self, factor: float) -> "LoadTrace":
        """Scale every load value by ``factor``."""
        return LoadTrace(self.values * factor, self.epoch_seconds, self.name)

    def quantized(self, quantum: float) -> "LoadTrace":
        """Round every value to the nearest multiple of ``quantum``.

        Used when a trace drives fleet-wide load phases: quantisation
        collapses noisy neighbouring epochs onto the same level, so a
        phase event fires only on genuine level changes and steady
        stretches keep the hosts' cached demand matrices valid.
        """
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        values = np.round(self.values / quantum) * quantum
        return LoadTrace(values, self.epoch_seconds, self.name)

    def slice(self, start: int, stop: int) -> "LoadTrace":
        return LoadTrace(self.values[start:stop], self.epoch_seconds, self.name)


@dataclass
class InterferenceEpisode:
    """One contiguous interval during which an interfering VM is active."""

    start_epoch: int
    end_epoch: int
    #: Interfering workload intensity in [0, 1] (scales its stress knob).
    intensity: float = 1.0
    #: Which resource the episode stresses ("memory", "network", "disk").
    kind: str = "memory"

    def __post_init__(self) -> None:
        if self.end_epoch <= self.start_epoch:
            raise ValueError("end_epoch must be after start_epoch")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")

    def active(self, epoch: int) -> bool:
        return self.start_epoch <= epoch < self.end_epoch

    @property
    def duration(self) -> int:
        return self.end_epoch - self.start_epoch


@dataclass
class InterferenceSchedule:
    """A set of interference episodes over a simulation horizon."""

    episodes: List[InterferenceEpisode] = field(default_factory=list)

    def intensity_at(self, epoch: int) -> float:
        """Combined intensity of all episodes active at ``epoch`` (capped at 1)."""
        total = sum(e.intensity for e in self.episodes if e.active(epoch))
        return min(1.0, total)

    def active_at(self, epoch: int) -> bool:
        return any(e.active(epoch) for e in self.episodes)

    def kinds_at(self, epoch: int) -> Tuple[str, ...]:
        return tuple(sorted({e.kind for e in self.episodes if e.active(epoch)}))

    def __len__(self) -> int:
        return len(self.episodes)

    def __iter__(self) -> Iterator[InterferenceEpisode]:
        return iter(self.episodes)

    def total_interference_epochs(self, horizon: int) -> int:
        """Number of epochs in [0, horizon) with at least one active episode."""
        return sum(1 for epoch in range(horizon) if self.active_at(epoch))


def constant_trace(
    load: float, epochs: int, epoch_seconds: float = 1.0, name: str = "constant"
) -> LoadTrace:
    """A flat trace at a fixed fraction of the nominal load."""
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    return LoadTrace(np.full(epochs, float(load)), epoch_seconds, name)


def hotmail_like_trace(
    days: int = 3,
    epochs_per_hour: int = 4,
    peak: float = 0.85,
    trough: float = 0.25,
    weekday_amplitude: float = 0.1,
    noise: float = 0.03,
    seed: Optional[int] = 0,
    epoch_seconds: float = 900.0,
) -> LoadTrace:
    """Generate a diurnal, HotMail-like load-intensity trace.

    The trace follows a smooth day/night cycle between ``trough`` and
    ``peak`` (fractions of the nominal load), modulated day-by-day with a
    small weekday amplitude and white noise, at ``epochs_per_hour``
    samples per hour.
    """
    if days <= 0 or epochs_per_hour <= 0:
        raise ValueError("days and epochs_per_hour must be positive")
    if peak < trough:
        raise ValueError("peak must be >= trough")
    rng = np.random.default_rng(seed)
    epochs = days * 24 * epochs_per_hour
    hours = np.arange(epochs) / epochs_per_hour
    # Daily cycle peaking in the afternoon (hour 15), lowest at night.
    phase = 2.0 * np.pi * (hours % 24.0 - 15.0) / 24.0
    cycle = 0.5 * (1.0 + np.cos(phase))
    base = trough + (peak - trough) * cycle
    day_index = (hours // 24).astype(int)
    day_factor = 1.0 + weekday_amplitude * np.sin(2.0 * np.pi * day_index / 7.0)
    values = base * day_factor + rng.normal(0.0, noise, size=epochs)
    values = np.clip(values, 0.02, 1.0)
    return LoadTrace(values, epoch_seconds=epoch_seconds, name="hotmail_like")


def ec2_like_interference_schedule(
    horizon_epochs: int,
    episodes_per_day: float = 3.0,
    epochs_per_day: int = 96,
    mean_duration_epochs: int = 6,
    min_intensity: float = 0.4,
    max_intensity: float = 1.0,
    kind: str = "memory",
    seed: Optional[int] = 1,
) -> InterferenceSchedule:
    """Generate EC2-like interference episodes.

    The paper labels an EC2 time slot a "performance crisis" when the
    client-reported degradation exceeds 20%, and later replays stress
    workloads during those slots.  We draw episode start times from a
    Poisson process with ``episodes_per_day`` events per day, durations
    geometrically around ``mean_duration_epochs``, and intensities
    uniformly in ``[min_intensity, max_intensity]``.
    """
    if horizon_epochs <= 0:
        raise ValueError("horizon_epochs must be positive")
    rng = np.random.default_rng(seed)
    rate_per_epoch = episodes_per_day / float(epochs_per_day)
    episodes: List[InterferenceEpisode] = []
    epoch = 0
    while epoch < horizon_epochs:
        gap = rng.exponential(1.0 / max(rate_per_epoch, 1e-9))
        epoch += max(1, int(round(gap)))
        if epoch >= horizon_epochs:
            break
        duration = max(2, int(rng.geometric(1.0 / max(mean_duration_epochs, 1))))
        end = min(horizon_epochs, epoch + duration)
        intensity = float(rng.uniform(min_intensity, max_intensity))
        episodes.append(
            InterferenceEpisode(
                start_epoch=epoch, end_epoch=end, intensity=intensity, kind=kind
            )
        )
        epoch = end + 1
    return InterferenceSchedule(episodes=episodes)
