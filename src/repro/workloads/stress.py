"""Interfering (stress) workloads.

The paper uses three stressors to inject controllable interference
(Section 5.1):

* **memory-stress** — inspired by the Bubble-Up stress test: aggressively
  exercises the shared last-level cache and memory controller; its
  intensity knob is the working-set size (6 MB – 512 MB in the paper's
  sweeps);
* **network-stress** — iperf creating bi-directional UDP streams; the
  knob is the target throughput (50 – 700 Mbps);
* **disk-stress** — copies files from one place to another at a bounded
  rate; the knob is the transfer rate (1 – 10 MB/s, and higher when the
  goal is to saturate the disk).
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.hardware.demand import ResourceDemand
from repro.workloads.base import (
    ClientModel,
    RequestServingClientModel,
    Workload,
    demand_table,
)


def _stress_levels(loads) -> np.ndarray:
    """Vectorized ``min(1.0, max(0.0, load))`` matching the scalar models."""
    return np.minimum(1.0, np.maximum(0.0, np.asarray(loads, dtype=float)))


class _StressClientModel(RequestServingClientModel):
    """Stressors have no real clients; provide a trivial model anyway."""

    def __init__(self) -> None:
        super().__init__(instructions_per_request=1e6, base_latency_ms=1.0)


class MemoryStressWorkload(Workload):
    """Bubble-Up-style last-level-cache and memory-bus stressor.

    ``working_set_mb`` is the intensity knob: small working sets mostly
    pollute the shared cache, large working sets saturate the memory
    interconnect as well.
    """

    name = "memory_stress"

    def __init__(
        self,
        working_set_mb: float = 64.0,
        intensity: float = 1.0,
        locality: float = 0.05,
        app_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        """
        ``locality`` close to 0 makes the stressor stream through its
        working set (maximum memory-bus pressure); a high locality makes
        it a pure cache polluter that occupies the shared cache while
        generating little bus traffic of its own (the paper's Scenario A
        style of interference).
        """
        super().__init__(app_id=app_id or self.name, seed=seed)
        if working_set_mb <= 0:
            raise ValueError("working_set_mb must be positive")
        if not 0.0 < intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        self.working_set_mb = working_set_mb
        self.intensity = intensity
        self.locality = locality

    @property
    def nominal_load(self) -> float:
        return 1.0

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        # The stressor always runs flat out; ``load`` scales intensity.
        level = min(1.0, max(0.0, load)) * self.intensity
        instructions = 4.0e9 * epoch_seconds * level
        return ResourceDemand(
            instructions=instructions,
            vcpus=2,
            working_set_mb=self.working_set_mb,
            loads_pki=500.0,
            l1_miss_pki=120.0,
            ifetch_pki=0.5,
            branches_pki=60.0,
            branch_mispredict_rate=0.01,
            locality=self.locality,
            disk_mb=0.0,
            disk_sequential_fraction=1.0,
            network_mbit=0.0,
            write_fraction=0.5,
        )

    def batch_key(self) -> Hashable:
        return (self.name, self.working_set_mb, self.intensity, self.locality)

    def demand_batch(self, loads, epoch_seconds: float = 1.0) -> np.ndarray:
        level = _stress_levels(loads) * self.intensity
        instructions = 4.0e9 * epoch_seconds * level
        return demand_table(
            level.size,
            instructions=instructions,
            working_set_mb=self.working_set_mb,
            loads_pki=500.0,
            l1_miss_pki=120.0,
            ifetch_pki=0.5,
            branches_pki=60.0,
            branch_mispredict_rate=0.01,
            locality=self.locality,
            disk_mb=0.0,
            disk_sequential_fraction=1.0,
            network_mbit=0.0,
            write_fraction=0.5,
        )

    def client_model(self) -> ClientModel:
        return _StressClientModel()


class NetworkStressWorkload(Workload):
    """iperf-like bi-directional UDP stress; knob is the target Mbps."""

    name = "network_stress"

    def __init__(
        self,
        target_mbps: float = 400.0,
        app_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(app_id=app_id or self.name, seed=seed)
        if target_mbps <= 0:
            raise ValueError("target_mbps must be positive")
        self.target_mbps = target_mbps

    @property
    def nominal_load(self) -> float:
        return 1.0

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        level = min(1.0, max(0.0, load))
        mbit = self.target_mbps * epoch_seconds * level * 2.0  # bi-directional
        # Packet processing costs a modest number of instructions.
        instructions = mbit * 2.5e5
        return ResourceDemand(
            instructions=instructions,
            vcpus=1,
            working_set_mb=2.0,
            loads_pki=250.0,
            l1_miss_pki=8.0,
            ifetch_pki=1.0,
            branches_pki=120.0,
            branch_mispredict_rate=0.02,
            locality=0.9,
            disk_mb=0.0,
            disk_sequential_fraction=1.0,
            network_mbit=mbit,
            write_fraction=0.1,
        )

    def batch_key(self) -> Hashable:
        return (self.name, self.target_mbps)

    def demand_batch(self, loads, epoch_seconds: float = 1.0) -> np.ndarray:
        level = _stress_levels(loads)
        mbit = self.target_mbps * epoch_seconds * level * 2.0
        instructions = mbit * 2.5e5
        return demand_table(
            level.size,
            instructions=instructions,
            working_set_mb=2.0,
            loads_pki=250.0,
            l1_miss_pki=8.0,
            ifetch_pki=1.0,
            branches_pki=120.0,
            branch_mispredict_rate=0.02,
            locality=0.9,
            disk_mb=0.0,
            disk_sequential_fraction=1.0,
            network_mbit=mbit,
            write_fraction=0.1,
        )

    def client_model(self) -> ClientModel:
        return _StressClientModel()


class DiskStressWorkload(Workload):
    """File-copy stress respecting a maximum transfer rate (MB/s)."""

    name = "disk_stress"

    def __init__(
        self,
        target_mbps: float = 5.0,
        sequential_fraction: float = 0.2,
        app_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(app_id=app_id or self.name, seed=seed)
        if target_mbps <= 0:
            raise ValueError("target_mbps must be positive")
        if not 0.0 <= sequential_fraction <= 1.0:
            raise ValueError("sequential_fraction must be in [0, 1]")
        self.target_mbps = target_mbps
        self.sequential_fraction = sequential_fraction

    @property
    def nominal_load(self) -> float:
        return 1.0

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        level = min(1.0, max(0.0, load))
        # A copy reads and writes every byte.
        disk_mb = self.target_mbps * epoch_seconds * level * 2.0
        instructions = disk_mb * 2.0e6
        return ResourceDemand(
            instructions=instructions,
            vcpus=1,
            working_set_mb=4.0,
            loads_pki=200.0,
            l1_miss_pki=10.0,
            ifetch_pki=1.0,
            branches_pki=100.0,
            branch_mispredict_rate=0.015,
            locality=0.85,
            disk_mb=disk_mb,
            disk_sequential_fraction=self.sequential_fraction,
            network_mbit=0.0,
            write_fraction=0.5,
        )

    def batch_key(self) -> Hashable:
        return (self.name, self.target_mbps, self.sequential_fraction)

    def demand_batch(self, loads, epoch_seconds: float = 1.0) -> np.ndarray:
        level = _stress_levels(loads)
        disk_mb = self.target_mbps * epoch_seconds * level * 2.0
        instructions = disk_mb * 2.0e6
        return demand_table(
            level.size,
            instructions=instructions,
            working_set_mb=4.0,
            loads_pki=200.0,
            l1_miss_pki=10.0,
            ifetch_pki=1.0,
            branches_pki=100.0,
            branch_mispredict_rate=0.015,
            locality=0.85,
            disk_mb=disk_mb,
            disk_sequential_fraction=self.sequential_fraction,
            network_mbit=0.0,
            write_fraction=0.5,
        )

    def client_model(self) -> ClientModel:
        return _StressClientModel()


def make_stress_workload(kind: str, **kwargs) -> Workload:
    """Instantiate a stressor by kind: ``memory``, ``network`` or ``disk``."""
    factories = {
        "memory": MemoryStressWorkload,
        "network": NetworkStressWorkload,
        "disk": DiskStressWorkload,
    }
    try:
        return factories[kind](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown stress workload {kind!r}; known: {sorted(factories)}"
        ) from None
