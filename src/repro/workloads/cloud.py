"""CloudSuite-like cloud workload models.

The paper evaluates DeepDive on three CloudSuite workloads (Section 5.1):

* **Data Serving** — a Cassandra key-value store driven by YCSB clients
  with varying key popularity and read/write ratio;
* **Web Search** — a Nutch index-serving node with a 2 GB index, driven
  by a Faban client with varying word popularity and session counts;
* **Data Analytics** — a Hadoop/Mahout Bayes-classification job over
  35 GB of Wikipedia data on a nine-VM cluster.

We model each as a parameterised resource-demand generator whose
per-instruction characteristics (working set, cache-miss intensity,
I/O volume per unit of work) match the qualitative signature of the
original: Data Serving is memory- and read-I/O-heavy with a popularity-
dependent working set; Web Search is cache-friendlier but reads the
on-disk index for unpopular words; Data Analytics alternates map
(disk + CPU) and shuffle/reduce (network + CPU) phases.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

import numpy as np

from repro.hardware.demand import ResourceDemand
from repro.workloads.base import (
    BatchClientModel,
    ClientModel,
    RequestServingClientModel,
    Workload,
    demand_table,
)


def _checked_loads(loads) -> np.ndarray:
    loads = np.asarray(loads, dtype=float)
    if np.any(loads < 0):
        raise ValueError("load must be non-negative")
    return loads


class DataServingWorkload(Workload):
    """Cassandra/YCSB-like key-value store.

    Parameters
    ----------
    key_skew:
        Zipf-like skew of key popularity in [0, 1]; higher skew means a
        hotter, smaller working set.
    read_fraction:
        Fraction of requests that are reads (writes touch the commit log
        and flush SSTables, generating more disk traffic).
    dataset_gb:
        On-disk dataset size; bounds the cold working set.
    """

    name = "data_serving"

    #: Instructions executed per request, on average.
    INSTRUCTIONS_PER_REQUEST = 2.2e6
    BASE_LATENCY_MS = 4.0

    def __init__(
        self,
        key_skew: float = 0.6,
        read_fraction: float = 0.9,
        dataset_gb: float = 10.0,
        app_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(app_id=app_id or self.name, seed=seed)
        if not 0.0 <= key_skew <= 1.0:
            raise ValueError("key_skew must be in [0, 1]")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.key_skew = key_skew
        self.read_fraction = read_fraction
        self.dataset_gb = dataset_gb

    @property
    def nominal_load(self) -> float:
        """Requests per second that saturate the VM's two pinned cores."""
        return 1200.0

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        if load < 0:
            raise ValueError("load must be non-negative")
        requests = load * epoch_seconds
        instructions = requests * self.INSTRUCTIONS_PER_REQUEST
        # Hot working set shrinks as popularity skew grows: a uniform
        # key distribution touches a large slice of the memtable/row
        # cache, a skewed one keeps re-touching a few MB.
        hot_ws = 6.0 + (1.0 - self.key_skew) * 58.0
        # Writes spill to the commit log and compactions; reads may miss
        # the row cache and hit the SSTables on disk.
        write_fraction = 1.0 - self.read_fraction
        disk_mb = requests * (0.004 * (1.0 - self.key_skew) + 0.012 * write_fraction)
        network_mbit = requests * 0.012  # request/response payloads
        return ResourceDemand(
            instructions=instructions,
            vcpus=2,
            working_set_mb=hot_ws,
            loads_pki=340.0,
            l1_miss_pki=26.0 + 8.0 * (1.0 - self.key_skew),
            ifetch_pki=3.0,
            branches_pki=160.0,
            branch_mispredict_rate=0.035,
            locality=0.55 + 0.25 * self.key_skew,
            disk_mb=disk_mb,
            disk_sequential_fraction=0.35,
            network_mbit=network_mbit,
            write_fraction=0.25 + 0.3 * write_fraction,
        )

    def batch_key(self) -> Hashable:
        return (self.name, self.key_skew, self.read_fraction, self.dataset_gb)

    def demand_batch(self, loads, epoch_seconds: float = 1.0) -> np.ndarray:
        # Vectorized replay of :meth:`demand`, operation for operation.
        loads = _checked_loads(loads)
        requests = loads * epoch_seconds
        instructions = requests * self.INSTRUCTIONS_PER_REQUEST
        hot_ws = 6.0 + (1.0 - self.key_skew) * 58.0
        write_fraction = 1.0 - self.read_fraction
        disk_mb = requests * (0.004 * (1.0 - self.key_skew) + 0.012 * write_fraction)
        network_mbit = requests * 0.012
        return demand_table(
            loads.size,
            instructions=instructions,
            working_set_mb=hot_ws,
            loads_pki=340.0,
            l1_miss_pki=26.0 + 8.0 * (1.0 - self.key_skew),
            ifetch_pki=3.0,
            branches_pki=160.0,
            branch_mispredict_rate=0.035,
            locality=0.55 + 0.25 * self.key_skew,
            disk_mb=disk_mb,
            disk_sequential_fraction=0.35,
            network_mbit=network_mbit,
            write_fraction=0.25 + 0.3 * write_fraction,
        )

    def client_model(self) -> ClientModel:
        return RequestServingClientModel(
            instructions_per_request=self.INSTRUCTIONS_PER_REQUEST,
            base_latency_ms=self.BASE_LATENCY_MS,
        )


class WebSearchWorkload(Workload):
    """Nutch/Faban-like index-serving node.

    Parameters
    ----------
    word_skew:
        Popularity skew of query terms in [0, 1]; popular terms hit the
        in-memory posting-list cache, rare terms read the on-disk index.
    index_gb:
        Index size (the paper uses a 2 GB index).
    """

    name = "web_search"

    INSTRUCTIONS_PER_REQUEST = 5.5e6
    BASE_LATENCY_MS = 18.0

    def __init__(
        self,
        word_skew: float = 0.7,
        index_gb: float = 2.0,
        app_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(app_id=app_id or self.name, seed=seed)
        if not 0.0 <= word_skew <= 1.0:
            raise ValueError("word_skew must be in [0, 1]")
        self.word_skew = word_skew
        self.index_gb = index_gb

    @property
    def nominal_load(self) -> float:
        """Queries per second that saturate the VM."""
        return 620.0

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        if load < 0:
            raise ValueError("load must be non-negative")
        queries = load * epoch_seconds
        instructions = queries * self.INSTRUCTIONS_PER_REQUEST
        # Posting lists for popular words stay resident; rare words read
        # index segments from disk.
        cold_fraction = 1.0 - self.word_skew
        hot_ws = 10.0 + cold_fraction * 30.0
        disk_mb = queries * 0.06 * cold_fraction
        network_mbit = queries * 0.02  # result pages
        return ResourceDemand(
            instructions=instructions,
            vcpus=2,
            working_set_mb=hot_ws,
            loads_pki=310.0,
            l1_miss_pki=18.0 + 6.0 * cold_fraction,
            ifetch_pki=4.0,
            branches_pki=180.0,
            branch_mispredict_rate=0.03,
            locality=0.7 + 0.15 * self.word_skew,
            disk_mb=disk_mb,
            disk_sequential_fraction=0.6,
            network_mbit=network_mbit,
            write_fraction=0.1,
        )

    def batch_key(self) -> Hashable:
        return (self.name, self.word_skew, self.index_gb)

    def demand_batch(self, loads, epoch_seconds: float = 1.0) -> np.ndarray:
        loads = _checked_loads(loads)
        queries = loads * epoch_seconds
        instructions = queries * self.INSTRUCTIONS_PER_REQUEST
        cold_fraction = 1.0 - self.word_skew
        hot_ws = 10.0 + cold_fraction * 30.0
        disk_mb = queries * 0.06 * cold_fraction
        network_mbit = queries * 0.02
        return demand_table(
            loads.size,
            instructions=instructions,
            working_set_mb=hot_ws,
            loads_pki=310.0,
            l1_miss_pki=18.0 + 6.0 * cold_fraction,
            ifetch_pki=4.0,
            branches_pki=180.0,
            branch_mispredict_rate=0.03,
            locality=0.7 + 0.15 * self.word_skew,
            disk_mb=disk_mb,
            disk_sequential_fraction=0.6,
            network_mbit=network_mbit,
            write_fraction=0.1,
        )

    def client_model(self) -> ClientModel:
        return RequestServingClientModel(
            instructions_per_request=self.INSTRUCTIONS_PER_REQUEST,
            base_latency_ms=self.BASE_LATENCY_MS,
        )


class DataAnalyticsWorkload(Workload):
    """Hadoop/Mahout-like Bayes classification over Wikipedia data.

    The job alternates map phases (sequential disk scans plus CPU) and
    shuffle/reduce phases (network transfers between mappers and
    reducers).  ``remote_fetch_fraction`` controls how much of the
    shuffle data must be fetched from other physical machines — the knob
    that makes the Figure 5 network-interference experiment interesting.
    """

    name = "data_analytics"

    #: Instructions per normalised "task" of work.
    INSTRUCTIONS_PER_TASK = 2.5e9
    BASE_TASK_MS = 9000.0

    def __init__(
        self,
        remote_fetch_fraction: float = 0.5,
        shuffle_fraction: float = 0.35,
        dataset_gb: float = 35.0,
        app_id: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(app_id=app_id or self.name, seed=seed)
        if not 0.0 <= remote_fetch_fraction <= 1.0:
            raise ValueError("remote_fetch_fraction must be in [0, 1]")
        if not 0.0 <= shuffle_fraction <= 1.0:
            raise ValueError("shuffle_fraction must be in [0, 1]")
        self.remote_fetch_fraction = remote_fetch_fraction
        self.shuffle_fraction = shuffle_fraction
        self.dataset_gb = dataset_gb

    @property
    def nominal_load(self) -> float:
        """Tasks per second that saturate the VM (batch: ~1 task in flight)."""
        return 0.9

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        if load < 0:
            raise ValueError("load must be non-negative")
        tasks = load * epoch_seconds
        instructions = tasks * self.INSTRUCTIONS_PER_TASK
        # Map phase scans input splits from disk sequentially.
        disk_mb = tasks * 90.0 * (1.0 - self.shuffle_fraction)
        # Shuffle phase moves intermediate data; only the remote share
        # crosses the NIC.
        shuffle_mb = tasks * 140.0 * self.shuffle_fraction
        network_mbit = shuffle_mb * 8.0 * self.remote_fetch_fraction
        return ResourceDemand(
            instructions=instructions,
            vcpus=2,
            working_set_mb=48.0,
            loads_pki=290.0,
            l1_miss_pki=22.0,
            ifetch_pki=2.0,
            branches_pki=140.0,
            branch_mispredict_rate=0.025,
            locality=0.5,
            disk_mb=disk_mb,
            disk_sequential_fraction=0.85,
            network_mbit=network_mbit,
            write_fraction=0.4,
        )

    def batch_key(self) -> Hashable:
        return (
            self.name,
            self.remote_fetch_fraction,
            self.shuffle_fraction,
            self.dataset_gb,
        )

    def demand_batch(self, loads, epoch_seconds: float = 1.0) -> np.ndarray:
        loads = _checked_loads(loads)
        tasks = loads * epoch_seconds
        instructions = tasks * self.INSTRUCTIONS_PER_TASK
        disk_mb = tasks * 90.0 * (1.0 - self.shuffle_fraction)
        shuffle_mb = tasks * 140.0 * self.shuffle_fraction
        network_mbit = shuffle_mb * 8.0 * self.remote_fetch_fraction
        return demand_table(
            loads.size,
            instructions=instructions,
            working_set_mb=48.0,
            loads_pki=290.0,
            l1_miss_pki=22.0,
            ifetch_pki=2.0,
            branches_pki=140.0,
            branch_mispredict_rate=0.025,
            locality=0.5,
            disk_mb=disk_mb,
            disk_sequential_fraction=0.85,
            network_mbit=network_mbit,
            write_fraction=0.4,
        )

    def client_model(self) -> ClientModel:
        return BatchClientModel(base_task_ms=self.BASE_TASK_MS)


#: Factories for the three cloud workloads, keyed by workload name.
CLOUD_WORKLOAD_FACTORIES: Dict[str, Callable[..., Workload]] = {
    DataServingWorkload.name: DataServingWorkload,
    WebSearchWorkload.name: WebSearchWorkload,
    DataAnalyticsWorkload.name: DataAnalyticsWorkload,
}


def make_cloud_workload(name: str, **kwargs) -> Workload:
    """Instantiate one of the three cloud workloads by name."""
    try:
        factory = CLOUD_WORKLOAD_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown cloud workload {name!r}; known: "
            f"{sorted(CLOUD_WORKLOAD_FACTORIES)}"
        ) from None
    return factory(**kwargs)
