"""Workload models.

CloudSuite-like application models (Data Serving, Web Search, Data
Analytics), the stress workloads the paper uses to inject interference
(memory-stress, iperf-like network stress, disk-copy stress), the
tunable synthetic benchmark the placement manager uses to mimic a VM,
and the load / interference trace generators.
"""

from repro.workloads.base import (
    Workload,
    PerformanceReport,
    ClientModel,
    RequestServingClientModel,
    BatchClientModel,
)
from repro.workloads.cloud import (
    DataServingWorkload,
    WebSearchWorkload,
    DataAnalyticsWorkload,
    CLOUD_WORKLOAD_FACTORIES,
    make_cloud_workload,
)
from repro.workloads.stress import (
    MemoryStressWorkload,
    NetworkStressWorkload,
    DiskStressWorkload,
    make_stress_workload,
)
from repro.workloads.synthetic import SyntheticBenchmark, SyntheticInputs
from repro.workloads.traces import (
    LoadTrace,
    InterferenceEpisode,
    InterferenceSchedule,
    hotmail_like_trace,
    constant_trace,
    ec2_like_interference_schedule,
)

__all__ = [
    "Workload",
    "PerformanceReport",
    "ClientModel",
    "RequestServingClientModel",
    "BatchClientModel",
    "DataServingWorkload",
    "WebSearchWorkload",
    "DataAnalyticsWorkload",
    "CLOUD_WORKLOAD_FACTORIES",
    "make_cloud_workload",
    "MemoryStressWorkload",
    "NetworkStressWorkload",
    "DiskStressWorkload",
    "make_stress_workload",
    "SyntheticBenchmark",
    "SyntheticInputs",
    "LoadTrace",
    "InterferenceEpisode",
    "InterferenceSchedule",
    "hotmail_like_trace",
    "constant_trace",
    "ec2_like_interference_schedule",
]
