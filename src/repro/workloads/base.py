"""Workload and client-model base classes.

A :class:`Workload` converts a load intensity (requests per second for
interactive services, a work multiplier for batch jobs) into a
:class:`~repro.hardware.demand.ResourceDemand` for the next epoch.  A
:class:`ClientModel` converts the achieved execution (instructions
retired, progress) back into the *client-visible* performance — the
latency and throughput the paper's client emulators report.  DeepDive
itself never sees the client model's output; the evaluation uses it as
ground truth to score DeepDive's transparent estimates.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Union

import numpy as np

from repro.hardware.batch import DEMAND_FIELDS, pack_demand
from repro.hardware.demand import ResourceDemand


def demand_table(n: int, **columns: Union[float, np.ndarray]) -> np.ndarray:
    """Assemble an ``(n, len(DEMAND_FIELDS))`` demand-row matrix.

    Every :data:`~repro.hardware.batch.DEMAND_FIELDS` column must be
    provided, either as a scalar (broadcast over the ``n`` rows) or as an
    ``(n,)`` array.  The helper keeps vectorized ``demand_batch``
    implementations declarative — one named value per demand field, in
    any order — while guaranteeing the packed column layout matches
    :func:`~repro.hardware.batch.pack_demand`.
    """
    table = np.empty((n, len(DEMAND_FIELDS)), dtype=float)
    for j, name in enumerate(DEMAND_FIELDS):
        try:
            table[:, j] = columns.pop(name)
        except KeyError:
            raise TypeError(f"demand_table() missing demand field {name!r}") from None
    if columns:
        raise TypeError(f"demand_table() got unknown fields {sorted(columns)}")
    return table


@dataclass
class PerformanceReport:
    """Client-visible performance over one epoch."""

    #: Requests served per second (or normalised work units for batch jobs).
    throughput: float
    #: Average response latency in milliseconds (or per-unit completion
    #: time for batch jobs, still expressed in milliseconds).
    latency_ms: float
    #: Fraction of offered load that was served.
    goodput_fraction: float = 1.0

    def latency_degradation(self, baseline: "PerformanceReport") -> float:
        """Relative latency increase over ``baseline`` (0 = no degradation)."""
        if baseline.latency_ms <= 0:
            return 0.0
        return max(0.0, self.latency_ms / baseline.latency_ms - 1.0)

    def throughput_degradation(self, baseline: "PerformanceReport") -> float:
        """Relative throughput drop versus ``baseline`` (0 = no degradation)."""
        if baseline.throughput <= 0:
            return 0.0
        return max(0.0, 1.0 - self.throughput / baseline.throughput)


class ClientModel(abc.ABC):
    """Maps achieved execution back to client-visible performance."""

    @abc.abstractmethod
    def performance(
        self,
        offered_load: float,
        instructions_demanded: float,
        instructions_retired: float,
        epoch_seconds: float,
        instructions_attainable: Optional[float] = None,
    ) -> PerformanceReport:
        """Compute the epoch's client-visible performance.

        ``instructions_attainable`` is the VM's capacity this epoch (what
        it could have retired); when omitted the retired count is used,
        which is only correct for a saturated service.
        """


class RequestServingClientModel(ClientModel):
    """Open-loop request/response client (Data Serving, Web Search).

    The service behaves like a single-queue server whose capacity is the
    achieved instruction-retirement rate divided by the per-request
    instruction cost.  Response latency follows the M/M/1 inflation
    ``service_time / (1 - rho)``; when the offered load exceeds the
    achieved capacity the latency saturates at ``max_latency_ms`` and
    throughput is capped at the capacity (requests queue up / time out).
    """

    def __init__(
        self,
        instructions_per_request: float,
        base_latency_ms: float,
        max_latency_ms: float = 2000.0,
    ) -> None:
        if instructions_per_request <= 0:
            raise ValueError("instructions_per_request must be positive")
        self.instructions_per_request = instructions_per_request
        self.base_latency_ms = base_latency_ms
        self.max_latency_ms = max_latency_ms

    def performance(
        self,
        offered_load: float,
        instructions_demanded: float,
        instructions_retired: float,
        epoch_seconds: float,
        instructions_attainable: Optional[float] = None,
    ) -> PerformanceReport:
        attainable = (
            instructions_attainable
            if instructions_attainable is not None
            else instructions_retired
        )
        capacity = attainable / self.instructions_per_request / max(epoch_seconds, 1e-9)
        served = instructions_retired / self.instructions_per_request / max(
            epoch_seconds, 1e-9
        )
        if offered_load <= 0:
            return PerformanceReport(throughput=0.0, latency_ms=self.base_latency_ms)
        if capacity <= 0:
            return PerformanceReport(
                throughput=0.0, latency_ms=self.max_latency_ms, goodput_fraction=0.0
            )
        # M/M/1-style response-time inflation against the VM's *capacity*;
        # when the offered load exceeds the capacity the queue grows and
        # latency saturates at the timeout ceiling.
        rho = min(0.995, offered_load / max(capacity, 1e-9))
        latency = self.base_latency_ms / max(1e-3, (1.0 - rho))
        latency = min(latency, self.max_latency_ms)
        throughput = min(offered_load, served if served > 0 else capacity)
        return PerformanceReport(
            throughput=throughput,
            latency_ms=latency,
            goodput_fraction=throughput / offered_load,
        )


class BatchClientModel(ClientModel):
    """Closed batch job client (Data Analytics).

    The client observes task completion time, which scales inversely
    with the fraction of the demanded work that actually completed in
    the epoch.
    """

    def __init__(self, base_task_ms: float) -> None:
        self.base_task_ms = base_task_ms

    def performance(
        self,
        offered_load: float,
        instructions_demanded: float,
        instructions_retired: float,
        epoch_seconds: float,
        instructions_attainable: Optional[float] = None,
    ) -> PerformanceReport:
        if instructions_demanded <= 0:
            return PerformanceReport(throughput=0.0, latency_ms=self.base_task_ms)
        progress = min(1.0, instructions_retired / instructions_demanded)
        progress = max(progress, 1e-3)
        completion_ms = self.base_task_ms / progress
        throughput = offered_load * progress
        return PerformanceReport(
            throughput=throughput,
            latency_ms=completion_ms,
            goodput_fraction=progress,
        )


class Workload(abc.ABC):
    """Base class for everything that can run inside a VM."""

    #: Human-readable workload name ("data_serving", "memory_stress", ...).
    name: str = "workload"

    def __init__(
        self, app_id: Optional[str] = None, seed: Optional[int] = None
    ) -> None:
        self.app_id = app_id or self.name
        self.seed = seed

    @abc.abstractmethod
    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        """Resource demand for one epoch at the given load intensity."""

    # ------------------------------------------------------------------
    # Columnar demand generation (the fleet hot path)
    # ------------------------------------------------------------------
    def batch_key(self) -> Optional[Hashable]:
        """Grouping key for columnar demand generation, or ``None``.

        Two workload instances with equal (non-``None``) keys must
        produce identical demands for identical loads — the key has to
        capture every demand-affecting parameter (but not identity-only
        attributes like ``app_id`` or ``seed``).  Hosts group the VMs of
        an epoch by this key and generate each group's demand rows with
        one :meth:`demand_batch` call.  The default ``None`` opts the
        workload out of grouping; it then falls back to per-VM
        :meth:`demand` calls, which is always correct.
        """
        return None

    def demand_batch(
        self, loads: Union[Sequence[float], np.ndarray], epoch_seconds: float = 1.0
    ) -> np.ndarray:
        """Packed demand rows for a vector of load intensities.

        Returns an ``(len(loads), len(DEMAND_FIELDS))`` matrix whose row
        ``i`` equals ``pack_demand(self.demand(loads[i], epoch_seconds))``
        for a validated demand — the contract the property suite pins
        (``tests/property/test_workload_batch.py``) and the batch
        hardware substrate consumes directly.  The base implementation
        loops over :meth:`demand`; the built-in models override it with
        vectorized formulas that replay the scalar arithmetic operation
        for operation, so the rows are bit-identical.
        """
        loads = np.asarray(loads, dtype=float)
        table = np.empty((loads.size, len(DEMAND_FIELDS)), dtype=float)
        for i, load in enumerate(loads.tolist()):
            demand = self.demand(load, epoch_seconds=epoch_seconds)
            demand.validate()
            table[i] = pack_demand(demand)
        return table

    @abc.abstractmethod
    def client_model(self) -> ClientModel:
        """The client model used to derive ground-truth performance."""

    @property
    @abc.abstractmethod
    def nominal_load(self) -> float:
        """The load level at which the workload saturates one VM."""

    def copy(self) -> "Workload":
        """Deep copy (used when cloning a VM)."""
        return copy.deepcopy(self)

    def performance(
        self,
        load: float,
        instructions_demanded: float,
        instructions_retired: float,
        epoch_seconds: float = 1.0,
        instructions_attainable: Optional[float] = None,
    ) -> PerformanceReport:
        """Convenience wrapper around the client model."""
        return self.client_model().performance(
            offered_load=load,
            instructions_demanded=instructions_demanded,
            instructions_retired=instructions_retired,
            epoch_seconds=epoch_seconds,
            instructions_attainable=instructions_attainable,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(app_id={self.app_id!r})"
