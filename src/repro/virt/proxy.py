"""The request-duplicating proxy.

The interference analyzer needs the cloned VM in the sandbox to see the
same client workload as the production VM.  The paper achieves this with
a proxy that intercepts client traffic, forwards it to production
unchanged, and duplicates copies toward the sandbox.  In the simulation
the "traffic" is the offered-load stream, so the proxy records the load
the production VM receives each epoch and replays it to registered
mirrors (the sandbox clone).

A configurable duplication lag models the small delay between the
production VM observing a load level and its clone receiving the copy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


class RequestProxy:
    """Duplicates the offered-load stream of one production VM."""

    def __init__(
        self, vm_name: str, lag_epochs: int = 0, history_limit: int = 10_000
    ) -> None:
        if lag_epochs < 0:
            raise ValueError("lag_epochs must be non-negative")
        if history_limit <= 0:
            raise ValueError("history_limit must be positive")
        self.vm_name = vm_name
        self.lag_epochs = lag_epochs
        self._history: Deque[float] = deque(maxlen=history_limit)
        #: Mirror name -> index of the next epoch to replay.
        self._mirrors: Dict[str, int] = {}
        self._total_observed = 0

    # ------------------------------------------------------------------
    def observe(self, load: float) -> float:
        """Record the load forwarded to production this epoch; returns it unchanged."""
        if load < 0:
            raise ValueError("load must be non-negative")
        self._history.append(float(load))
        self._total_observed += 1
        return load

    # ------------------------------------------------------------------
    def register_mirror(self, mirror_name: str) -> None:
        """Start duplicating requests toward ``mirror_name`` (e.g. the clone)."""
        if mirror_name in self._mirrors:
            raise ValueError(f"mirror {mirror_name!r} already registered")
        # A new mirror starts replaying from "lag" epochs in the past if
        # available, otherwise from the most recent observation.
        start = max(0, self._total_observed - 1 - self.lag_epochs)
        self._mirrors[mirror_name] = start

    def unregister_mirror(self, mirror_name: str) -> None:
        self._mirrors.pop(mirror_name, None)

    def mirrors(self) -> List[str]:
        return sorted(self._mirrors)

    def next_load_for(self, mirror_name: str) -> Optional[float]:
        """The next duplicated load value for a mirror, or None if it caught up."""
        if mirror_name not in self._mirrors:
            raise KeyError(f"mirror {mirror_name!r} not registered")
        cursor = self._mirrors[mirror_name]
        # Translate the absolute observation index into the deque window.
        window_start = self._total_observed - len(self._history)
        if cursor < window_start:
            cursor = window_start
        if cursor >= self._total_observed:
            return None
        value = self._history[cursor - window_start]
        self._mirrors[mirror_name] = cursor + 1
        return value

    def latest_load(self) -> Optional[float]:
        """The most recently observed production load."""
        return self._history[-1] if self._history else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestProxy(vm={self.vm_name!r}, mirrors={self.mirrors()}, "
            f"observed={self._total_observed})"
        )
