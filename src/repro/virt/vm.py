"""Virtual machines.

A :class:`VirtualMachine` packages a customer application (a workload
model) together with its virtual-resource allocation.  The cloud
provider — and therefore DeepDive — treats the workload as a black box:
only the VM's low-level counters are visible.  The workload object is
carried around so the *simulation* can generate demands, but DeepDive's
components never look inside it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.demand import ResourceDemand
from repro.workloads.base import Workload


class VMState(str, enum.Enum):
    """Lifecycle states of a VM."""

    RUNNING = "running"
    MIGRATING = "migrating"
    CLONING = "cloning"
    STOPPED = "stopped"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_vm_ids = itertools.count()


@dataclass
class VirtualMachine:
    """One tenant VM.

    Attributes
    ----------
    name:
        Unique VM identifier.
    workload:
        The application running inside the VM (black box to DeepDive).
    vcpus:
        Number of virtual CPUs (the paper pins each to a dedicated core).
    memory_gb:
        Memory allocation; determines cloning and migration cost.
    app_id:
        Identifier of the *application code* the VM runs.  VMs created
        from the same image / behind the same load balancer share an
        ``app_id``; the warning system's global information compares VMs
        with equal ``app_id`` (Section 4.1, "Global information").
    """

    name: str
    workload: Workload
    vcpus: int = 2
    memory_gb: float = 2.0
    app_id: Optional[str] = None
    state: VMState = VMState.RUNNING
    #: Name of the VM this one was cloned from (None for production VMs).
    cloned_from: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_vm_ids))

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("a VM needs at least one vCPU")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.app_id is None:
            self.app_id = self.workload.app_id

    def demand(self, load: float, epoch_seconds: float = 1.0) -> ResourceDemand:
        """The VM's resource demand at the given load intensity."""
        demand = self.workload.demand(load, epoch_seconds=epoch_seconds)
        # The demand reflects the VM's vCPU allocation, not the workload's
        # notion of parallelism, because the hypervisor schedules vCPUs.
        demand.vcpus = self.vcpus
        return demand

    def clone(self, clone_name: Optional[str] = None) -> "VirtualMachine":
        """Create a clone of this VM (same image, same application)."""
        return VirtualMachine(
            name=clone_name or f"{self.name}-clone",
            workload=self.workload.copy(),
            vcpus=self.vcpus,
            memory_gb=self.memory_gb,
            app_id=self.app_id,
            state=VMState.RUNNING,
            cloned_from=self.name,
        )

    @property
    def is_clone(self) -> bool:
        return self.cloned_from is not None

    def __hash__(self) -> int:
        return hash((self.name, self.uid))
