"""The hypervisor / host model.

A :class:`Host` couples one :class:`~repro.hardware.machine.PhysicalMachine`
with the set of VMs placed on it.  Each epoch, the host collects every
VM's resource demand (given its current offered load), resolves
contention through the hardware substrate, and records:

* the per-VM raw counter samples — the *only* thing DeepDive sees;
* the per-VM client-visible performance — ground truth used solely by
  the evaluation harness to score DeepDive's estimates.

The host also supports per-VM CPU caps (the sandbox's non-work-conserving
schedulers) and explicit core pinning, mirroring the testbed setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.batch import DEMAND_FIELDS, HostBatchPlan, pack_demand
from repro.hardware.demand import ResourceDemand
from repro.hardware.machine import PhysicalMachine, VMEpochOutcome
from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample
from repro.metrics.store import CounterHistoryView, HostCounterStore
from repro.virt.vm import VirtualMachine, VMState
from repro.workloads.base import PerformanceReport, Workload


@dataclass
class HostDemandPlan:
    """Placement-derived layout of a host's columnar demand generation.

    VMs whose workloads share a :meth:`~repro.workloads.base.Workload.batch_key`
    form one group whose demand rows are produced by a single
    ``demand_batch`` call; workloads that opt out (``batch_key() is
    None``) fall back to per-VM scalar demands.  The plan depends only on
    the placement, so hosts cache it between placement changes.
    """

    #: VM names in placement (row) order.
    names: Tuple[str, ...]
    #: Nominal load per VM row.
    nominal: np.ndarray
    #: One (representative workload, row indices) pair per batch group.
    groups: List[Tuple[Workload, np.ndarray]]
    #: (row index, VM) pairs resolved through scalar ``demand`` calls.
    scalar_vms: List[Tuple[int, VirtualMachine]]


@dataclass
class VMPerformance:
    """Ground-truth record for one VM over one epoch."""

    report: PerformanceReport
    outcome: VMEpochOutcome
    offered_load: float

    @property
    def counters(self) -> CounterSample:
        return self.outcome.counters


class Host:
    """One physical machine plus the hypervisor that runs VMs on it."""

    def __init__(
        self,
        name: str = "pm0",
        spec: MachineSpec = XEON_X5472,
        noise: float = 0.01,
        seed: Optional[int] = None,
        epoch_seconds: float = 1.0,
        substrate: str = "scalar",
        track_performance: bool = True,
        cache_demands: bool = False,
        history_limit: Optional[int] = None,
        history_mode: str = "lazy",
    ) -> None:
        if substrate not in ("scalar", "batch"):
            raise ValueError(f"unknown hardware substrate {substrate!r}")
        if history_limit is not None and history_limit < 1:
            raise ValueError("history_limit must be positive")
        if history_mode not in ("lazy", "eager"):
            raise ValueError(f"unknown history mode {history_mode!r}")
        self.name = name
        self.machine = PhysicalMachine(spec=spec, name=name, noise=noise, seed=seed)
        self.epoch_seconds = epoch_seconds
        #: Which hardware substrate :meth:`step` resolves contention
        #: through: the per-VM ``"scalar"`` reference or the vectorized
        #: ``"batch"`` path.  Both produce equivalent results (pinned by
        #: the substrate-equivalence property tests).
        self.substrate = substrate
        #: Whether to materialise per-VM ground-truth performance reports
        #: each epoch.  Fleet monitoring only consumes counters, so large
        #: simulations turn this off to keep the epoch loop lean.
        self.track_performance = track_performance
        #: Whether to reuse a VM's previous demand object when its load
        #: is unchanged.  Requires ``Workload.demand`` to be a pure
        #: function of the load (true for every built-in workload); leave
        #: off when workload parameters are mutated in place mid-run.
        self.cache_demands = cache_demands
        #: When set, per-VM counter/performance histories are trimmed to
        #: the last ``history_limit`` epochs (constant memory for long
        #: runs).  Must cover every window consumers read — the warning
        #: system's smoothing window and the analyzer's recent window.
        self.history_limit = history_limit
        #: ``"lazy"`` (default) serves per-VM counter histories from the
        #: columnar ring store, materialising ``CounterSample`` objects
        #: only on access; ``"eager"`` is the reference mode that
        #: materialises every epoch immediately (bit-identical contents,
        #: pinned by ``tests/property/test_lazy_history_equivalence.py``).
        self.history_mode = history_mode
        self._vms: Dict[str, VirtualMachine] = {}
        self._loads: Dict[str, float] = {}
        self._cpu_caps: Dict[str, float] = {}
        self._pinning: Dict[str, List[int]] = {}
        #: Columnar counter telemetry: batch epochs land here as raw
        #: ring-buffered blocks; per-VM sample histories are lazy views.
        self._counter_store = HostCounterStore(
            history_limit=history_limit, lazy=(history_mode == "lazy")
        )
        #: Ground-truth performance history per VM.
        self.performance_history: Dict[str, List[VMPerformance]] = {}
        self.current_epoch = 0
        #: Bumped on every placement mutation; lets the cluster and the
        #: batch substrate cache placement-derived structures.
        self.placement_version = 0
        #: Cached per-VM demand of the previous epoch, keyed by the
        #: (load, epoch_seconds) it was generated for.  ``Workload.demand``
        #: is a pure function of the load, so reusing the object skips the
        #: per-epoch demand regeneration for steady-load VMs.
        self._demand_cache: Dict[
            str, Tuple[float, float, ResourceDemand, Tuple[float, ...]]
        ] = {}
        #: Cached batch-substrate layout (placement version it was built at).
        self._batch_plan: Optional[Tuple[int, Tuple[str, ...], HostBatchPlan]] = None
        #: Bumped whenever a VM's offered load actually changes value;
        #: together with the placement version it keys the columnar
        #: demand-row cache (steady-load epochs reuse the packed matrix).
        self._loads_version = 0
        #: Cached columnar demand plan (placement version it was built at).
        self._demand_plan_cache: Optional[Tuple[int, HostDemandPlan]] = None
        #: Cache key (placement, loads, epoch_seconds) of the current
        #: packed demand-row matrix.
        self._demand_rows_key: Optional[Tuple[int, int, float]] = None
        #: Packed ``(n_vms, len(DEMAND_FIELDS))`` demand rows of the last
        #: :meth:`collect_demand_rows` call, plus the matching VM names
        #: and absolute offered loads.
        self._row_matrix: Optional[np.ndarray] = None
        self._demand_names: Tuple[str, ...] = ()
        self._offered_array: Optional[np.ndarray] = None
        self._offered_map_cache: Optional[Dict[str, float]] = None
        #: Whether the last :meth:`collect_demands` produced any demand
        #: that differs from the previous epoch's (steady-load epochs
        #: let the batch substrate reuse its packed demand matrix).
        self.demands_changed = True

    # ------------------------------------------------------------------
    # VM management
    # ------------------------------------------------------------------
    @property
    def vms(self) -> Dict[str, VirtualMachine]:
        """The VMs currently placed on this host (name -> VM)."""
        return dict(self._vms)

    def vm_names(self) -> List[str]:
        return sorted(self._vms)

    def has_vm(self, name: str) -> bool:
        return name in self._vms

    def get_vm(self, name: str) -> VirtualMachine:
        return self._vms[name]

    def add_vm(
        self,
        vm: VirtualMachine,
        load: float = 0.0,
        cpu_cap: float = 1.0,
        cores: Optional[Sequence[int]] = None,
    ) -> None:
        """Place a VM on this host.

        ``load`` is the initial offered load as a fraction of the
        workload's nominal load; ``cpu_cap`` in (0, 1] enforces a
        non-work-conserving CPU allocation (1.0 = uncapped).
        """
        if vm.name in self._vms:
            raise ValueError(f"VM {vm.name!r} already placed on host {self.name!r}")
        if not 0.0 < cpu_cap <= 1.0:
            raise ValueError("cpu_cap must be in (0, 1]")
        self._vms[vm.name] = vm
        self._loads[vm.name] = max(0.0, load)
        self._cpu_caps[vm.name] = cpu_cap
        if cores is not None:
            self._pinning[vm.name] = list(cores)
        self._counter_store.ensure(vm.name)
        self.performance_history.setdefault(vm.name, [])
        self.placement_version += 1
        vm.state = VMState.RUNNING

    def remove_vm(self, name: str) -> VirtualMachine:
        """Remove a VM from this host (its history is retained)."""
        if name not in self._vms:
            raise KeyError(f"VM {name!r} not on host {self.name!r}")
        vm = self._vms.pop(name)
        self._loads.pop(name, None)
        self._cpu_caps.pop(name, None)
        self._pinning.pop(name, None)
        self._demand_cache.pop(name, None)
        self.placement_version += 1
        return vm

    def set_load(self, name: str, load: float) -> None:
        """Update the offered load (fraction of nominal) for a VM."""
        if name not in self._vms:
            raise KeyError(f"VM {name!r} not on host {self.name!r}")
        load = max(0.0, load)
        if self._loads.get(name) != load:
            self._loads[name] = load
            self._loads_version += 1

    def get_load(self, name: str) -> float:
        return self._loads[name]

    def set_cpu_cap(self, name: str, cap: float) -> None:
        if not 0.0 < cap <= 1.0:
            raise ValueError("cpu_cap must be in (0, 1]")
        self._cpu_caps[name] = cap
        # Caps feed the (cached) batch-substrate inputs.
        self.placement_version += 1

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def collect_demands(
        self, loads: Optional[Mapping[str, float]] = None
    ) -> Tuple[Dict[str, ResourceDemand], Dict[str, float]]:
        """Gather every VM's demand and offered load for the next epoch.

        With ``cache_demands`` on, a VM whose load did not change reuses
        the previous epoch's (already validated) demand object —
        ``Workload.demand`` is a pure function of the offered load for
        every built-in workload.
        """
        if loads:
            for name, load in loads.items():
                self.set_load(name, load)

        demands: Dict[str, ResourceDemand] = {}
        offered: Dict[str, float] = {}
        cache = self._demand_cache
        reuse = self.cache_demands
        changed = False
        for name, vm in self._vms.items():
            frac = self._loads.get(name, 0.0)
            absolute_load = frac * vm.workload.nominal_load
            offered[name] = absolute_load
            cached = cache.get(name) if reuse else None
            if (
                cached is not None
                and cached[0] == absolute_load
                and cached[1] == self.epoch_seconds
            ):
                demands[name] = cached[2]
            else:
                changed = True
                demand = vm.demand(absolute_load, epoch_seconds=self.epoch_seconds)
                demand.validate()
                cache[name] = (
                    absolute_load,
                    self.epoch_seconds,
                    demand,
                    pack_demand(demand),
                )
                demands[name] = demand
        self.demands_changed = changed
        return demands, offered

    def demand_rows(self) -> List[Tuple[float, ...]]:
        """The packed demand rows of the last :meth:`collect_demands` call."""
        return [self._demand_cache[name][3] for name in self._vms]

    # ------------------------------------------------------------------
    # Columnar demand generation (batch-substrate epoch edge)
    # ------------------------------------------------------------------
    def _demand_plan(self) -> HostDemandPlan:
        cached = self._demand_plan_cache
        if cached is not None and cached[0] == self.placement_version:
            return cached[1]
        names = tuple(self._vms)
        nominal = np.array(
            [vm.workload.nominal_load for vm in self._vms.values()], dtype=float
        )
        group_rows: Dict[object, List[int]] = {}
        representatives: Dict[object, Workload] = {}
        scalar_vms: List[Tuple[int, VirtualMachine]] = []
        for i, vm in enumerate(self._vms.values()):
            key = vm.workload.batch_key()
            if key is None:
                scalar_vms.append((i, vm))
            else:
                group_rows.setdefault(key, []).append(i)
                representatives.setdefault(key, vm.workload)
        plan = HostDemandPlan(
            names=names,
            nominal=nominal,
            groups=[
                (representatives[key], np.asarray(rows, dtype=np.intp))
                for key, rows in group_rows.items()
            ],
            scalar_vms=scalar_vms,
        )
        self._demand_plan_cache = (self.placement_version, plan)
        return plan

    def collect_demand_rows(
        self, loads: Optional[Mapping[str, float]] = None
    ) -> None:
        """Refresh the packed demand-row matrix for the next batch epoch.

        The columnar counterpart of :meth:`collect_demands`: per-epoch
        demand for the whole host is produced group-wise through
        ``Workload.demand_batch`` (one array op per distinct workload
        configuration) instead of one Python ``demand`` call per VM, and
        steady-load epochs reuse the cached matrix outright.  Requires
        ``cache_demands`` semantics — ``Workload.demand`` must be a pure
        function of the load — so hosts constructed with
        ``cache_demands=False`` fall back to :meth:`collect_demands`.

        Afterwards :meth:`demand_row_matrix`, :meth:`offered_map` and
        :attr:`demands_changed` describe the epoch.
        """
        if not self.cache_demands:
            demands, offered = self.collect_demands(loads)
            rows = self.demand_rows()
            self._demand_names = tuple(demands)
            self._row_matrix = (
                np.asarray(rows, dtype=float)
                if rows
                else np.empty((0, len(DEMAND_FIELDS)), dtype=float)
            )
            self._offered_array = None
            self._offered_map_cache = dict(offered)
            self._demand_rows_key = None
            return
        if loads:
            for name, load in loads.items():
                self.set_load(name, load)
        key = (self.placement_version, self._loads_version, self.epoch_seconds)
        if key == self._demand_rows_key:
            self.demands_changed = False
            return
        plan = self._demand_plan()
        n = len(plan.names)
        frac = np.fromiter(
            (self._loads.get(name, 0.0) for name in plan.names), dtype=float, count=n
        )
        offered = frac * plan.nominal
        rows = np.empty((n, len(DEMAND_FIELDS)), dtype=float)
        for workload, indices in plan.groups:
            rows[indices] = workload.demand_batch(
                offered[indices], epoch_seconds=self.epoch_seconds
            )
        for i, vm in plan.scalar_vms:
            demand = vm.demand(float(offered[i]), epoch_seconds=self.epoch_seconds)
            demand.validate()
            rows[i] = pack_demand(demand)
        self._demand_names = plan.names
        self._row_matrix = rows
        self._offered_array = offered
        self._offered_map_cache = None
        self._demand_rows_key = key
        self.demands_changed = True

    def demand_row_matrix(self) -> np.ndarray:
        """The packed rows of the last :meth:`collect_demand_rows` call."""
        if self._row_matrix is None:
            raise RuntimeError("collect_demand_rows() has not run yet")
        return self._row_matrix

    def offered_map(self) -> Dict[str, float]:
        """Absolute offered load per VM for the collected epoch."""
        if self._offered_map_cache is None:
            if self._offered_array is None:
                raise RuntimeError("collect_demand_rows() has not run yet")
            self._offered_map_cache = dict(
                zip(self._demand_names, self._offered_array.tolist())
            )
        return self._offered_map_cache

    def core_assignment_for(
        self, demands: Mapping[str, ResourceDemand]
    ) -> Optional[Dict[str, List[int]]]:
        """Explicit vCPU pinning merged over the default assignment."""
        if not self._pinning:
            return None
        core_assignment = self.machine.default_core_assignment(demands)
        core_assignment.update(
            {n: cores for n, cores in self._pinning.items() if n in demands}
        )
        return core_assignment

    def batch_plan_current(self) -> HostBatchPlan:
        """The (cached) batch layout of the current placement.

        Demand-object-free equivalent of :meth:`batch_plan`: the layout
        depends only on the VM set, vCPU allocations and pinning, all of
        which the host knows without generating demands (the hypervisor
        schedules ``vm.vcpus`` regardless of what the workload asks for).
        """
        names = tuple(self._vms)
        cached = self._batch_plan
        if (
            cached is not None
            and cached[0] == self.placement_version
            and cached[1] == names
        ):
            return cached[2]
        vcpus = {name: vm.vcpus for name, vm in self._vms.items()}
        core_assignment = None
        if self._pinning:
            core_assignment = self.machine.core_assignment_for_vcpus(vcpus)
            core_assignment.update(
                {n: cores for n, cores in self._pinning.items() if n in vcpus}
            )
        plan = self.machine.batch_plan_for_vcpus(
            vcpus, core_assignment=core_assignment
        )
        self._batch_plan = (self.placement_version, names, plan)
        return plan

    def cpu_cap_values(self) -> List[float]:
        """Per-VM CPU caps in placement order (batch-substrate input)."""
        return [self._cpu_caps.get(name, 1.0) for name in self._vms]

    def commit_epoch(
        self,
        outcomes: Mapping[str, VMEpochOutcome],
        offered: Mapping[str, float],
        counter_block: Optional[Tuple[Tuple[str, ...], np.ndarray]] = None,
    ) -> Dict[str, VMPerformance]:
        """Record one epoch's outcomes into the host's histories.

        ``counter_block`` optionally carries the epoch's raw counters as
        one ``(vm_names, matrix)`` pair (the batch substrate provides it
        for free): the block is ingested into the columnar counter store
        directly and no per-VM sample is recorded — the store serves
        bit-identical samples lazily.  Without a block (the scalar
        substrate), the already materialised samples are appended.
        """
        performances: Dict[str, VMPerformance] = {}
        if counter_block is not None:
            names, block = counter_block
            self._counter_store.ingest(names, block, self.epoch_seconds)
        else:
            self._counter_store.append_samples(
                {name: outcomes[name].counters for name in self._vms}
            )
        if self.track_performance:
            for name, vm in self._vms.items():
                outcome = outcomes[name]
                report = vm.workload.performance(
                    load=offered[name],
                    instructions_demanded=outcome.instructions_demanded,
                    instructions_retired=outcome.instructions_retired,
                    epoch_seconds=self.epoch_seconds,
                    instructions_attainable=outcome.instructions_attainable,
                )
                perf = VMPerformance(
                    report=report, outcome=outcome, offered_load=offered[name]
                )
                performances[name] = perf
                self.performance_history[name].append(perf)
        self._trim_histories()
        self.current_epoch += 1
        return performances

    def _trim_histories(self) -> None:
        """Amortised performance-history trim (counter histories trim
        inside the columnar store); no-op without a ``history_limit``."""
        limit = self.history_limit
        if limit is None:
            return
        for history in self.performance_history.values():
            if len(history) > 2 * limit:
                del history[: len(history) - limit]

    def commit_epoch_block(
        self, names: Tuple[str, ...], block: np.ndarray
    ) -> None:
        """Lean epoch commit: one ring ingest, zero per-VM work.

        Used by the batch substrate when ``track_performance`` is off —
        the monitoring pipeline only ever reads counter windows, which
        the store serves columnar, so the fleet epoch edge is a single
        array assignment per host.
        """
        self._counter_store.ingest(names, block, self.epoch_seconds)
        self.current_epoch += 1

    def step(
        self, loads: Optional[Mapping[str, float]] = None
    ) -> Dict[str, VMPerformance]:
        """Advance the host by one epoch.

        Parameters
        ----------
        loads:
            Optional per-VM offered load overrides (fractions of each
            VM's nominal load) for this epoch only.

        Returns
        -------
        dict
            Per-VM ground-truth performance and counters for the epoch
            (empty when ``track_performance`` is off).
        """
        demands, offered = self.collect_demands(loads)
        if self.substrate == "batch":
            result = self.machine.run_epoch_batch(
                demands,
                epoch_seconds=self.epoch_seconds,
                core_assignment=self.core_assignment_for(demands),
                cpu_caps=self._cpu_caps,
            )
        else:
            result = self.machine.run_epoch(
                demands,
                epoch_seconds=self.epoch_seconds,
                core_assignment=self.core_assignment_for(demands),
                cpu_caps=self._cpu_caps,
            )
        return self.commit_epoch(result.per_vm, offered)

    # ------------------------------------------------------------------
    # Introspection used by DeepDive
    # ------------------------------------------------------------------
    @property
    def counter_store(self) -> HostCounterStore:
        """The host's columnar counter telemetry (ring + lazy histories)."""
        return self._counter_store

    @property
    def counter_history(self) -> CounterHistoryView:
        """Per-VM counter histories (most recent last), as a lazy mapping.

        Behaves like the former ``Dict[str, List[CounterSample]]`` —
        iteration, ``.get``/``.items``, per-VM ``len``/indexing/slicing —
        but samples recorded by batch epochs materialise only when a
        scalar path, report or example actually indexes them.
        """
        return self._counter_store.histories

    def latest_counters(self, name: str) -> Optional[CounterSample]:
        """The most recent counter sample for a VM, or None before the first epoch."""
        return self._counter_store.latest_sample(name)

    def latest_performance(self, name: str) -> Optional[VMPerformance]:
        history = self.performance_history.get(name, [])
        return history[-1] if history else None

    def colocated_with(self, name: str) -> List[str]:
        """Names of the other VMs currently sharing this host."""
        return [n for n in self._vms if n != name]

    def utilization_summary(self) -> Dict[str, float]:
        """Coarse utilisation summary used by the placement manager."""
        total_vcpus = sum(vm.vcpus for vm in self._vms.values())
        total_memory = sum(vm.memory_gb for vm in self._vms.values())
        return {
            "vcpus_used": float(total_vcpus),
            "vcpus_total": float(self.machine.spec.architecture.cores),
            "memory_used_gb": float(total_memory),
            "memory_total_gb": float(self.machine.spec.dram_gb),
        }

    def can_fit(self, vm: VirtualMachine) -> bool:
        """Whether the host has spare vCPU and memory capacity for ``vm``."""
        summary = self.utilization_summary()
        return (
            summary["vcpus_used"] + vm.vcpus <= summary["vcpus_total"]
            and summary["memory_used_gb"] + vm.memory_gb <= summary["memory_total_gb"]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Host(name={self.name!r}, vms={sorted(self._vms)})"
