"""The hypervisor / host model.

A :class:`Host` couples one :class:`~repro.hardware.machine.PhysicalMachine`
with the set of VMs placed on it.  Each epoch, the host collects every
VM's resource demand (given its current offered load), resolves
contention through the hardware substrate, and records:

* the per-VM raw counter samples — the *only* thing DeepDive sees;
* the per-VM client-visible performance — ground truth used solely by
  the evaluation harness to score DeepDive's estimates.

The host also supports per-VM CPU caps (the sandbox's non-work-conserving
schedulers) and explicit core pinning, mirroring the testbed setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.hardware.machine import EpochResult, PhysicalMachine, VMEpochOutcome
from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample
from repro.virt.vm import VirtualMachine, VMState
from repro.workloads.base import PerformanceReport


@dataclass
class VMPerformance:
    """Ground-truth record for one VM over one epoch."""

    report: PerformanceReport
    outcome: VMEpochOutcome
    offered_load: float

    @property
    def counters(self) -> CounterSample:
        return self.outcome.counters


class Host:
    """One physical machine plus the hypervisor that runs VMs on it."""

    def __init__(
        self,
        name: str = "pm0",
        spec: MachineSpec = XEON_X5472,
        noise: float = 0.01,
        seed: Optional[int] = None,
        epoch_seconds: float = 1.0,
    ) -> None:
        self.name = name
        self.machine = PhysicalMachine(spec=spec, name=name, noise=noise, seed=seed)
        self.epoch_seconds = epoch_seconds
        self._vms: Dict[str, VirtualMachine] = {}
        self._loads: Dict[str, float] = {}
        self._cpu_caps: Dict[str, float] = {}
        self._pinning: Dict[str, List[int]] = {}
        #: Counter history per VM (most recent last).
        self.counter_history: Dict[str, List[CounterSample]] = {}
        #: Ground-truth performance history per VM.
        self.performance_history: Dict[str, List[VMPerformance]] = {}
        self.current_epoch = 0

    # ------------------------------------------------------------------
    # VM management
    # ------------------------------------------------------------------
    @property
    def vms(self) -> Dict[str, VirtualMachine]:
        """The VMs currently placed on this host (name -> VM)."""
        return dict(self._vms)

    def vm_names(self) -> List[str]:
        return sorted(self._vms)

    def has_vm(self, name: str) -> bool:
        return name in self._vms

    def get_vm(self, name: str) -> VirtualMachine:
        return self._vms[name]

    def add_vm(
        self,
        vm: VirtualMachine,
        load: float = 0.0,
        cpu_cap: float = 1.0,
        cores: Optional[Sequence[int]] = None,
    ) -> None:
        """Place a VM on this host.

        ``load`` is the initial offered load as a fraction of the
        workload's nominal load; ``cpu_cap`` in (0, 1] enforces a
        non-work-conserving CPU allocation (1.0 = uncapped).
        """
        if vm.name in self._vms:
            raise ValueError(f"VM {vm.name!r} already placed on host {self.name!r}")
        if not 0.0 < cpu_cap <= 1.0:
            raise ValueError("cpu_cap must be in (0, 1]")
        self._vms[vm.name] = vm
        self._loads[vm.name] = max(0.0, load)
        self._cpu_caps[vm.name] = cpu_cap
        if cores is not None:
            self._pinning[vm.name] = list(cores)
        self.counter_history.setdefault(vm.name, [])
        self.performance_history.setdefault(vm.name, [])
        vm.state = VMState.RUNNING

    def remove_vm(self, name: str) -> VirtualMachine:
        """Remove a VM from this host (its history is retained)."""
        if name not in self._vms:
            raise KeyError(f"VM {name!r} not on host {self.name!r}")
        vm = self._vms.pop(name)
        self._loads.pop(name, None)
        self._cpu_caps.pop(name, None)
        self._pinning.pop(name, None)
        return vm

    def set_load(self, name: str, load: float) -> None:
        """Update the offered load (fraction of nominal) for a VM."""
        if name not in self._vms:
            raise KeyError(f"VM {name!r} not on host {self.name!r}")
        self._loads[name] = max(0.0, load)

    def get_load(self, name: str) -> float:
        return self._loads[name]

    def set_cpu_cap(self, name: str, cap: float) -> None:
        if not 0.0 < cap <= 1.0:
            raise ValueError("cpu_cap must be in (0, 1]")
        self._cpu_caps[name] = cap

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(
        self, loads: Optional[Mapping[str, float]] = None
    ) -> Dict[str, VMPerformance]:
        """Advance the host by one epoch.

        Parameters
        ----------
        loads:
            Optional per-VM offered load overrides (fractions of each
            VM's nominal load) for this epoch only.

        Returns
        -------
        dict
            Per-VM ground-truth performance and counters for the epoch.
        """
        if loads:
            for name, load in loads.items():
                self.set_load(name, load)

        demands = {}
        offered: Dict[str, float] = {}
        for name, vm in self._vms.items():
            frac = self._loads.get(name, 0.0)
            absolute_load = frac * vm.workload.nominal_load
            offered[name] = absolute_load
            demands[name] = vm.demand(absolute_load, epoch_seconds=self.epoch_seconds)

        core_assignment = None
        if self._pinning:
            core_assignment = self.machine.default_core_assignment(demands)
            core_assignment.update(
                {n: cores for n, cores in self._pinning.items() if n in demands}
            )

        result = self.machine.run_epoch(
            demands,
            epoch_seconds=self.epoch_seconds,
            core_assignment=core_assignment,
            cpu_caps=self._cpu_caps,
        )
        performances: Dict[str, VMPerformance] = {}
        for name, vm in self._vms.items():
            outcome = result.per_vm[name]
            report = vm.workload.performance(
                load=offered[name],
                instructions_demanded=outcome.instructions_demanded,
                instructions_retired=outcome.instructions_retired,
                epoch_seconds=self.epoch_seconds,
                instructions_attainable=outcome.instructions_attainable,
            )
            perf = VMPerformance(report=report, outcome=outcome, offered_load=offered[name])
            performances[name] = perf
            self.counter_history[name].append(outcome.counters)
            self.performance_history[name].append(perf)
        self.current_epoch += 1
        return performances

    # ------------------------------------------------------------------
    # Introspection used by DeepDive
    # ------------------------------------------------------------------
    def latest_counters(self, name: str) -> Optional[CounterSample]:
        """The most recent counter sample for a VM, or None before the first epoch."""
        history = self.counter_history.get(name, [])
        return history[-1] if history else None

    def latest_performance(self, name: str) -> Optional[VMPerformance]:
        history = self.performance_history.get(name, [])
        return history[-1] if history else None

    def colocated_with(self, name: str) -> List[str]:
        """Names of the other VMs currently sharing this host."""
        return [n for n in self._vms if n != name]

    def utilization_summary(self) -> Dict[str, float]:
        """Coarse utilisation summary used by the placement manager."""
        total_vcpus = sum(vm.vcpus for vm in self._vms.values())
        total_memory = sum(vm.memory_gb for vm in self._vms.values())
        return {
            "vcpus_used": float(total_vcpus),
            "vcpus_total": float(self.machine.spec.architecture.cores),
            "memory_used_gb": float(total_memory),
            "memory_total_gb": float(self.machine.spec.dram_gb),
        }

    def can_fit(self, vm: VirtualMachine) -> bool:
        """Whether the host has spare vCPU and memory capacity for ``vm``."""
        summary = self.utilization_summary()
        return (
            summary["vcpus_used"] + vm.vcpus <= summary["vcpus_total"]
            and summary["memory_used_gb"] + vm.memory_gb <= summary["memory_total_gb"]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Host(name={self.name!r}, vms={sorted(self._vms)})"
