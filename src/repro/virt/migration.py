"""Live-migration model.

Migrating a VM is the action of last resort: the placement manager only
issues it after the synthetic benchmark has vetted the destination.  The
cost model follows the standard pre-copy analysis — total bytes moved
are the memory image plus dirty-page retransmissions that depend on the
write rate, divided by the migration link bandwidth — and is only used
for accounting (how long the migration takes, how long the brief
stop-and-copy pause is).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.virt.vm import VirtualMachine, VMState


@dataclass
class MigrationRecord:
    """Bookkeeping for one completed migration."""

    vm_name: str
    source: str
    destination: str
    total_seconds: float
    downtime_seconds: float
    transferred_gb: float


class MigrationEngine:
    """Pre-copy live-migration cost model and history."""

    def __init__(
        self,
        link_gbps: float = 1.0,
        dirty_rate_gbps: float = 0.1,
        precopy_rounds: int = 3,
        stop_copy_threshold_gb: float = 0.05,
    ) -> None:
        if link_gbps <= 0:
            raise ValueError("link_gbps must be positive")
        if dirty_rate_gbps < 0:
            raise ValueError("dirty_rate_gbps must be non-negative")
        if precopy_rounds < 1:
            raise ValueError("precopy_rounds must be at least 1")
        self.link_gbps = link_gbps
        self.dirty_rate_gbps = dirty_rate_gbps
        self.precopy_rounds = precopy_rounds
        self.stop_copy_threshold_gb = stop_copy_threshold_gb
        self.history: List[MigrationRecord] = []

    def estimate(self, vm: VirtualMachine) -> MigrationRecord:
        """Estimate the cost of migrating ``vm`` without recording it."""
        remaining_gb = vm.memory_gb
        transferred_gb = 0.0
        total_seconds = 0.0
        link_gBps = self.link_gbps / 8.0
        dirty_gBps = self.dirty_rate_gbps / 8.0
        for _ in range(self.precopy_rounds):
            round_seconds = remaining_gb / link_gBps
            transferred_gb += remaining_gb
            total_seconds += round_seconds
            remaining_gb = min(remaining_gb, dirty_gBps * round_seconds)
            if remaining_gb <= self.stop_copy_threshold_gb:
                break
        downtime = remaining_gb / link_gBps
        transferred_gb += remaining_gb
        total_seconds += downtime
        return MigrationRecord(
            vm_name=vm.name,
            source="",
            destination="",
            total_seconds=total_seconds,
            downtime_seconds=downtime,
            transferred_gb=transferred_gb,
        )

    def migrate(
        self, vm: VirtualMachine, source: str, destination: str
    ) -> MigrationRecord:
        """Record a migration of ``vm`` from ``source`` to ``destination``."""
        estimate = self.estimate(vm)
        record = MigrationRecord(
            vm_name=vm.name,
            source=source,
            destination=destination,
            total_seconds=estimate.total_seconds,
            downtime_seconds=estimate.downtime_seconds,
            transferred_gb=estimate.transferred_gb,
        )
        vm.state = VMState.RUNNING
        self.history.append(record)
        return record

    @property
    def total_migration_seconds(self) -> float:
        return sum(r.total_seconds for r in self.history)

    @property
    def migrations_performed(self) -> int:
        return len(self.history)
