"""Virtualisation substrate.

Models the pieces of the paper's testbed that sit between the hardware
and DeepDive: virtual machines, the hypervisor that pins vCPUs and
virtualises the low-level counters per VM, the cluster of physical
machines, VM cloning, the sandboxed profiling environment with
non-work-conserving schedulers, the request-duplicating proxy, and live
migration.
"""

from repro.virt.vm import VirtualMachine, VMState
from repro.virt.vmm import Host, VMPerformance
from repro.virt.cluster import Cluster
from repro.virt.cloning import CloneManager, CloneHandle
from repro.virt.sandbox import SandboxEnvironment, SandboxRun
from repro.virt.proxy import RequestProxy
from repro.virt.migration import MigrationEngine, MigrationRecord

__all__ = [
    "VirtualMachine",
    "VMState",
    "Host",
    "VMPerformance",
    "Cluster",
    "CloneManager",
    "CloneHandle",
    "SandboxEnvironment",
    "SandboxRun",
    "RequestProxy",
    "MigrationEngine",
    "MigrationRecord",
]
