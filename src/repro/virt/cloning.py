"""On-demand VM cloning.

The analyzer clones a VM into the sandbox before profiling it.  The
amount of time the clone takes depends on the VM's state size (memory
footprint plus any disk state that must be copied or made available via
copy-on-write); the paper notes the cloning time is typically small
compared to the analyzer's invocation frequency, but it still counts
toward the profiling cost accounted in the overhead study (Figure 12).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.virt.vm import VirtualMachine, VMState


@dataclass
class CloneHandle:
    """Bookkeeping for one clone operation."""

    clone: VirtualMachine
    source_name: str
    #: Seconds the cloning itself took (state transfer).
    clone_seconds: float


class CloneManager:
    """Creates sandbox clones and accounts for their cost."""

    def __init__(
        self,
        network_gbps: float = 1.0,
        cow_disk: bool = True,
        base_overhead_seconds: float = 2.0,
    ) -> None:
        """
        Parameters
        ----------
        network_gbps:
            Bandwidth available for transferring the VM's memory image to
            the sandbox host.
        cow_disk:
            When true, disk state is shared copy-on-write and does not
            need to be transferred.
        base_overhead_seconds:
            Fixed per-clone management overhead (snapshotting, domain
            creation).
        """
        if network_gbps <= 0:
            raise ValueError("network_gbps must be positive")
        self.network_gbps = network_gbps
        self.cow_disk = cow_disk
        self.base_overhead_seconds = base_overhead_seconds
        self._counter = itertools.count()
        #: Total seconds spent cloning since construction.
        self.total_clone_seconds = 0.0
        self.clones_created = 0

    def clone_seconds_for(self, vm: VirtualMachine) -> float:
        """Estimate the time to clone ``vm`` into the sandbox."""
        memory_gbit = vm.memory_gb * 8.0
        transfer = memory_gbit / self.network_gbps
        disk_penalty = 0.0 if self.cow_disk else 30.0
        return self.base_overhead_seconds + transfer + disk_penalty

    def clone(
        self, vm: VirtualMachine, clone_name: Optional[str] = None
    ) -> CloneHandle:
        """Create a clone of ``vm`` ready to run in the sandbox."""
        name = clone_name or f"{vm.name}-clone-{next(self._counter)}"
        clone = vm.clone(clone_name=name)
        clone.state = VMState.RUNNING
        seconds = self.clone_seconds_for(vm)
        self.total_clone_seconds += seconds
        self.clones_created += 1
        return CloneHandle(clone=clone, source_name=vm.name, clone_seconds=seconds)
