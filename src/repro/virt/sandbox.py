"""The sandboxed profiling environment.

The analyzer runs a VM's clone on a dedicated profiling server whose
schedulers are non-work-conserving, so the clone receives exactly its
nominal resource allocation and nothing competes with it — that run is
the "isolation" half of the production-vs-isolation comparison that
yields the ground truth about interference.

:class:`SandboxEnvironment` manages a small pool of profiling hosts (the
paper shows that a handful suffice even for aggressive arrival rates),
runs clones under the duplicated load stream from the
:class:`~repro.virt.proxy.RequestProxy`, and returns aggregate isolation
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample
from repro.metrics.normalization import aggregate_samples
from repro.virt.cloning import CloneHandle, CloneManager
from repro.virt.proxy import RequestProxy
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host, VMPerformance


@dataclass
class SandboxRun:
    """Result of profiling one VM clone in the sandbox."""

    vm_name: str
    clone_name: str
    #: Aggregate isolation counters over the profiling window.
    counters: CounterSample
    #: Per-epoch isolation counters.
    epoch_counters: List[CounterSample]
    #: Per-epoch ground-truth performance of the clone (evaluation only).
    performances: List[VMPerformance]
    #: Seconds spent cloning the VM.
    clone_seconds: float
    #: Seconds spent running the clone in the sandbox.
    run_seconds: float
    #: The loads replayed to the clone, one per epoch.
    replayed_loads: List[float]

    @property
    def total_seconds(self) -> float:
        """Total profiling cost of this run (cloning + execution)."""
        return self.clone_seconds + self.run_seconds


class SandboxEnvironment:
    """A pool of dedicated profiling hosts with tightly controlled allocation."""

    def __init__(
        self,
        num_hosts: int = 1,
        spec: MachineSpec = XEON_X5472,
        epoch_seconds: float = 1.0,
        profile_epochs: int = 30,
        noise: float = 0.005,
        seed: Optional[int] = None,
        clone_manager: Optional[CloneManager] = None,
    ) -> None:
        if num_hosts < 1:
            raise ValueError("the sandbox needs at least one profiling host")
        if profile_epochs < 1:
            raise ValueError("profile_epochs must be positive")
        self.spec = spec
        self.epoch_seconds = epoch_seconds
        self.profile_epochs = profile_epochs
        self.noise = noise
        self._seed = seed
        self.hosts: List[Host] = [
            Host(
                name=f"sandbox{i}",
                spec=spec,
                noise=noise,
                seed=None if seed is None else seed + i,
                epoch_seconds=epoch_seconds,
            )
            for i in range(num_hosts)
        ]
        self.clone_manager = clone_manager or CloneManager()
        self._next_host = 0
        #: Total profiling time accumulated across all runs (seconds).
        self.total_profiling_seconds = 0.0
        self.runs_completed = 0

    # ------------------------------------------------------------------
    def _pick_host(self) -> Host:
        host = self.hosts[self._next_host % len(self.hosts)]
        self._next_host += 1
        return host

    def profile(
        self,
        vm: VirtualMachine,
        proxy: Optional[RequestProxy] = None,
        loads: Optional[Sequence[float]] = None,
        cpu_cap: float = 1.0,
        profile_epochs: Optional[int] = None,
    ) -> SandboxRun:
        """Clone ``vm`` and run it in isolation under the duplicated load.

        Exactly one of ``proxy`` or ``loads`` should supply the load
        stream; if both are given the explicit ``loads`` win, and if
        neither is given the clone runs at the VM workload's most recent
        nominal load (1.0).
        """
        epochs = profile_epochs or self.profile_epochs
        handle: CloneHandle = self.clone_manager.clone(vm)
        host = self._pick_host()

        replayed: List[float] = []
        if loads is not None:
            replayed = [float(x) for x in loads][:epochs]
        elif proxy is not None:
            for _ in range(epochs):
                value = proxy.next_load_for(handle.clone.name) if (
                    handle.clone.name in proxy.mirrors()
                ) else None
                if value is None:
                    value = proxy.latest_load()
                replayed.append(1.0 if value is None else float(value))
        if not replayed:
            replayed = [1.0] * epochs
        while len(replayed) < epochs:
            replayed.append(replayed[-1])

        host.add_vm(handle.clone, load=replayed[0], cpu_cap=cpu_cap)
        epoch_counters: List[CounterSample] = []
        performances: List[VMPerformance] = []
        try:
            for epoch, load in enumerate(replayed):
                host.set_load(handle.clone.name, load)
                results = host.step()
                perf = results[handle.clone.name]
                epoch_counters.append(perf.counters)
                performances.append(perf)
        finally:
            host.remove_vm(handle.clone.name)

        aggregate = aggregate_samples(epoch_counters)
        run_seconds = len(replayed) * self.epoch_seconds
        self.total_profiling_seconds += handle.clone_seconds + run_seconds
        self.runs_completed += 1
        return SandboxRun(
            vm_name=vm.name,
            clone_name=handle.clone.name,
            counters=aggregate,
            epoch_counters=epoch_counters,
            performances=performances,
            clone_seconds=handle.clone_seconds,
            run_seconds=run_seconds,
            replayed_loads=replayed,
        )

    # ------------------------------------------------------------------
    def profile_colocated(
        self,
        vm: VirtualMachine,
        background: Dict[VirtualMachine, float],
        loads: Sequence[float],
        cpu_cap: float = 1.0,
    ) -> SandboxRun:
        """Run a VM together with explicit background VMs in the sandbox.

        The placement manager uses this to evaluate what would happen on
        a candidate destination PM: the candidate's current VMs are the
        ``background`` (with their current loads) and ``vm`` is the
        synthetic representation of the VM being migrated.
        """
        epochs = len(loads)
        if epochs == 0:
            raise ValueError("loads must contain at least one epoch")
        handle = self.clone_manager.clone(vm)
        host = self._pick_host()
        host.add_vm(handle.clone, load=float(loads[0]), cpu_cap=cpu_cap)
        for bg_vm, bg_load in background.items():
            host.add_vm(bg_vm.clone(f"{bg_vm.name}-bg-{host.name}"), load=bg_load)

        epoch_counters: List[CounterSample] = []
        performances: List[VMPerformance] = []
        try:
            for epoch, load in enumerate(loads):
                host.set_load(handle.clone.name, float(load))
                results = host.step()
                perf = results[handle.clone.name]
                epoch_counters.append(perf.counters)
                performances.append(perf)
        finally:
            for name in list(host.vms):
                host.remove_vm(name)

        aggregate = aggregate_samples(epoch_counters)
        run_seconds = epochs * self.epoch_seconds
        self.total_profiling_seconds += handle.clone_seconds + run_seconds
        self.runs_completed += 1
        return SandboxRun(
            vm_name=vm.name,
            clone_name=handle.clone.name,
            counters=aggregate,
            epoch_counters=epoch_counters,
            performances=performances,
            clone_seconds=handle.clone_seconds,
            run_seconds=run_seconds,
            replayed_loads=[float(x) for x in loads],
        )
