"""A cluster of production hosts.

The cluster ties the per-host simulation together: it steps every host
each epoch, exposes the global view the warning system's "global
information" path needs (which VMs run the same application code on
which hosts), and executes migrations decided by the placement manager.

Two hardware substrates drive the per-epoch simulation:

* ``substrate="scalar"`` steps each host through the per-VM reference
  model (:meth:`~repro.virt.vmm.Host.step`);
* ``substrate="batch"`` (the default) resolves one epoch for **all VMs
  on all hosts at once** through the vectorized contention substrate
  (:mod:`repro.hardware.batch`), emitting the same counter samples and
  additionally recording a columnar per-epoch counter block that feeds
  the monitoring pipeline's :class:`~repro.metrics.matrix.MetricMatrix`
  without per-VM dictionary materialisation.

Both substrates are equivalent (same formulas, same noise draws; pinned
by ``tests/property/test_substrate_equivalence.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.hardware.batch import (
    N_COUNTERS,
    BatchBuffers,
    ClusterLayout,
    DemandMatrix,
    simulate_epoch_batch,
)
from repro.hardware.machine import outcome_from_batch
from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample
from repro.virt.migration import MigrationEngine, MigrationRecord
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host, VMPerformance


@dataclass
class CounterWindowView:
    """Columnar view of every VM's newest counters and smoothing window.

    ``latest`` and ``window_sum`` are raw ``(n, len(COUNTER_NAMES))``
    counter matrices (Table-1 column order): row ``i`` belongs to
    ``vm_names[i]``, ``window_sum[i]`` is the left-fold sum of the VM's
    last ``window`` epoch samples — exactly what the scalar path's
    ``aggregate_samples(history[-window:])`` computes.
    """

    vm_names: Tuple[str, ...]
    latest: np.ndarray
    window_sum: np.ndarray
    index: Dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.index = {name: i for i, name in enumerate(self.vm_names)}

    def __contains__(self, vm_name: str) -> bool:
        return vm_name in self.index


#: One batch-substrate execution group: hosts sharing a machine spec and
#: epoch length, with their assembled cluster layout.
BatchGroup = Tuple[
    MachineSpec, float, List[Tuple[str, "Host", Tuple[str, ...]]], ClusterLayout
]


class Cluster:
    """A set of production hosts plus the migration machinery."""

    def __init__(
        self,
        num_hosts: int = 1,
        spec: MachineSpec = XEON_X5472,
        epoch_seconds: float = 1.0,
        noise: float = 0.01,
        seed: Optional[int] = None,
        migration_engine: Optional[MigrationEngine] = None,
        host_prefix: str = "pm",
        substrate: str = "batch",
        track_performance: bool = True,
        cache_demands: bool = False,
        history_limit: Optional[int] = None,
        history_mode: str = "lazy",
    ) -> None:
        if num_hosts < 1:
            raise ValueError("a cluster needs at least one host")
        if substrate not in ("scalar", "batch"):
            raise ValueError(f"unknown hardware substrate {substrate!r}")
        self.epoch_seconds = epoch_seconds
        self.substrate = substrate
        self.hosts: Dict[str, Host] = {}
        for i in range(num_hosts):
            name = f"{host_prefix}{i}"
            self.hosts[name] = Host(
                name=name,
                spec=spec,
                noise=noise,
                seed=None if seed is None else seed + i,
                epoch_seconds=epoch_seconds,
                substrate=substrate,
                track_performance=track_performance,
                cache_demands=cache_demands,
                history_limit=history_limit,
                history_mode=history_mode,
            )
        self.migration_engine = migration_engine or MigrationEngine()
        #: Hosts currently out of service for maintenance.  Every
        #: placement flow respects it: the lifecycle engine's admission
        #: and drain evacuations, and the placement manager's
        #: mitigation migrations (:meth:`PlacementManager.resolve_interference`
        #: skips drained candidates).  Simulation still steps drained
        #: hosts (they may hold stranded VMs until capacity appears).
        self.drained_hosts: set = set()
        self.current_epoch = 0
        #: Cached VM -> (host, VM) placement map plus the placement
        #: signature it was built at (see :meth:`_placement_signature`).
        self._placement_cache: Optional[Dict[str, Tuple[str, VirtualMachine]]] = None
        self._placement_signature_cached: Tuple[int, int] = (-1, -1)
        #: Cached batch-substrate spec groups + assembled layouts.
        self._batch_groups = None
        #: Cached packed demand matrices per group (steady-load epochs).
        self._batch_matrix_cache: Dict[int, Tuple[DemandMatrix, np.ndarray]] = {}
        #: Reusable batch-substrate output buffers per group (steady
        #: placements stop reallocating the epoch's counter matrix).
        self._batch_buffers: Dict[int, BatchBuffers] = {}
        #: Hosts already warned about a history_limit shorter than a
        #: requested monitoring window (one warning per host).
        self._short_history_warned: set = set()

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def host_names(self) -> List[str]:
        return sorted(self.hosts)

    def get_host(self, name: str) -> Host:
        return self.hosts[name]

    def add_host(self, host: Host) -> None:
        if host.name in self.hosts:
            raise ValueError(f"host {host.name!r} already in cluster")
        self.hosts[host.name] = host
        self._placement_cache = None

    def place_vm(
        self,
        vm: VirtualMachine,
        host_name: str,
        load: float = 0.0,
        cpu_cap: float = 1.0,
    ) -> None:
        """Place a VM on a named host."""
        self.hosts[host_name].add_vm(vm, load=load, cpu_cap=cpu_cap)

    def host_of(self, vm_name: str) -> Optional[str]:
        """The host currently running ``vm_name``, or None."""
        entry = self._placement().get(vm_name)
        return entry[0] if entry is not None else None

    def remove_vm(self, vm_name: str) -> VirtualMachine:
        """Remove a VM from the cluster entirely (a tenant departure).

        The host's placement version bumps, so every placement-derived
        cache (placement map, batch group layouts, packed demand
        matrices, counter-store ring segment) refreshes on the next
        epoch; the VM's counter/performance histories are retained on
        its last host, exactly as after :meth:`Host.remove_vm`.
        """
        host_name = self.host_of(vm_name)
        if host_name is None:
            raise KeyError(f"VM {vm_name!r} not placed in the cluster")
        return self.hosts[host_name].remove_vm(vm_name)

    def _placement_signature(self) -> Tuple[int, int]:
        """Cheap fingerprint of the cluster's placement state.

        Host placement versions only ever increase, so any VM add/remove
        (including the two sides of a migration) changes the sum; the
        host count covers :meth:`add_host`.
        """
        return (
            len(self.hosts),
            sum(host.placement_version for host in self.hosts.values()),
        )

    def _placement(self) -> Dict[str, Tuple[str, VirtualMachine]]:
        """The cached VM -> (host name, VM) map, rebuilt only when the
        placement changed (migrations, added hosts/VMs)."""
        signature = self._placement_signature()
        if (
            self._placement_cache is None
            or signature != self._placement_signature_cached
        ):
            out: Dict[str, Tuple[str, VirtualMachine]] = {}
            for host_name, host in self.hosts.items():
                for vm_name, vm in host._vms.items():
                    out[vm_name] = (host_name, vm)
            self._placement_cache = out
            self._placement_signature_cached = signature
        return self._placement_cache

    def all_vms(self) -> Dict[str, Tuple[str, VirtualMachine]]:
        """All VMs in the cluster: vm name -> (host name, VM).

        Served from the placement cache; the returned dict is a copy, so
        callers may not observe later placement changes through it.
        """
        return dict(self._placement())

    def vm_count(self) -> int:
        """Number of placed VMs, straight off the placement cache.

        Unlike :meth:`all_vms` this copies nothing — fleet-level
        aggregation paths (``Fleet.stats()``, worker statistics
        collection) call it once per shard per snapshot, and a regional
        fleet multiplies shard counts tenfold.
        """
        return len(self._placement())

    def vms_running_app(self, app_id: str) -> List[Tuple[str, VirtualMachine]]:
        """All (host, VM) pairs running the given application code."""
        return [
            (host_name, vm)
            for host_name, vm in self._placement().values()
            if vm.app_id == app_id
        ]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(
        self, loads: Optional[Mapping[str, float]] = None
    ) -> Dict[str, Dict[str, VMPerformance]]:
        """Advance every host by one epoch.

        Parameters
        ----------
        loads:
            Optional per-VM load overrides (VM name -> fraction of nominal),
            routed automatically to whichever host runs each VM.

        Returns
        -------
        dict
            host name -> (vm name -> performance record).
        """
        per_host_loads: Dict[str, Dict[str, float]] = {}
        if loads:
            placement = self._placement()
            for vm_name, load in loads.items():
                if vm_name not in placement:
                    raise KeyError(f"VM {vm_name!r} not placed in the cluster")
                host_name = placement[vm_name][0]
                per_host_loads.setdefault(host_name, {})[vm_name] = load

        if self.substrate == "batch":
            results = self._step_batch(per_host_loads)
        else:
            results = {
                host_name: host.step(per_host_loads.get(host_name))
                for host_name, host in self.hosts.items()
            }
        self.current_epoch += 1
        return results

    def _batch_group_plan(self) -> List[BatchGroup]:
        """The (cached) spec groups and assembled layouts of the cluster.

        Rebuilt only when the placement changes: layouts depend on the
        VM sets, vCPU counts and pinning, not on per-epoch demand values.
        Hosts sharing a machine spec and epoch length form one batch;
        heterogeneous clusters simply split into a few batches.
        """
        signature = (
            self._placement_signature(),
            tuple(host.epoch_seconds for host in self.hosts.values()),
        )
        if self._batch_groups is not None and self._batch_groups[0] == signature:
            return self._batch_groups[1]
        self._batch_matrix_cache = {}
        self._batch_buffers = {}
        grouped: Dict[Tuple[int, float], List[Tuple[str, Host]]] = {}
        for host_name, host in self.hosts.items():
            key = (id(host.machine.spec), host.epoch_seconds)
            grouped.setdefault(key, []).append((host_name, host))
        built = []
        for (_, epoch_seconds), members in grouped.items():
            spec = members[0][1].machine.spec
            plans = []
            with_names: List[Tuple[str, Host, Tuple[str, ...]]] = []
            for host_name, host in members:
                plans.append(host.batch_plan_current())
                with_names.append((host_name, host, tuple(host._vms)))
            layout = ClusterLayout.assemble(plans, spec.architecture.cache_domains)
            built.append((spec, epoch_seconds, with_names, layout))
        self._batch_groups = (signature, built)
        return built

    def _step_batch(
        self, per_host_loads: Mapping[str, Mapping[str, float]]
    ) -> Dict[str, Dict[str, VMPerformance]]:
        """One vectorized epoch over all hosts of the cluster."""
        for host_name, host in self.hosts.items():
            host.collect_demand_rows(per_host_loads.get(host_name))
        results: Dict[str, Dict[str, VMPerformance]] = {}
        for g, (spec, epoch_seconds, members, layout) in enumerate(
            self._batch_group_plan()
        ):
            cached = self._batch_matrix_cache.get(g)
            if cached is None or any(host.demands_changed for _, host, _ in members):
                tables = [host.demand_row_matrix() for _, host, _ in members]
                caps: List[float] = []
                for _, host, _names in members:
                    caps.extend(host.cpu_cap_values())
                cached = (
                    DemandMatrix.from_table(np.vstack(tables)),
                    np.asarray(caps, dtype=float),
                )
                self._batch_matrix_cache[g] = cached
            demand_matrix, cap_array = cached
            noise_rngs = [
                (host.machine.noise, host.machine._rng) for _, host, _ in members
            ]

            buffers = self._batch_buffers.get(g)
            if buffers is None:
                buffers = self._batch_buffers[g] = BatchBuffers()
            batch = simulate_epoch_batch(
                spec,
                demand_matrix,
                layout,
                epoch_seconds,
                cap_array,
                noise_rngs,
                buffers=buffers,
            )

            offset = 0
            for host_name, host, names in members:
                k = len(names)
                block = batch.counters[offset:offset + k]
                if host.track_performance:
                    # Ground-truth tracking materialises per-VM outcomes
                    # (and their samples) eagerly; fleet monitoring runs
                    # with tracking off and never enters this branch.
                    offered = host.offered_map()
                    samples = batch.samples(offset, offset + k)
                    outcomes = {
                        name: outcome_from_batch(batch, offset + j, samples[j])
                        for j, name in enumerate(names)
                    }
                    results[host_name] = host.commit_epoch(
                        outcomes,
                        offered,
                        counter_block=(names, block),
                    )
                else:
                    # The lean epoch edge: one ring ingest per host, no
                    # CounterSample objects, no per-VM dicts or appends.
                    host.commit_epoch_block(names, block)
                    results[host_name] = {}
                offset += k
        return results

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate_vm(self, vm_name: str, destination: str) -> MigrationRecord:
        """Migrate a VM to ``destination``, preserving its current load."""
        source = self.host_of(vm_name)
        if source is None:
            raise KeyError(f"VM {vm_name!r} not placed in the cluster")
        if destination not in self.hosts:
            raise KeyError(f"unknown destination host {destination!r}")
        if source == destination:
            raise ValueError("source and destination hosts are the same")
        src_host = self.hosts[source]
        dst_host = self.hosts[destination]
        load = src_host.get_load(vm_name)
        vm = src_host.remove_vm(vm_name)
        if not dst_host.can_fit(vm):
            # Roll back so the cluster stays consistent.
            src_host.add_vm(vm, load=load)
            raise ValueError(
                f"destination host {destination!r} cannot fit VM {vm_name!r}"
            )
        dst_host.add_vm(vm, load=load)
        return self.migration_engine.migrate(vm, source=source, destination=destination)

    # ------------------------------------------------------------------
    # Global introspection used by DeepDive's warning system
    # ------------------------------------------------------------------
    def counter_windows(
        self, window: int
    ) -> Dict[str, List[CounterSample]]:
        """The last ``window`` samples of every VM, in one pass.

        The scalar monitoring path's entry point: one bulk read per epoch
        instead of one host lookup per VM — the last entry of each
        window is the VM's newest sample.  VMs that have not completed
        an epoch yet are absent from the result.
        """
        if window < 1:
            raise ValueError("window must be at least 1")
        out: Dict[str, List[CounterSample]] = {}
        for host in self.hosts.values():
            store = host.counter_store
            for vm_name in host._vms:
                if vm_name in store and store.length(vm_name):
                    out[vm_name] = store.histories[vm_name][-window:]
        return out

    def counter_window_view(self, window: int) -> CounterWindowView:
        """Columnar equivalent of :meth:`counter_windows`.

        When a host's counter-store ring covers the requested window
        with a stable VM placement, the view is a few array slices and
        sums read straight from the ring; hosts where that is not the
        case (scalar substrate, recent migrations, VMs younger than the
        window) fall back to a per-VM assembly — itself served from raw
        ring rows wherever the epochs live there — so the view is always
        exactly equivalent to the scalar window assembly.

        A ``history_limit`` shorter than the window silently trims the
        smoothing windows to the retained epochs; the first time that
        happens on a host, a :class:`RuntimeWarning` names the host and
        limit so the misconfiguration is visible.
        """
        if window < 1:
            raise ValueError("window must be at least 1")
        names_parts: List[str] = []
        latest_parts: List[np.ndarray] = []
        sum_parts: List[np.ndarray] = []
        for host in self.hosts.values():
            if not host._vms:
                continue
            store = host.counter_store
            fast = store.window_view(
                window, tuple(host._vms), host.current_epoch
            )
            if fast is not None:
                names, latest, acc = fast
                names_parts.extend(names)
                latest_parts.append(latest)
                sum_parts.append(acc)
                continue
            if (
                host.history_limit is not None
                and window > host.history_limit
                and host.name not in self._short_history_warned
            ):
                self._short_history_warned.add(host.name)
                warnings.warn(
                    f"counter_window_view: host {host.name!r} retains only "
                    f"history_limit={host.history_limit} epochs but a "
                    f"window of {window} was requested; smoothing windows "
                    "on this host are trimmed to the retained epochs "
                    "(per-VM fallback assembly)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            for vm_name in host._vms:
                if vm_name not in store:
                    continue
                fold = store.vm_window_fold(vm_name, window)
                if fold is None:
                    continue
                acc_row, latest_row = fold
                names_parts.append(vm_name)
                latest_parts.append(latest_row)
                sum_parts.append(acc_row)
        if not names_parts:
            empty = np.empty((0, N_COUNTERS), dtype=float)
            return CounterWindowView(vm_names=(), latest=empty, window_sum=empty)
        return CounterWindowView(
            vm_names=tuple(names_parts),
            latest=np.vstack(latest_parts),
            window_sum=np.vstack(sum_parts),
        )

    def latest_counters_for_app(
        self, app_id: str, exclude_vm: Optional[str] = None
    ) -> Dict[str, CounterSample]:
        """Latest counters of every VM running ``app_id`` (optionally excluding one)."""
        out: Dict[str, CounterSample] = {}
        for host_name, vm in self.vms_running_app(app_id):
            if exclude_vm is not None and vm.name == exclude_vm:
                continue
            sample = self.hosts[host_name].latest_counters(vm.name)
            if sample is not None:
                out[vm.name] = sample
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster(hosts={self.host_names()})"
