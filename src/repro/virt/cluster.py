"""A cluster of production hosts.

The cluster ties the per-host simulation together: it steps every host
each epoch, exposes the global view the warning system's "global
information" path needs (which VMs run the same application code on
which hosts), and executes migrations decided by the placement manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample
from repro.virt.migration import MigrationEngine, MigrationRecord
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host, VMPerformance


class Cluster:
    """A set of production hosts plus the migration machinery."""

    def __init__(
        self,
        num_hosts: int = 1,
        spec: MachineSpec = XEON_X5472,
        epoch_seconds: float = 1.0,
        noise: float = 0.01,
        seed: Optional[int] = None,
        migration_engine: Optional[MigrationEngine] = None,
        host_prefix: str = "pm",
    ) -> None:
        if num_hosts < 1:
            raise ValueError("a cluster needs at least one host")
        self.epoch_seconds = epoch_seconds
        self.hosts: Dict[str, Host] = {}
        for i in range(num_hosts):
            name = f"{host_prefix}{i}"
            self.hosts[name] = Host(
                name=name,
                spec=spec,
                noise=noise,
                seed=None if seed is None else seed + i,
                epoch_seconds=epoch_seconds,
            )
        self.migration_engine = migration_engine or MigrationEngine()
        self.current_epoch = 0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def host_names(self) -> List[str]:
        return sorted(self.hosts)

    def get_host(self, name: str) -> Host:
        return self.hosts[name]

    def add_host(self, host: Host) -> None:
        if host.name in self.hosts:
            raise ValueError(f"host {host.name!r} already in cluster")
        self.hosts[host.name] = host

    def place_vm(
        self, vm: VirtualMachine, host_name: str, load: float = 0.0, cpu_cap: float = 1.0
    ) -> None:
        """Place a VM on a named host."""
        self.hosts[host_name].add_vm(vm, load=load, cpu_cap=cpu_cap)

    def host_of(self, vm_name: str) -> Optional[str]:
        """The host currently running ``vm_name``, or None."""
        for name, host in self.hosts.items():
            if host.has_vm(vm_name):
                return name
        return None

    def all_vms(self) -> Dict[str, Tuple[str, VirtualMachine]]:
        """All VMs in the cluster: vm name -> (host name, VM)."""
        out: Dict[str, Tuple[str, VirtualMachine]] = {}
        for host_name, host in self.hosts.items():
            for vm_name, vm in host.vms.items():
                out[vm_name] = (host_name, vm)
        return out

    def vms_running_app(self, app_id: str) -> List[Tuple[str, VirtualMachine]]:
        """All (host, VM) pairs running the given application code."""
        return [
            (host_name, vm)
            for vm_name, (host_name, vm) in self.all_vms().items()
            if vm.app_id == app_id
        ]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(
        self, loads: Optional[Mapping[str, float]] = None
    ) -> Dict[str, Dict[str, VMPerformance]]:
        """Advance every host by one epoch.

        Parameters
        ----------
        loads:
            Optional per-VM load overrides (VM name -> fraction of nominal),
            routed automatically to whichever host runs each VM.

        Returns
        -------
        dict
            host name -> (vm name -> performance record).
        """
        per_host_loads: Dict[str, Dict[str, float]] = {}
        if loads:
            placement = self.all_vms()
            for vm_name, load in loads.items():
                if vm_name not in placement:
                    raise KeyError(f"VM {vm_name!r} not placed in the cluster")
                host_name = placement[vm_name][0]
                per_host_loads.setdefault(host_name, {})[vm_name] = load

        results: Dict[str, Dict[str, VMPerformance]] = {}
        for host_name, host in self.hosts.items():
            results[host_name] = host.step(per_host_loads.get(host_name))
        self.current_epoch += 1
        return results

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate_vm(self, vm_name: str, destination: str) -> MigrationRecord:
        """Migrate a VM to ``destination``, preserving its current load."""
        source = self.host_of(vm_name)
        if source is None:
            raise KeyError(f"VM {vm_name!r} not placed in the cluster")
        if destination not in self.hosts:
            raise KeyError(f"unknown destination host {destination!r}")
        if source == destination:
            raise ValueError("source and destination hosts are the same")
        src_host = self.hosts[source]
        dst_host = self.hosts[destination]
        load = src_host.get_load(vm_name)
        vm = src_host.remove_vm(vm_name)
        if not dst_host.can_fit(vm):
            # Roll back so the cluster stays consistent.
            src_host.add_vm(vm, load=load)
            raise ValueError(
                f"destination host {destination!r} cannot fit VM {vm_name!r}"
            )
        dst_host.add_vm(vm, load=load)
        return self.migration_engine.migrate(vm, source=source, destination=destination)

    # ------------------------------------------------------------------
    # Global introspection used by DeepDive's warning system
    # ------------------------------------------------------------------
    def counter_windows(
        self, window: int
    ) -> Dict[str, List[CounterSample]]:
        """The last ``window`` samples of every VM, in one pass.

        The batch epoch engine's entry point: one bulk read per epoch
        instead of one host lookup per VM — the last entry of each
        window is the VM's newest sample.  VMs that have not completed
        an epoch yet are absent from the result.
        """
        if window < 1:
            raise ValueError("window must be at least 1")
        out: Dict[str, List[CounterSample]] = {}
        for host in self.hosts.values():
            for vm_name in host.vms:
                history = host.counter_history.get(vm_name)
                if history:
                    out[vm_name] = history[-window:]
        return out

    def latest_counters_for_app(
        self, app_id: str, exclude_vm: Optional[str] = None
    ) -> Dict[str, CounterSample]:
        """Latest counters of every VM running ``app_id`` (optionally excluding one)."""
        out: Dict[str, CounterSample] = {}
        for host_name, vm in self.vms_running_app(app_id):
            if exclude_vm is not None and vm.name == exclude_vm:
                continue
            sample = self.hosts[host_name].latest_counters(vm.name)
            if sample is not None:
                out[vm.name] = sample
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster(hosts={self.host_names()})"
