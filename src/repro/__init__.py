"""Reproduction of DeepDive (Novakovic et al., USENIX ATC 2013).

DeepDive transparently identifies and manages performance interference
between virtual machines co-located on the same physical machine.  The
package is organised as follows:

``repro.metrics``
    The low-level metric layer: hardware-performance-counter definitions
    (Table 1 of the paper), metric vectors, normalisation by instructions
    retired, and the I/O-augmented CPI-stack performance models.

``repro.hardware``
    The physical-machine contention substrate: cores, shared caches,
    front-side bus / QPI memory interconnect, disks and NICs, plus the
    architecture specifications used in the paper (Xeon X5472 and the
    Core-i7 NUMA port).

``repro.virt``
    The virtualisation substrate: virtual machines, the hypervisor that
    pins vCPUs to cores and virtualises counters, clusters of physical
    machines, VM cloning, the sandboxed profiling environment and the
    request-duplicating proxy.

``repro.workloads``
    CloudSuite-like workload models (Data Serving, Web Search, Data
    Analytics), the stress workloads used to inject interference, the
    synthetic mimicking benchmark, and load/interference trace generators.

``repro.clustering``
    Expectation-maximisation Gaussian-mixture clustering with cannot-link
    constraints and automatic metric-threshold derivation.

``repro.regression``
    The regression machinery used to train the synthetic benchmark.

``repro.core``
    DeepDive proper: the warning system, the interference analyzer, the
    VM behaviour repository, the placement manager, baselines, and the
    top-level :class:`repro.core.DeepDive` orchestrator.

``repro.queueing``
    The profiling-server queueing simulator used for the scalability
    study (Figures 12-14).

``repro.experiments``
    One module per figure of the paper's evaluation; each returns the
    rows/series the paper reports.
"""

from repro.core.config import DeepDiveConfig
from repro.core.deepdive import DeepDive

__version__ = "1.0.0"

__all__ = ["DeepDive", "DeepDiveConfig", "__version__"]
