"""Fleet telemetry bus: spans, counters, and exporters.

DeepDive's pitch is cheap always-on monitoring with deep dives on
demand; this module applies the same philosophy to the reproduction's
own run path.  One :class:`TelemetryRegistry` instance threads through
every execution layer (serial → thread → process → regional →
supervised → campaign) and provides:

* **tracing spans** — ``registry.span("simulate", epoch)`` is a
  context manager recording a monotonic start/duration pair into
  preallocated ring buffers (parallel numpy arrays, no per-span
  allocation beyond the tiny context-manager object).  Worker
  processes record into a :class:`WorkerSpanBuffer` and ship the drained
  tuples back inside the existing columnar
  :class:`~repro.fleet.shm.ShmEpochDescriptor` channel, so the pool
  pipe stays descriptor-sized; the parent folds them in with the
  worker's pid so exported traces show one track per worker.
  ``time.perf_counter`` is CLOCK_MONOTONIC on Linux, so parent and
  worker spans align on a single trace timeline.
* **counters and gauges** — a fixed counter catalog (epochs, VM-epochs,
  restarts, quarantines, shm regrows, descriptor bytes, …) updated from
  the hot loop with plain array ops via module-level index constants,
  plus a free-form gauge dict refreshed at export time (VMs, hosts,
  migrations, admission rejects).
* **exporters** — Prometheus text exposition
  (:meth:`TelemetryRegistry.render_prometheus`), Chrome ``trace_event``
  JSON (:meth:`TelemetryRegistry.export_chrome_trace`, loadable in
  Perfetto / ``chrome://tracing``), and a JSONL structured event log
  with size-based rotation (:meth:`TelemetryRegistry.log_event`).
* **profiling hooks** — telemetry is opt-in per fleet
  (``Fleet(telemetry=TelemetryConfig(...))``) or process-wide via
  ``REPRO_FLEET_PROFILE=1``; ``profile_every`` samples the deep
  per-shard spans every Nth epoch so overhead stays bounded (the
  ``fleet_telemetry_2k`` benchmark pins ≤3% enabled, ~0% off).

The registry never influences decisions: every bit-identical
equivalence property holds with telemetry off, on, or sampled
(``tests/property/test_telemetry_equivalence.py``).  Counter totals and
per-kind span aggregates survive ``Fleet.snapshot()/resume()`` as
carried totals, so Prometheus counters stay monotone across restarts.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fleet.benchutil import run_metadata

# ---------------------------------------------------------------------------
# Span taxonomy
# ---------------------------------------------------------------------------

#: Every span kind the fleet stack records, in code order.  ``epoch``
#: wraps one whole ``_step_epoch``; ``simulate``/``monitor`` split a
#: shard's hardware step from its DeepDive analysis; ``dispatch`` and
#: ``merge`` bracket the process executor's submit/gather and ordered
#: merge; ``lifecycle`` covers churn/stress application; ``snapshot``,
#: ``recovery`` and ``cell`` cover checkpointing, supervised recovery
#: and campaign cells.
SPAN_KINDS: Tuple[str, ...] = (
    "epoch",
    "simulate",
    "monitor",
    "dispatch",
    "merge",
    "lifecycle",
    "snapshot",
    "recovery",
    "cell",
)

_KIND_CODES: Dict[str, int] = {name: code for code, name in enumerate(SPAN_KINDS)}
_EPOCH_CODE = _KIND_CODES["epoch"]

# ---------------------------------------------------------------------------
# Counter catalog
# ---------------------------------------------------------------------------

#: Fixed counter catalog; the hot loop addresses entries through the
#: ``C_*`` index constants below (one int64 array add, no dict lookup).
COUNTER_NAMES: Tuple[str, ...] = (
    "epochs_total",
    "vm_epochs_total",
    "restarts_total",
    "quarantined_shards_total",
    "shm_regrows_total",
    "descriptor_bytes_total",
    "snapshots_total",
    "recoveries_total",
    "spans_dropped_total",
    "cells_total",
)

(
    C_EPOCHS,
    C_VM_EPOCHS,
    C_RESTARTS,
    C_QUARANTINED,
    C_SHM_REGROWS,
    C_DESCRIPTOR_BYTES,
    C_SNAPSHOTS,
    C_RECOVERIES,
    C_SPANS_DROPPED,
    C_CELLS,
) = range(len(COUNTER_NAMES))

_COUNTER_HELP: Dict[str, str] = {
    "epochs_total": "Fleet epochs completed.",
    "vm_epochs_total": "VM-epochs folded into fleet reports.",
    "restarts_total": "Worker groups respawned by the supervisor.",
    "quarantined_shards_total": "Shards excluded after restart-budget exhaustion.",
    "shm_regrows_total": "Shared-memory segment regrowths seen by readers.",
    "descriptor_bytes_total": "Pickled shm descriptor bytes crossing the pool pipe.",
    "snapshots_total": "Fleet snapshots taken.",
    "recoveries_total": "Supervised recovery attempts started.",
    "spans_dropped_total": "Span-ring overwrites (oldest spans evicted).",
    "cells_total": "Campaign cells executed.",
}

_METRIC_SAFE = re.compile(r"[^a-zA-Z0-9_:]")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryConfig:
    """How much a fleet instruments itself.

    Parameters
    ----------
    enabled:
        Master switch.  ``False`` is indistinguishable from passing no
        telemetry at all — the fleet keeps no registry and the hot loop
        pays nothing.
    profile_every:
        Sampling cadence for the *deep* spans (per-shard
        simulate/monitor, lifecycle): they are recorded only on epochs
        where ``epoch % profile_every == 0``.  Coarse spans (epoch,
        dispatch, merge) and counters are always on.  ``1`` profiles
        every epoch.
    span_capacity:
        Ring-buffer capacity in spans.  When full the oldest spans are
        overwritten (counted in ``spans_dropped_total``); per-kind
        duration totals are unaffected.
    jsonl_path:
        When set, structured events (worker restarts, quarantines,
        snapshots, …) are appended to this JSONL file.
    jsonl_rotate_bytes:
        Size threshold at which the JSONL log rotates (the current file
        is renamed to ``<path>.1``, replacing any previous rotation).
    """

    enabled: bool = True
    profile_every: int = 1
    span_capacity: int = 4096
    jsonl_path: Optional[str] = None
    jsonl_rotate_bytes: int = 1_000_000

    def __post_init__(self) -> None:
        if self.profile_every < 1:
            raise ValueError("profile_every must be >= 1")
        if self.span_capacity < 1:
            raise ValueError("span_capacity must be >= 1")
        if self.jsonl_rotate_bytes < 1:
            raise ValueError("jsonl_rotate_bytes must be >= 1")

    @classmethod
    def from_env(cls) -> Optional["TelemetryConfig"]:
        """The process-wide profiling switch.

        ``REPRO_FLEET_PROFILE=1`` turns full profiling on for every
        fleet built without an explicit ``telemetry=`` argument; an
        integer value above 1 is used as the ``profile_every`` sampling
        cadence.  Unset/``0`` leaves telemetry off.
        """
        raw = os.environ.get("REPRO_FLEET_PROFILE", "").strip()
        if not raw or raw == "0":
            return None
        try:
            every = max(1, int(raw))
        except ValueError:
            every = 1
        return cls(enabled=True, profile_every=every)


# ---------------------------------------------------------------------------
# Span context managers
# ---------------------------------------------------------------------------


class _NullSpan:
    """Shared no-op span returned whenever telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_sink", "_code", "_epoch", "_start")

    def __init__(self, sink: "TelemetryRegistry", code: int, epoch: int) -> None:
        self._sink = sink
        self._code = code
        self._epoch = epoch

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        start = self._start
        self._sink._record(
            self._code, start, time.perf_counter() - start, self._epoch
        )
        return False


class _WorkerSpan:
    __slots__ = ("_sink", "_code", "_epoch", "_start")

    def __init__(self, sink: "WorkerSpanBuffer", code: int, epoch: int) -> None:
        self._sink = sink
        self._code = code
        self._epoch = epoch

    def __enter__(self) -> "_WorkerSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        start = self._start
        self._sink._records.append(
            (self._code, start, time.perf_counter() - start, self._epoch)
        )
        return False


class WorkerSpanBuffer:
    """Worker-side span sink for the process executor.

    Workers cannot share the parent registry, so they append plain
    ``(kind_code, start, duration, epoch)`` tuples here and the
    executor ships the drained batch back on the columnar descriptor;
    the parent folds them into its registry with the worker's pid
    (:meth:`TelemetryRegistry.fold_worker_spans`).
    """

    __slots__ = ("profile_every", "_records")

    def __init__(self, profile_every: int = 1) -> None:
        self.profile_every = max(1, profile_every)
        self._records: List[Tuple[int, float, float, int]] = []

    def deep(self, epoch: int) -> Optional["WorkerSpanBuffer"]:
        """``self`` when deep spans are sampled at ``epoch``, else ``None``."""
        if epoch % self.profile_every == 0:
            return self
        return None

    def span(self, kind: str, epoch: int = 0) -> _WorkerSpan:
        return _WorkerSpan(self, _KIND_CODES[kind], epoch)

    def drain(self) -> Tuple[Tuple[int, float, float, int], ...]:
        records = tuple(self._records)
        self._records.clear()
        return records


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TelemetryRegistry:
    """One fleet stack's span rings, counters, gauges and exporters.

    A single registry is shared across every layer of one run — a
    :class:`~repro.fleet.region.RegionalFleet` hands the same instance
    to all its inner fleets and their executors, so exported traces and
    counters describe the whole topology.  Recording is guarded by one
    lock (the thread executor records from pool threads); per-span cost
    is a handful of array stores.
    """

    def __init__(
        self, config: Optional[TelemetryConfig] = None
    ) -> None:
        self.config = config or TelemetryConfig()
        self.enabled = self.config.enabled
        capacity = self.config.span_capacity
        self._capacity = capacity
        self._span_kind = np.zeros(capacity, dtype=np.int8)
        self._span_start = np.zeros(capacity, dtype=np.float64)
        self._span_dur = np.zeros(capacity, dtype=np.float64)
        self._span_epoch = np.zeros(capacity, dtype=np.int64)
        self._span_pid = np.zeros(capacity, dtype=np.int64)
        self._cursor = 0
        self.counters = np.zeros(len(COUNTER_NAMES), dtype=np.int64)
        #: Carried per-kind duration/count totals (survive snapshot/resume).
        self._span_seconds = np.zeros(len(SPAN_KINDS), dtype=np.float64)
        self._span_counts = np.zeros(len(SPAN_KINDS), dtype=np.int64)
        self.gauges: Dict[str, float] = {}
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._jsonl_file = None
        #: Monotone sequence + duration of the newest ``epoch`` span —
        #: the dashboard's stall-proof rate source.
        self.epoch_span_seq = 0
        self.last_epoch_duration: Optional[float] = None

    # -- recording -----------------------------------------------------
    def inc(self, index: int, amount: int = 1) -> None:
        """Bump one catalog counter (no-op when disabled)."""
        if self.enabled:
            self.counters[index] += amount

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauges[name] = float(value)

    def deep(self, epoch: int) -> Optional["TelemetryRegistry"]:
        """``self`` when deep spans are sampled at ``epoch``, else ``None``.

        Call sites thread the return value (a registry or ``None``)
        into the per-shard path, so off-sample epochs skip even the
        ``span()`` call.
        """
        if self.enabled and epoch % self.config.profile_every == 0:
            return self
        return None

    def span(self, kind: str, epoch: int = 0) -> Union[_Span, _NullSpan]:
        """Context manager timing one ``kind`` span at ``epoch``."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, _KIND_CODES[kind], epoch)

    def _record(
        self,
        code: int,
        start: float,
        dur: float,
        epoch: int,
        pid: Optional[int] = None,
    ) -> None:
        with self._lock:
            index = self._cursor % self._capacity
            if self._cursor >= self._capacity:
                self.counters[C_SPANS_DROPPED] += 1
            self._span_kind[index] = code
            self._span_start[index] = start
            self._span_dur[index] = dur
            self._span_epoch[index] = epoch
            self._span_pid[index] = self._pid if pid is None else pid
            self._cursor += 1
            self._span_seconds[code] += dur
            self._span_counts[code] += 1
            if code == _EPOCH_CODE and pid is None:
                self.last_epoch_duration = dur
                self.epoch_span_seq += 1

    def record_span(
        self, kind: str, start: float, duration: float, epoch: int = 0
    ) -> None:
        """Record one externally timed span (e.g. a campaign cell)."""
        if self.enabled:
            self._record(_KIND_CODES[kind], start, duration, epoch)

    def fold_worker_spans(
        self,
        records: Sequence[Tuple[int, float, float, int]],
        pid: Optional[int],
    ) -> None:
        """Fold a worker's drained span tuples under its pid track."""
        if not self.enabled:
            return
        for code, start, dur, epoch in records:
            self._record(int(code), float(start), float(dur), int(epoch), pid=pid)

    # -- introspection -------------------------------------------------
    def spans(self) -> List[Dict[str, object]]:
        """The ring's surviving spans, oldest first."""
        with self._lock:
            if self._cursor > self._capacity:
                head = self._cursor % self._capacity
                order = list(range(head, self._capacity)) + list(range(head))
            else:
                order = list(range(self._cursor))
            return [
                {
                    "kind": SPAN_KINDS[self._span_kind[i]],
                    "start": float(self._span_start[i]),
                    "duration": float(self._span_dur[i]),
                    "epoch": int(self._span_epoch[i]),
                    "pid": int(self._span_pid[i]),
                }
                for i in order
            ]

    def counter(self, name: str) -> int:
        return int(self.counters[COUNTER_NAMES.index(name)])

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-kind carried totals: ``{kind: {seconds, count}}``."""
        return {
            kind: {
                "seconds": float(self._span_seconds[code]),
                "count": int(self._span_counts[code]),
            }
            for code, kind in enumerate(SPAN_KINDS)
        }

    # -- exporters -----------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry."""
        lines: List[str] = []
        for index, name in enumerate(COUNTER_NAMES):
            metric = f"fleet_{name}"
            lines.append(f"# HELP {metric} {_COUNTER_HELP[name]}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {int(self.counters[index])}")
        lines.append(
            "# HELP fleet_span_seconds_total Cumulative span duration by kind."
        )
        lines.append("# TYPE fleet_span_seconds_total counter")
        for code, kind in enumerate(SPAN_KINDS):
            lines.append(
                f'fleet_span_seconds_total{{kind="{_escape_label(kind)}"}} '
                f"{float(self._span_seconds[code]):.9f}"
            )
        lines.append("# HELP fleet_spans_total Cumulative span count by kind.")
        lines.append("# TYPE fleet_spans_total counter")
        for code, kind in enumerate(SPAN_KINDS):
            lines.append(
                f'fleet_spans_total{{kind="{_escape_label(kind)}"}} '
                f"{int(self._span_counts[code])}"
            )
        for name in sorted(self.gauges):
            metric = "fleet_" + _METRIC_SAFE.sub("_", name)
            lines.append(f"# TYPE {metric} gauge")
            value = self.gauges[name]
            rendered = repr(float(value)) if value != int(value) else str(int(value))
            lines.append(f"{metric} {rendered}")
        return "\n".join(lines) + "\n"

    def export_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Write the span rings as Chrome ``trace_event`` JSON.

        Load the file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``: each recording process is one track row
        (the parent plus one per worker pid), spans are complete
        ``"X"`` events with microsecond timestamps on the shared
        CLOCK_MONOTONIC timeline, and the epoch number rides in
        ``args``.
        """
        events: List[Dict[str, object]] = []
        pids = set()
        for record in self.spans():
            pid = record["pid"]
            pids.add(pid)
            events.append(
                {
                    "name": record["kind"],
                    "cat": "fleet",
                    "ph": "X",
                    "ts": record["start"] * 1e6,
                    "dur": record["duration"] * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "args": {"epoch": record["epoch"]},
                }
            )
        for pid in sorted(pids):
            label = "fleet parent" if pid == self._pid else f"fleet worker {pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": pid,
                    "args": {"name": label},
                }
            )
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": run_metadata(),
        }
        path = Path(path)
        path.write_text(json.dumps(payload) + "\n")
        return path

    # -- structured event log ------------------------------------------
    def log_event(self, event: str, **fields: object) -> None:
        """Append one structured event to the JSONL log (if configured)."""
        if not self.enabled or self.config.jsonl_path is None:
            return
        record = {"event": event, "time_unix": time.time(), **fields}
        line = json.dumps(record) + "\n"
        with self._lock:
            stream = self._jsonl_file
            if stream is None:
                stream = self._jsonl_file = open(  # noqa: SIM115 - long-lived
                    self.config.jsonl_path, "a", encoding="utf-8"
                )
            stream.write(line)
            stream.flush()
            if stream.tell() >= self.config.jsonl_rotate_bytes:
                self._rotate_jsonl()

    def _rotate_jsonl(self) -> None:
        stream = self._jsonl_file
        if stream is not None:
            stream.close()
            self._jsonl_file = None
        path = self.config.jsonl_path
        if path and os.path.exists(path):
            os.replace(path, f"{path}.1")

    def close(self) -> None:
        """Flush and close the JSONL stream (idempotent)."""
        with self._lock:
            if self._jsonl_file is not None:
                self._jsonl_file.close()
                self._jsonl_file = None

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Carried totals for snapshot payloads (name-keyed, additive)."""
        return {
            "counters": {
                name: int(self.counters[index])
                for index, name in enumerate(COUNTER_NAMES)
            },
            "span_seconds": {
                kind: float(self._span_seconds[code])
                for code, kind in enumerate(SPAN_KINDS)
            },
            "span_counts": {
                kind: int(self._span_counts[code])
                for code, kind in enumerate(SPAN_KINDS)
            },
            "gauges": dict(self.gauges),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Fold a snapshot's carried totals into this registry.

        Totals are *added* (keyed by name, so the catalog can grow
        between versions): a resumed fleet's Prometheus counters
        continue monotonically from the snapshot instead of resetting.
        """
        for name, value in dict(state.get("counters", {})).items():
            if name in COUNTER_NAMES:
                self.counters[COUNTER_NAMES.index(name)] += int(value)
        for kind, value in dict(state.get("span_seconds", {})).items():
            if kind in _KIND_CODES:
                self._span_seconds[_KIND_CODES[kind]] += float(value)
        for kind, value in dict(state.get("span_counts", {})).items():
            if kind in _KIND_CODES:
                self._span_counts[_KIND_CODES[kind]] += int(value)
        self.gauges.update(dict(state.get("gauges", {})))

    # -- pickling ------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_jsonl_file"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._jsonl_file = None


def _escape_label(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def resolve_telemetry(
    telemetry: Union[TelemetryConfig, TelemetryRegistry, None],
) -> Optional[TelemetryRegistry]:
    """Normalize a fleet's ``telemetry=`` argument into a live registry.

    ``None`` falls back to the ``REPRO_FLEET_PROFILE`` environment
    switch; a :class:`TelemetryConfig` builds a fresh registry; an
    existing :class:`TelemetryRegistry` is shared as-is (how regional
    fleets hand one bus to every inner fleet).  Disabled configs
    resolve to ``None`` so the hot loop pays exactly nothing.
    """
    if telemetry is None:
        telemetry = TelemetryConfig.from_env()
        if telemetry is None:
            return None
    if isinstance(telemetry, TelemetryRegistry):
        return telemetry if telemetry.enabled else None
    if isinstance(telemetry, TelemetryConfig):
        return TelemetryRegistry(telemetry) if telemetry.enabled else None
    raise TypeError(
        "telemetry must be a TelemetryConfig, TelemetryRegistry or None, "
        f"got {type(telemetry).__name__}"
    )


__all__ = [
    "SPAN_KINDS",
    "COUNTER_NAMES",
    "TelemetryConfig",
    "TelemetryRegistry",
    "WorkerSpanBuffer",
    "resolve_telemetry",
]
