"""Hierarchical fleets: regions of shards, one epoch clock.

A flat :class:`~repro.fleet.fleet.Fleet` tops out where one process (or
one pool of per-shard workers) comfortably owns every shard.  The
region layer scales past that by making the fleet *hierarchical*: shards
are grouped into :class:`Region`\\ s, each region runs as its own inner
``Fleet`` — with its own executor strategy and its own worker budget —
and a :class:`RegionalFleet` drives all regions on one epoch clock,
merging their per-epoch results in region insertion order.

Because shards share nothing, the grouping is pure bookkeeping: a
hierarchical run is **bit-identical** to the equivalent flat fleet at
any region/worker split (pinned by
``tests/property/test_region_equivalence.py``).  The merge invariant
that makes this hold is *contiguity*: concatenating the regions' shard
groups in region insertion order must reproduce the flat fleet's shard
insertion order, which is exactly how
:func:`~repro.fleet.scenario.build_regional_fleet` partitions a
scenario.

What the hierarchy buys at 100k+ VMs:

* **per-region worker budgeting** — each region brings its own
  process-executor pools (the PR 6 shared-memory path) instead of one
  global pool, so a 100k-VM fleet is N regions × the already-fast
  10k-VM path;
* **constant-memory roll-ups** — ``run(keep_reports=False)`` folds the
  merged per-epoch reports into one
  :class:`~repro.fleet.fleet.FleetRunSummary`, and independently
  produced per-region summaries roll up losslessly via
  :meth:`FleetRunSummary.merge`;
* **lifecycle partitioning** — one fleet-wide
  :class:`~repro.fleet.lifecycle.LifecycleEngine` is validated against
  the full topology, then split with
  :meth:`~repro.fleet.lifecycle.LifecycleEngine.subset` so every region
  applies exactly its own shards' events (the same mechanism the
  process workers already use).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.events import InterferenceDetectedEvent, MigrationEvent
from repro.fleet.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
)
from repro.fleet.executor import EXECUTOR_KINDS, ColumnarFleetReport
from repro.fleet.faults import FaultPlan
from repro.fleet.fleet import (
    Fleet,
    FleetEpochReport,
    FleetRunSummary,
    FleetShard,
    ScheduledStress,
    _rebuild_lifecycle,
)
from repro.fleet.lifecycle import LifecycleEngine
from repro.fleet.runtime import FleetRuntimeBase, RunOptions, _coerce_options
from repro.fleet.supervisor import FaultPolicy
from repro.fleet.telemetry import (
    C_SNAPSHOTS,
    TelemetryConfig,
    TelemetryRegistry,
    resolve_telemetry,
)


@dataclass
class Region:
    """One named shard group of a :class:`RegionalFleet`.

    ``max_workers`` is this region's private worker budget (``None``
    defers to the regional fleet's per-region default) — regions never
    share a pool, so budgets add across regions.
    """

    region_id: str
    shards: Sequence[FleetShard] = field(default_factory=list)
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.region_id:
            raise ValueError("region_id must be non-empty")
        if not self.shards:
            raise ValueError(f"region {self.region_id!r} needs at least one shard")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    @classmethod
    def from_fleet(
        cls,
        region_id: str,
        fleet: Fleet,
        max_workers: Optional[int] = None,
    ) -> "Region":
        """Adopt an existing flat fleet's shards as one region.

        Only the shard objects are taken; the donor fleet's schedule,
        lifecycle engine and executor configuration are *not* carried
        over — the :class:`RegionalFleet` owns those fleet-wide.
        """
        return cls(
            region_id=region_id,
            shards=list(fleet.shards.values()),
            max_workers=max_workers,
        )


class RegionalFleet(FleetRuntimeBase):
    """A fleet of fleets: regions driven in lockstep on one epoch clock.

    Implements the same :class:`~repro.fleet.runtime.FleetRuntime`
    surface as the flat :class:`~repro.fleet.fleet.Fleet` —
    ``stream``/``run``/``run_epoch`` configured by
    :class:`~repro.fleet.runtime.RunOptions`, plus :meth:`snapshot` /
    :meth:`resume` — so service code drives either topology unchanged.

    Parameters
    ----------
    regions:
        The shard groups (unique region ids, globally unique shard ids).
        Region insertion order is the merge order: concatenating the
        regions' shards reproduces the equivalent flat fleet's shard
        insertion order, which is what makes hierarchical runs
        bit-identical to flat ones.
    schedule:
        Fleet-wide scheduled stress windows; each region receives the
        entries addressing its own shards.
    max_workers:
        Default *per-region* worker budget (``Region.max_workers``
        overrides it per region).  With R regions of budget W the fleet
        runs up to R×W workers — there is no global pool.
    executor:
        Shard execution strategy applied inside every region
        (``"serial"``/``"thread"``/``"process"``), defaulting like
        :class:`~repro.fleet.fleet.Fleet`: ``"thread"`` when the
        per-region budget exceeds 1, else ``"serial"``.
    lifecycle:
        Fleet-wide lifecycle engine.  Validated against the full
        topology here, then partitioned with
        :meth:`~repro.fleet.lifecycle.LifecycleEngine.subset` so each
        region's inner fleet owns exactly its shards' events.
    fault_policy:
        One :class:`~repro.fleet.supervisor.FaultPolicy` applied inside
        every region's process executor — a worker failure is recovered
        (or quarantined) *within its region*, the other regions never
        notice.
    fault_plans:
        Optional per-region injected fault schedules (region id ->
        :class:`~repro.fleet.faults.FaultPlan`); worker indices are
        region-local, so plans are addressed per region.
    telemetry:
        Like :class:`~repro.fleet.fleet.Fleet`'s — but hierarchical
        fleets build (or adopt) **one** registry and share it with every
        region's inner fleet, so counters, spans and exporters describe
        the whole hierarchy on one timeline.  Epoch spans are recorded
        once per fleet-wide epoch (the regional ``stream``), never per
        region.
    """

    def __init__(
        self,
        regions: Sequence[Region],
        schedule: Optional[Sequence[ScheduledStress]] = None,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        lifecycle: Optional["LifecycleEngine"] = None,
        fault_policy: Optional["FaultPolicy"] = None,
        fault_plans: Optional[Dict[str, "FaultPlan"]] = None,
        telemetry: Union[TelemetryConfig, TelemetryRegistry, None] = None,
    ) -> None:
        if not regions:
            raise ValueError("a regional fleet needs at least one region")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if executor is None:
            executor = (
                "thread" if max_workers is not None and max_workers > 1 else "serial"
            )
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
            )
        seen_shards: Dict[str, str] = {}
        region_ids: List[str] = []
        for region in regions:
            if region.region_id in region_ids:
                raise ValueError(f"duplicate region id {region.region_id!r}")
            region_ids.append(region.region_id)
            for shard in region.shards:
                owner = seen_shards.get(shard.shard_id)
                if owner is not None:
                    raise ValueError(
                        f"shard {shard.shard_id!r} appears in regions "
                        f"{owner!r} and {region.region_id!r}"
                    )
                seen_shards[shard.shard_id] = region.region_id

        self.schedule: List[ScheduledStress] = list(schedule or [])
        self.lifecycle = lifecycle
        if lifecycle is not None:
            # Validate once against the full topology, so an event
            # naming an unknown shard/host fails here (like the flat
            # fleet) instead of silently vanishing from every subset.
            all_shards = {
                shard.shard_id: shard
                for region in regions
                for shard in region.shards
            }
            lifecycle.validate(all_shards)
        self.max_workers = max_workers
        self.executor = executor
        self.fault_policy = fault_policy
        self.current_epoch = 0
        #: One shared telemetry bus across every region (or ``None``).
        self.telemetry = resolve_telemetry(telemetry)
        unknown_plans = set(fault_plans or {}) - set(region_ids)
        if unknown_plans:
            raise ValueError(
                f"fault_plans name unknown regions: {sorted(unknown_plans)}"
            )
        #: region id -> the region's inner fleet, in region insertion
        #: order (the merge order).
        self.fleets: Dict[str, Fleet] = {}
        for region in regions:
            shard_ids = {shard.shard_id for shard in region.shards}
            region_schedule = [
                stress for stress in self.schedule if stress.shard_id in shard_ids
            ]
            region_lifecycle = (
                lifecycle.subset(sorted(shard_ids))
                if lifecycle is not None
                else None
            )
            self.fleets[region.region_id] = Fleet(
                list(region.shards),
                schedule=region_schedule,
                max_workers=region.max_workers or max_workers,
                executor=executor,
                lifecycle=region_lifecycle,
                fault_policy=fault_policy,
                fault_plan=(fault_plans or {}).get(region.region_id),
                telemetry=self.telemetry,
            )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Dict[str, FleetShard]:
        """All shards in merge order (region order × shard order)."""
        out: Dict[str, FleetShard] = {}
        for fleet in self.fleets.values():
            out.update(fleet.shards)
        return out

    def region(self, region_id: str) -> Fleet:
        """The inner fleet driving one region's shards."""
        return self.fleets[region_id]

    def total_vms(self) -> int:
        return sum(fleet.total_vms() for fleet in self.fleets.values())

    def total_hosts(self) -> int:
        return sum(fleet.total_hosts() for fleet in self.fleets.values())

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Bootstrap every region (inside its workers when processes)."""
        for fleet in self.fleets.values():
            fleet.bootstrap()

    def _step_epoch(
        self, analyze: bool, report: str
    ) -> Union[FleetEpochReport, ColumnarFleetReport]:
        """Advance every region by one epoch and merge the reports.

        The stream primitive of the hierarchical fleet.  Regions run
        sequentially in the calling thread; inside each region the
        configured executor fans its shards out (the process strategy's
        workers run concurrently even while the parent is dispatching
        the next region's epoch results).  The merged report lists shard
        reports in region insertion order, i.e. exactly the flat fleet's
        shard insertion order for a contiguous partition.
        """
        if report not in ("full", "columnar"):
            raise ValueError(f"unknown report mode {report!r}")
        merged: Dict[str, object] = {}
        missing: List[str] = []
        for fleet in self.fleets.values():
            region_report = fleet._step_epoch(analyze=analyze, report=report)
            merged.update(region_report.shard_reports)
            # A quarantined worker degrades its own region; the merged
            # report manifests the gap fleet-wide.
            missing.extend(getattr(region_report, "missing_shards", ()))
        if report == "full":
            out: Union[FleetEpochReport, ColumnarFleetReport] = FleetEpochReport(
                epoch=self.current_epoch,
                shard_reports=merged,
                missing_shards=tuple(missing),
            )
        else:
            out = ColumnarFleetReport(
                epoch=self.current_epoch,
                shard_reports=merged,
                missing_shards=tuple(missing),
            )
        self.current_epoch += 1
        return out

    def run_summaries(
        self,
        epochs: int,
        options: Optional[RunOptions] = None,
        *,
        analyze: Optional[bool] = None,
        shutdown_regions: bool = False,
    ) -> Dict[str, FleetRunSummary]:
        """One constant-memory summary per region, regions run to
        completion one after another.

        Shards share nothing, so running region A for all epochs and
        then region B is bit-identical to the lockstep clock;
        ``FleetRunSummary.merge(result.values())`` reproduces the flat
        fleet's summary.  With ``shutdown_regions=True`` each region's
        workers are released the moment it finishes — only one region's
        executor state is ever hot, the low-water-memory way to push a
        1M-VM fleet through one machine (a shut-down process region
        refuses further epochs, so this is a terminal run).
        """
        options = replace(
            _coerce_options(options, analyze), keep_reports=False
        )
        out: Dict[str, FleetRunSummary] = {}
        for region_id, fleet in self.fleets.items():
            summary = fleet.run(epochs, options)
            assert isinstance(summary, FleetRunSummary)
            out[region_id] = summary
            if shutdown_regions:
                fleet.shutdown()
        self.current_epoch += epochs
        return out

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def snapshot(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        summary: Optional[FleetRunSummary] = None,
        extra: Optional[object] = None,
    ) -> Checkpoint:
        """Checkpoint the whole hierarchy into one resumable state.

        Every region contributes its live shard and lifecycle state
        (fetched from its workers under the process strategy); the
        metadata records the region partition — region ids, shard
        grouping and per-region worker budgets — so :meth:`resume`
        rebuilds the identical topology.  Shard order in the payload is
        merge order, which is also what a flat :meth:`Fleet.resume`
        would need, but the ``kind`` guard keeps the two resume paths
        explicit (use :func:`resume_fleet` to dispatch automatically).

        Like the flat fleet's, a telemetry-carrying snapshot stores the
        shared registry's counter and span totals so a resumed hierarchy
        keeps its Prometheus series monotone.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return self._snapshot_inner(path, summary=summary, extra=extra)
        # Counted before the state capture so the checkpoint's carried
        # totals include the snapshot producing them (resume monotone).
        telemetry.inc(C_SNAPSHOTS)
        with telemetry.span("snapshot", self.current_epoch):
            checkpoint = self._snapshot_inner(path, summary=summary, extra=extra)
        telemetry.log_event("snapshot", epoch=int(self.current_epoch))
        return checkpoint

    def _snapshot_inner(
        self,
        path: Optional[Union[str, Path]],
        *,
        summary: Optional[FleetRunSummary],
        extra: Optional[object],
    ) -> Checkpoint:
        shards: Dict[str, FleetShard] = {}
        lifecycle_states: List[Dict[str, Dict[str, object]]] = []
        regions_meta: List[Dict[str, object]] = []
        missing_shards: List[str] = []
        for region_id, fleet in self.fleets.items():
            region_shards, region_lifecycle, region_missing = fleet._gather_state()
            shards.update(region_shards)
            if region_lifecycle is not None:
                lifecycle_states.append(region_lifecycle)
            missing_shards.extend(region_missing)
            regions_meta.append(
                {
                    "region_id": region_id,
                    "shard_ids": list(region_shards),
                    "max_workers": fleet.max_workers,
                }
            )
        lifecycle_state = (
            LifecycleEngine.merge_states(lifecycle_states)
            if lifecycle_states
            else None
        )
        payload: Dict[str, object] = {
            "shards": list(shards.values()),
            "schedule": list(self.schedule),
            "timeline": (
                self.lifecycle.timeline if self.lifecycle is not None else None
            ),
            "admission": (
                self.lifecycle.admission if self.lifecycle is not None else None
            ),
            "record_decisions": (
                bool(self.lifecycle.record_decisions)
                if self.lifecycle is not None
                else False
            ),
            "lifecycle_state": lifecycle_state,
            "summary": summary,
            "extra": extra,
            "telemetry": (
                (self.telemetry.config, self.telemetry.state_dict())
                if self.telemetry is not None
                else None
            ),
        }
        meta: Dict[str, object] = {
            "version": CHECKPOINT_VERSION,
            "kind": "regional",
            "epoch": int(self.current_epoch),
            "executor": self.executor,
            "max_workers": self.max_workers,
            "shard_ids": list(shards),
            "total_vms": sum(s.cluster.vm_count() for s in shards.values()),
            "total_hosts": sum(len(s.cluster.hosts) for s in shards.values()),
            "has_lifecycle": self.lifecycle is not None,
            "has_summary": summary is not None,
            "has_extra": extra is not None,
            "regions": regions_meta,
            "missing_shards": missing_shards,
            "has_telemetry": self.telemetry is not None,
            "created_unix": time.time(),
        }
        checkpoint = Checkpoint(
            meta=meta,
            payload=pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        if path is not None:
            checkpoint.save(path)
        return checkpoint

    @classmethod
    def resume(
        cls,
        source: Union[Checkpoint, str, Path],
        *,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        telemetry: Union[TelemetryConfig, TelemetryRegistry, None] = None,
    ) -> "RegionalFleet":
        """Rebuild the regional fleet from a checkpoint, bit-identically.

        The region partition (ids, shard grouping, per-region worker
        budgets) comes from the checkpoint metadata; ``executor`` /
        ``max_workers`` override the checkpointed configuration, exactly
        like :meth:`Fleet.resume`.  ``telemetry`` overrides the
        checkpointed telemetry configuration; by default a
        telemetry-carrying checkpoint resumes with its config and
        carried totals, keeping counters monotone across the restart.
        """
        checkpoint = (
            source if isinstance(source, Checkpoint) else Checkpoint.load(source)
        )
        if checkpoint.kind != "regional":
            raise CheckpointError(
                f"checkpoint holds a {checkpoint.kind!r} fleet; resume it "
                "with Fleet.resume (or repro.fleet.resume_fleet)"
            )
        state = checkpoint.state()
        shards_by_id = {shard.shard_id: shard for shard in state["shards"]}
        regions = [
            Region(
                region_id=entry["region_id"],
                shards=[shards_by_id[sid] for sid in entry["shard_ids"]],
                max_workers=entry["max_workers"],
            )
            for entry in checkpoint.meta["regions"]
        ]
        lifecycle = _rebuild_lifecycle(state)
        if lifecycle is not None and checkpoint.meta.get("missing_shards"):
            # A degraded checkpoint carries only the surviving shards;
            # drop the quarantined shards' timeline events before
            # topology validation.
            lifecycle = lifecycle.subset(list(shards_by_id))
        telemetry_state = state.get("telemetry")
        if telemetry is None and telemetry_state is not None:
            telemetry = telemetry_state[0]
        fleet = cls(
            regions,
            schedule=state["schedule"],
            max_workers=(
                checkpoint.meta["max_workers"] if max_workers is None else max_workers
            ),
            executor=(
                checkpoint.meta["executor"] if executor is None else executor
            ),
            lifecycle=lifecycle,
            telemetry=telemetry,
        )
        fleet.current_epoch = checkpoint.epoch
        for inner in fleet.fleets.values():
            inner.current_epoch = checkpoint.epoch
        if fleet.telemetry is not None and telemetry_state is not None:
            fleet.telemetry.load_state(telemetry_state[1])
        return fleet

    def shutdown(self) -> None:
        """Release every region's workers (their final statistics are
        fetched first, so the fleet stays inspectable afterwards).
        Idempotent — every region's shutdown is."""
        for fleet in self.fleets.values():
            fleet.shutdown()

    # ------------------------------------------------------------------
    # Fleet-wide statistics
    # ------------------------------------------------------------------
    def detections(self) -> List[Tuple[str, InterferenceDetectedEvent]]:
        return [
            item for fleet in self.fleets.values() for item in fleet.detections()
        ]

    def migrations(self) -> List[Tuple[str, MigrationEvent]]:
        return [
            item for fleet in self.fleets.values() for item in fleet.migrations()
        ]

    def stats(self) -> Dict[str, float]:
        """Aggregate statistics over all regions (one pre-sized pass).

        Identical keys to :meth:`Fleet.stats`, plus ``"regions"``; the
        per-region numbers come from wherever each region's shard state
        lives (the workers under the process strategy).
        """
        totals: Optional[Dict[str, float]] = None
        for fleet in self.fleets.values():
            stats = fleet.stats()
            if totals is None:
                totals = dict(stats)
            else:
                for key, value in stats.items():
                    totals[key] += value
        assert totals is not None  # constructor guarantees >= 1 region
        totals["regions"] = float(len(self.fleets))
        totals["epochs"] = float(self.current_epoch)
        return totals

    def lifecycle_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard lifecycle counters merged across regions.

        Empty without a lifecycle engine; otherwise one entry per shard
        in merge order, exactly like the flat fleet's.
        """
        if self.lifecycle is None:
            return {}
        out: Dict[str, Dict[str, int]] = {}
        for fleet in self.fleets.values():
            out.update(fleet.lifecycle_stats())
        return out

    def worker_health(self) -> List[Dict[str, object]]:
        """Per-worker health rows across all regions.

        Each row carries a ``"region"`` key — worker indices are
        region-local, so the region id is what makes a row unique.
        """
        out: List[Dict[str, object]] = []
        for region_id, fleet in self.fleets.items():
            for row in fleet.worker_health():
                row = dict(row)
                row["region"] = region_id
                out.append(row)
        return out

    @property
    def quarantined_shards(self) -> Tuple[str, ...]:
        """Quarantined shards across all regions, in merge order."""
        out: List[str] = []
        for fleet in self.fleets.values():
            out.extend(fleet.quarantined_shards)
        return tuple(out)


def resume_fleet(
    source: Union[Checkpoint, str, Path],
    *,
    executor: Optional[str] = None,
    max_workers: Optional[int] = None,
    telemetry: Union[TelemetryConfig, TelemetryRegistry, None] = None,
) -> Union[Fleet, RegionalFleet]:
    """Resume whichever fleet kind a checkpoint holds.

    Dispatches on the checkpoint's ``kind`` to :meth:`Fleet.resume` or
    :meth:`RegionalFleet.resume` — the entry point for service code
    (``examples/run_service.py``, the campaign runner) that restarts
    from an operator-supplied checkpoint path without knowing its
    topology.
    """
    checkpoint = (
        source if isinstance(source, Checkpoint) else Checkpoint.load(source)
    )
    if checkpoint.kind == "regional":
        return RegionalFleet.resume(
            checkpoint,
            executor=executor,
            max_workers=max_workers,
            telemetry=telemetry,
        )
    return Fleet.resume(
        checkpoint,
        executor=executor,
        max_workers=max_workers,
        telemetry=telemetry,
    )
