"""Hierarchical fleets: regions of shards, one epoch clock.

A flat :class:`~repro.fleet.fleet.Fleet` tops out where one process (or
one pool of per-shard workers) comfortably owns every shard.  The
region layer scales past that by making the fleet *hierarchical*: shards
are grouped into :class:`Region`\\ s, each region runs as its own inner
``Fleet`` — with its own executor strategy and its own worker budget —
and a :class:`RegionalFleet` drives all regions on one epoch clock,
merging their per-epoch results in region insertion order.

Because shards share nothing, the grouping is pure bookkeeping: a
hierarchical run is **bit-identical** to the equivalent flat fleet at
any region/worker split (pinned by
``tests/property/test_region_equivalence.py``).  The merge invariant
that makes this hold is *contiguity*: concatenating the regions' shard
groups in region insertion order must reproduce the flat fleet's shard
insertion order, which is exactly how
:func:`~repro.fleet.scenario.build_regional_fleet` partitions a
scenario.

What the hierarchy buys at 100k+ VMs:

* **per-region worker budgeting** — each region brings its own
  process-executor pools (the PR 6 shared-memory path) instead of one
  global pool, so a 100k-VM fleet is N regions × the already-fast
  10k-VM path;
* **constant-memory roll-ups** — ``run(keep_reports=False)`` folds the
  merged per-epoch reports into one
  :class:`~repro.fleet.fleet.FleetRunSummary`, and independently
  produced per-region summaries roll up losslessly via
  :meth:`FleetRunSummary.merge`;
* **lifecycle partitioning** — one fleet-wide
  :class:`~repro.fleet.lifecycle.LifecycleEngine` is validated against
  the full topology, then split with
  :meth:`~repro.fleet.lifecycle.LifecycleEngine.subset` so every region
  applies exactly its own shards' events (the same mechanism the
  process workers already use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.events import InterferenceDetectedEvent, MigrationEvent
from repro.fleet.executor import EXECUTOR_KINDS, ColumnarFleetReport
from repro.fleet.fleet import (
    Fleet,
    FleetEpochReport,
    FleetRunSummary,
    FleetShard,
    ScheduledStress,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.lifecycle import LifecycleEngine


@dataclass
class Region:
    """One named shard group of a :class:`RegionalFleet`.

    ``max_workers`` is this region's private worker budget (``None``
    defers to the regional fleet's per-region default) — regions never
    share a pool, so budgets add across regions.
    """

    region_id: str
    shards: Sequence[FleetShard] = field(default_factory=list)
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.region_id:
            raise ValueError("region_id must be non-empty")
        if not self.shards:
            raise ValueError(f"region {self.region_id!r} needs at least one shard")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    @classmethod
    def from_fleet(
        cls,
        region_id: str,
        fleet: Fleet,
        max_workers: Optional[int] = None,
    ) -> "Region":
        """Adopt an existing flat fleet's shards as one region.

        Only the shard objects are taken; the donor fleet's schedule,
        lifecycle engine and executor configuration are *not* carried
        over — the :class:`RegionalFleet` owns those fleet-wide.
        """
        return cls(
            region_id=region_id,
            shards=list(fleet.shards.values()),
            max_workers=max_workers,
        )


class RegionalFleet:
    """A fleet of fleets: regions driven in lockstep on one epoch clock.

    Parameters
    ----------
    regions:
        The shard groups (unique region ids, globally unique shard ids).
        Region insertion order is the merge order: concatenating the
        regions' shards reproduces the equivalent flat fleet's shard
        insertion order, which is what makes hierarchical runs
        bit-identical to flat ones.
    schedule:
        Fleet-wide scheduled stress windows; each region receives the
        entries addressing its own shards.
    max_workers:
        Default *per-region* worker budget (``Region.max_workers``
        overrides it per region).  With R regions of budget W the fleet
        runs up to R×W workers — there is no global pool.
    executor:
        Shard execution strategy applied inside every region
        (``"serial"``/``"thread"``/``"process"``), defaulting like
        :class:`~repro.fleet.fleet.Fleet`: ``"thread"`` when the
        per-region budget exceeds 1, else ``"serial"``.
    lifecycle:
        Fleet-wide lifecycle engine.  Validated against the full
        topology here, then partitioned with
        :meth:`~repro.fleet.lifecycle.LifecycleEngine.subset` so each
        region's inner fleet owns exactly its shards' events.
    """

    def __init__(
        self,
        regions: Sequence[Region],
        schedule: Optional[Sequence[ScheduledStress]] = None,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        lifecycle: Optional["LifecycleEngine"] = None,
    ) -> None:
        if not regions:
            raise ValueError("a regional fleet needs at least one region")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if executor is None:
            executor = (
                "thread" if max_workers is not None and max_workers > 1 else "serial"
            )
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
            )
        seen_shards: Dict[str, str] = {}
        region_ids: List[str] = []
        for region in regions:
            if region.region_id in region_ids:
                raise ValueError(f"duplicate region id {region.region_id!r}")
            region_ids.append(region.region_id)
            for shard in region.shards:
                owner = seen_shards.get(shard.shard_id)
                if owner is not None:
                    raise ValueError(
                        f"shard {shard.shard_id!r} appears in regions "
                        f"{owner!r} and {region.region_id!r}"
                    )
                seen_shards[shard.shard_id] = region.region_id

        self.schedule: List[ScheduledStress] = list(schedule or [])
        self.lifecycle = lifecycle
        if lifecycle is not None:
            # Validate once against the full topology, so an event
            # naming an unknown shard/host fails here (like the flat
            # fleet) instead of silently vanishing from every subset.
            all_shards = {
                shard.shard_id: shard
                for region in regions
                for shard in region.shards
            }
            lifecycle.validate(all_shards)
        self.max_workers = max_workers
        self.executor = executor
        self.current_epoch = 0
        #: region id -> the region's inner fleet, in region insertion
        #: order (the merge order).
        self.fleets: Dict[str, Fleet] = {}
        for region in regions:
            shard_ids = {shard.shard_id for shard in region.shards}
            region_schedule = [
                stress for stress in self.schedule if stress.shard_id in shard_ids
            ]
            region_lifecycle = (
                lifecycle.subset(sorted(shard_ids))
                if lifecycle is not None
                else None
            )
            self.fleets[region.region_id] = Fleet(
                list(region.shards),
                schedule=region_schedule,
                max_workers=region.max_workers or max_workers,
                executor=executor,
                lifecycle=region_lifecycle,
            )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Dict[str, FleetShard]:
        """All shards in merge order (region order × shard order)."""
        out: Dict[str, FleetShard] = {}
        for fleet in self.fleets.values():
            out.update(fleet.shards)
        return out

    def region(self, region_id: str) -> Fleet:
        """The inner fleet driving one region's shards."""
        return self.fleets[region_id]

    def total_vms(self) -> int:
        return sum(fleet.total_vms() for fleet in self.fleets.values())

    def total_hosts(self) -> int:
        return sum(fleet.total_hosts() for fleet in self.fleets.values())

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Bootstrap every region (inside its workers when processes)."""
        for fleet in self.fleets.values():
            fleet.bootstrap()

    def run_epoch(
        self, analyze: bool = True, report: str = "full"
    ) -> Union[FleetEpochReport, ColumnarFleetReport]:
        """Advance every region by one epoch and merge the reports.

        Regions run sequentially in the calling thread; inside each
        region the configured executor fans its shards out (the process
        strategy's workers run concurrently even while the parent is
        dispatching the next region's epoch results).  The merged report
        lists shard reports in region insertion order, i.e. exactly the
        flat fleet's shard insertion order for a contiguous partition.
        """
        if report not in ("full", "columnar"):
            raise ValueError(f"unknown report mode {report!r}")
        merged: Dict[str, object] = {}
        for fleet in self.fleets.values():
            region_report = fleet.run_epoch(analyze=analyze, report=report)
            merged.update(region_report.shard_reports)
        if report == "full":
            out: Union[FleetEpochReport, ColumnarFleetReport] = FleetEpochReport(
                epoch=self.current_epoch, shard_reports=merged
            )
        else:
            out = ColumnarFleetReport(
                epoch=self.current_epoch, shard_reports=merged
            )
        self.current_epoch += 1
        return out

    def run(
        self, epochs: int, analyze: bool = True, keep_reports: bool = True
    ) -> Union[List[FleetEpochReport], FleetRunSummary]:
        """Run several epochs across all regions.

        Mirrors :meth:`Fleet.run` exactly — including the columnar hot
        loop under the process strategy, where every epoch but the last
        travels as shared-memory decision arrays and only the final
        epoch materialises a full report — so a hierarchical
        ``keep_reports=False`` run produces a
        :class:`~repro.fleet.fleet.FleetRunSummary` bit-identical to the
        flat fleet's.
        """
        if keep_reports:
            return [self.run_epoch(analyze=analyze) for _ in range(epochs)]
        summary = FleetRunSummary()
        columnar_hot_loop = self.executor == "process"
        for i in range(epochs):
            mode = (
                "columnar"
                if columnar_hot_loop and i < epochs - 1
                else "full"
            )
            summary.accumulate(self.run_epoch(analyze=analyze, report=mode))
        return summary

    def run_summaries(
        self, epochs: int, analyze: bool = True, shutdown_regions: bool = False
    ) -> Dict[str, FleetRunSummary]:
        """One constant-memory summary per region, regions run to
        completion one after another.

        Shards share nothing, so running region A for all epochs and
        then region B is bit-identical to the lockstep clock;
        ``FleetRunSummary.merge(result.values())`` reproduces the flat
        fleet's summary.  With ``shutdown_regions=True`` each region's
        workers are released the moment it finishes — only one region's
        executor state is ever hot, the low-water-memory way to push a
        1M-VM fleet through one machine (a shut-down process region
        refuses further epochs, so this is a terminal run).
        """
        out: Dict[str, FleetRunSummary] = {}
        for region_id, fleet in self.fleets.items():
            out[region_id] = fleet.run(epochs, analyze=analyze, keep_reports=False)
            if shutdown_regions:
                fleet.shutdown()
        self.current_epoch += epochs
        return out

    def shutdown(self) -> None:
        """Release every region's workers (their final statistics are
        fetched first, so the fleet stays inspectable afterwards)."""
        for fleet in self.fleets.values():
            fleet.shutdown()

    def __enter__(self) -> "RegionalFleet":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Fleet-wide statistics
    # ------------------------------------------------------------------
    def detections(self) -> List[Tuple[str, InterferenceDetectedEvent]]:
        return [
            item for fleet in self.fleets.values() for item in fleet.detections()
        ]

    def migrations(self) -> List[Tuple[str, MigrationEvent]]:
        return [
            item for fleet in self.fleets.values() for item in fleet.migrations()
        ]

    def stats(self) -> Dict[str, float]:
        """Aggregate statistics over all regions (one pre-sized pass).

        Identical keys to :meth:`Fleet.stats`, plus ``"regions"``; the
        per-region numbers come from wherever each region's shard state
        lives (the workers under the process strategy).
        """
        totals: Optional[Dict[str, float]] = None
        for fleet in self.fleets.values():
            stats = fleet.stats()
            if totals is None:
                totals = dict(stats)
            else:
                for key, value in stats.items():
                    totals[key] += value
        assert totals is not None  # constructor guarantees >= 1 region
        totals["regions"] = float(len(self.fleets))
        totals["epochs"] = float(self.current_epoch)
        return totals

    def lifecycle_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard lifecycle counters merged across regions.

        Empty without a lifecycle engine; otherwise one entry per shard
        in merge order, exactly like the flat fleet's.
        """
        if self.lifecycle is None:
            return {}
        out: Dict[str, Dict[str, int]] = {}
        for fleet in self.fleets.values():
            out.update(fleet.lifecycle_stats())
        return out
